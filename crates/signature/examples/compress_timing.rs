//! Wall-clock timing of signature construction on synthetic traces.
//!
//! A dependency-free companion to the Criterion benches (runnable even
//! where Criterion is unavailable) used to track the compression hot path:
//!
//! ```text
//! cargo run --release -p pskel-signature --example compress_timing
//! ```

use pskel_signature::{compress_app, compress_process, SignatureOptions};
use pskel_trace::{synthetic_app_trace, synthetic_process_trace};
use std::time::Instant;

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.unwrap())
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    // "CG-sized": about the event count of a CG.W rank trace.
    let cg_sized = synthetic_process_trace(0, 3_000, 0xC6);
    let (t, out) = time(reps, || {
        compress_process(&cg_sized, 20.0, SignatureOptions::default())
    });
    println!(
        "compress_synth_cg_sized: {} events -> ratio {:.1} tau {:.2} in {:.4}s ({:.0} events/s)",
        cg_sized.n_events(),
        out.signature.compression_ratio(),
        out.signature.threshold,
        t,
        cg_sized.n_events() as f64 / t
    );

    let big = synthetic_process_trace(0, 100_000, 0xB16);
    let (t, out) = time(reps, || {
        compress_process(&big, 50.0, SignatureOptions::default())
    });
    println!(
        "compress_synth_100k: {} events -> ratio {:.1} tau {:.2} in {:.4}s ({:.0} events/s)",
        big.n_events(),
        out.signature.compression_ratio(),
        out.signature.threshold,
        t,
        big.n_events() as f64 / t
    );

    let app = synthetic_app_trace(4, 25_000, 0xA44);
    let (t, _out) = time(reps, || {
        compress_app(&app, 50.0, SignatureOptions::default())
    });
    println!(
        "compress_app_synth_4x25k: {} events total in {:.4}s ({:.0} events/s)",
        app.n_events(),
        t,
        app.n_events() as f64 / t
    );
}
