//! Property-based tests for the signature pipeline: loop folding must be a
//! lossless structural transform, clustering must respect its hard keys,
//! and compression must never lose compute time.

use proptest::prelude::*;
use pskel_signature::loopfind::{find_loops, LoopFindOptions};
use pskel_signature::token::{expand, expand_ids, total_compute, Tok};
use pskel_signature::{cluster, compress_process, OccurrenceSeq, SignatureOptions};
use pskel_sim::{SimDuration, SimTime};
use pskel_trace::{MpiEvent, OpKind, ProcessTrace, Record};

fn sym_seq(max_alpha: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..max_alpha, 0..max_len)
}

/// Build a repetitive sequence: random short motifs repeated random counts.
fn repetitive_seq() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec((prop::collection::vec(0..4u32, 1..5), 1..8usize), 1..6).prop_map(
        |motifs| {
            let mut out = Vec::new();
            for (motif, reps) in motifs {
                for _ in 0..reps {
                    out.extend_from_slice(&motif);
                }
            }
            out
        },
    )
}

fn toks_of(ids: &[u32]) -> Vec<Tok> {
    ids.iter()
        .map(|&id| Tok::Sym {
            id,
            compute_before: 0.0,
        })
        .collect()
}

proptest! {
    #[test]
    fn folding_is_lossless_on_random_sequences(ids in sym_seq(5, 60)) {
        let folded = find_loops(toks_of(&ids), LoopFindOptions::default());
        prop_assert_eq!(expand_ids(&folded), ids);
    }

    #[test]
    fn folding_is_lossless_on_repetitive_sequences(ids in repetitive_seq()) {
        let folded = find_loops(toks_of(&ids), LoopFindOptions::default());
        prop_assert_eq!(expand_ids(&folded), ids);
    }

    #[test]
    fn folding_never_grows_representation(ids in repetitive_seq()) {
        let folded = find_loops(toks_of(&ids), LoopFindOptions::default());
        let compressed: usize = folded.iter().map(Tok::compressed_len).sum();
        prop_assert!(compressed <= ids.len());
    }

    #[test]
    fn folding_preserves_total_compute(
        pairs in prop::collection::vec((0..4u32, 0.0..2.0f64), 1..50)
    ) {
        let toks: Vec<Tok> = pairs
            .iter()
            .map(|&(id, c)| Tok::Sym { id, compute_before: c })
            .collect();
        let before = total_compute(&toks);
        let folded = find_loops(toks, LoopFindOptions::default());
        let after = total_compute(&folded);
        prop_assert!((before - after).abs() < 1e-9, "{} vs {}", before, after);
    }

    #[test]
    fn folded_expansion_preserves_positionwise_symbols(ids in repetitive_seq()) {
        // Even with compute averaging, the symbol at every position of the
        // expansion must be the original one.
        let toks: Vec<Tok> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| Tok::Sym { id, compute_before: i as f64 })
            .collect();
        let folded = find_loops(toks, LoopFindOptions::default());
        let expanded = expand(&folded);
        prop_assert_eq!(expanded.len(), ids.len());
        for (pos, ((sym, _), want)) in expanded.iter().zip(&ids).enumerate() {
            prop_assert_eq!(sym, want, "position {}", pos);
        }
    }
}

/// Random trace construction for clustering/compression properties.
fn arb_trace() -> impl Strategy<Value = ProcessTrace> {
    let ev = (
        0..3usize,
        0..4u32,
        prop::sample::select(vec![64u64, 65, 1000, 1010, 50_000]),
    );
    prop::collection::vec(ev, 1..80).prop_map(|evs| {
        let kinds = [OpKind::Send, OpKind::Recv, OpKind::Allreduce];
        let mut records = Vec::new();
        let mut t = 0u64;
        for (k, peer, bytes) in evs {
            records.push(Record::Compute {
                dur: SimDuration(1_000_000),
            });
            t += 1_000_000;
            records.push(Record::Mpi(MpiEvent {
                kind: kinds[k],
                peer: Some(peer),
                tag: Some(0),
                bytes,
                slots: vec![],
                start: SimTime(t),
                end: SimTime(t + 20_000),
            }));
            t += 20_000;
        }
        ProcessTrace {
            rank: 0,
            records,
            finish: SimTime(t),
        }
    })
}

proptest! {
    #[test]
    fn zero_threshold_clusters_iff_identical(trace in arb_trace()) {
        let seq = OccurrenceSeq::from_trace(&trace);
        let c = cluster(&seq, 0.0);
        for (i, a) in seq.events.iter().enumerate() {
            for (j, b) in seq.events.iter().enumerate() {
                let same_cluster = c.symbols[i].0 == c.symbols[j].0;
                let identical = a.key == b.key && a.bytes == b.bytes;
                prop_assert_eq!(same_cluster, identical, "events {} and {}", i, j);
            }
        }
    }

    #[test]
    fn cluster_counts_sum_to_trace_length(trace in arb_trace(), tau in 0.0..=1.0f64) {
        let seq = OccurrenceSeq::from_trace(&trace);
        let c = cluster(&seq, tau);
        let total: u64 = c.clusters.iter().map(|cl| cl.count).sum();
        prop_assert_eq!(total as usize, seq.events.len());
    }

    #[test]
    fn higher_threshold_never_increases_alphabet(trace in arb_trace()) {
        let seq = OccurrenceSeq::from_trace(&trace);
        let mut prev = usize::MAX;
        for tau in [0.0, 0.05, 0.2, 0.5, 1.0] {
            let c = cluster(&seq, tau);
            prop_assert!(c.clusters.len() <= prev,
                "alphabet grew from {} to {} at tau={}", prev, c.clusters.len(), tau);
            prev = c.clusters.len();
        }
    }

    #[test]
    fn compression_preserves_structure_and_compute(trace in arb_trace()) {
        let out = compress_process(&trace, 4.0, SignatureOptions::default());
        let sig = out.signature;
        prop_assert_eq!(sig.expanded_len(), sig.trace_len);
        prop_assert!(sig.compression_ratio() >= 1.0);
        let seq = OccurrenceSeq::from_trace(&trace);
        prop_assert!((sig.total_compute() - seq.total_compute()).abs() < 1e-9);
    }
}
