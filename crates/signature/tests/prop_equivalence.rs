//! The optimized signature pipeline (indexed clustering, incremental loop
//! folding, reusable threshold search) must be *observably identical* to
//! the straight-line reference implementations in
//! `pskel_signature::reference` — same cluster tables, same rendered loop
//! structure, same expansions, bit-equal floats.

use proptest::prelude::*;
use pskel_signature::loopfind::{find_loops, LoopFindOptions};
use pskel_signature::reference::{naive_cluster, naive_compress_process, naive_find_loops};
use pskel_signature::token::{expand_ids, render, Tok};
use pskel_signature::{cluster, compress_process, OccurrenceSeq, SignatureOptions};
use pskel_sim::{SimDuration, SimTime};
use pskel_trace::{MpiEvent, OpKind, ProcessTrace, Record};

/// Random traces mixing a few operation kinds, peers, and byte sizes close
/// enough that nonzero thresholds actually merge clusters.
fn arb_trace() -> impl Strategy<Value = ProcessTrace> {
    let ev = (
        0..3usize,
        0..3u32,
        prop::sample::select(vec![64u64, 65, 80, 1000, 1010, 1200, 50_000]),
        1_000u64..2_000_000,
    );
    prop::collection::vec(ev, 1..120).prop_map(|evs| {
        let kinds = [OpKind::Send, OpKind::Recv, OpKind::Allreduce];
        let mut records = Vec::new();
        let mut t = 0u64;
        for (k, peer, bytes, compute) in evs {
            records.push(Record::Compute {
                dur: SimDuration(compute),
            });
            t += compute;
            records.push(Record::Mpi(MpiEvent {
                kind: kinds[k],
                peer: Some(peer),
                tag: Some(0),
                bytes,
                slots: vec![],
                start: SimTime(t),
                end: SimTime(t + 20_000),
            }));
            t += 20_000;
        }
        ProcessTrace {
            rank: 0,
            records,
            finish: SimTime(t),
        }
    })
}

/// Repetitive symbol sequences (motifs repeated) so folds actually happen.
fn repetitive_toks() -> impl Strategy<Value = Vec<Tok>> {
    prop::collection::vec(
        (
            prop::collection::vec((0..4u32, 0.0..2.0f64), 1..5),
            1..8usize,
        ),
        1..6,
    )
    .prop_map(|motifs| {
        let mut out = Vec::new();
        for (motif, reps) in motifs {
            for _ in 0..reps {
                out.extend(motif.iter().map(|&(id, c)| Tok::Sym {
                    id,
                    compute_before: c,
                }));
            }
        }
        out
    })
}

proptest! {
    #[test]
    fn indexed_clustering_matches_reference(trace in arb_trace(), tau in 0.0..=1.0f64) {
        let seq = OccurrenceSeq::from_trace(&trace);
        let fast = cluster(&seq, tau);
        let naive = naive_cluster(&seq, tau);
        // Full equality: symbol string, cluster table (keys, counts, and
        // bit-exact centroid/variance floats).
        prop_assert_eq!(fast.symbols, naive.symbols);
        prop_assert_eq!(fast.clusters, naive.clusters);
    }

    #[test]
    fn incremental_folding_matches_reference(
        toks in repetitive_toks(),
        small_cap in prop::bool::ANY,
    ) {
        let opts = LoopFindOptions {
            max_period: if small_cap { 3 } else { 512 },
        };
        let fast = find_loops(toks.clone(), opts);
        let naive = naive_find_loops(toks, opts);
        prop_assert_eq!(&fast, &naive);
        prop_assert_eq!(render(&fast), render(&naive));
        prop_assert_eq!(expand_ids(&fast), expand_ids(&naive));
    }

    #[test]
    fn threshold_search_matches_reference(trace in arb_trace(), q in 1.0..24.0f64) {
        let fast = compress_process(&trace, q, SignatureOptions::default());
        let naive = naive_compress_process(&trace, q, SignatureOptions::default());
        prop_assert_eq!(fast.saturated, naive.saturated);
        let (f, n) = (&fast.signature, &naive.signature);
        prop_assert_eq!(f.threshold.to_bits(), n.threshold.to_bits());
        prop_assert_eq!(render(&f.tokens), render(&n.tokens));
        prop_assert_eq!(expand_ids(&f.tokens), expand_ids(&n.tokens));
        prop_assert_eq!(&f.clusters, &n.clusters);
        prop_assert_eq!(f, n);
    }
}
