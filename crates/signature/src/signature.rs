//! Execution signatures: the compressed representation of a trace.

use crate::cluster::{ClusterCache, ClusterInfo, ClusteredSeq};
use crate::feature::OccurrenceSeq;
use crate::loopfind::{find_loops, LoopFindOptions};
use crate::token::{self, Tok};
use pskel_trace::{AppTrace, ProcessTrace};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::Mutex;

/// The execution signature of one rank: a loop-structured symbol tree plus
/// the cluster table giving each symbol's operation parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSignature {
    pub rank: usize,
    pub tokens: Vec<Tok>,
    pub clusters: Vec<ClusterInfo>,
    /// Computation after the last event, seconds.
    pub tail_compute: f64,
    /// Number of events in the original trace.
    pub trace_len: usize,
    /// Similarity threshold used for clustering.
    pub threshold: f64,
}

impl ExecutionSignature {
    /// Build a signature from a clustered sequence.
    pub fn from_clustered(c: ClusteredSeq, opts: LoopFindOptions) -> ExecutionSignature {
        let trace_len = c.symbols.len();
        let toks: Vec<Tok> = c
            .symbols
            .iter()
            .map(|&(id, compute_before)| Tok::Sym { id, compute_before })
            .collect();
        let tokens = find_loops(toks, opts);
        ExecutionSignature {
            rank: c.rank,
            tokens,
            clusters: c.clusters,
            tail_compute: c.tail_compute,
            trace_len,
            threshold: 0.0,
        }
    }

    /// Length of the compressed representation (symbols written once).
    pub fn compressed_len(&self) -> usize {
        self.tokens.iter().map(Tok::compressed_len).sum()
    }

    /// Length after expanding all loops (must equal `trace_len`).
    pub fn expanded_len(&self) -> usize {
        self.tokens.iter().map(Tok::expanded_len).sum()
    }

    /// Compression ratio achieved (trace length / signature length); 1.0
    /// for an empty trace.
    pub fn compression_ratio(&self) -> f64 {
        let c = self.compressed_len();
        if c == 0 {
            1.0
        } else {
            self.trace_len as f64 / c as f64
        }
    }

    /// Expand back to the clustered symbol sequence.
    pub fn expand(&self) -> Vec<(u32, f64)> {
        token::expand(&self.tokens)
    }

    /// Total computation time the signature represents, seconds.
    pub fn total_compute(&self) -> f64 {
        token::total_compute(&self.tokens) + self.tail_compute
    }

    /// Estimated total execution time: computation plus the measured mean
    /// duration of every event occurrence.
    pub fn estimated_total_secs(&self) -> f64 {
        self.total_compute() + self.event_time(&self.tokens)
    }

    fn event_time(&self, toks: &[Tok]) -> f64 {
        toks.iter()
            .map(|t| match t {
                Tok::Sym { id, .. } => self.clusters[*id as usize].mean_dur_secs,
                Tok::Loop { count, body } => *count as f64 * self.event_time(body),
            })
            .sum()
    }

    /// Paper-style rendering of the token structure.
    pub fn render(&self) -> String {
        token::render(&self.tokens)
    }
}

/// Signatures for all ranks of an application, with run metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppSignature {
    pub app: String,
    pub sigs: Vec<ExecutionSignature>,
    /// Dedicated-testbed execution time of the traced run, seconds.
    pub app_time_secs: f64,
}

impl AppSignature {
    pub fn nranks(&self) -> usize {
        self.sigs.len()
    }

    /// Worst (smallest) compression ratio across ranks.
    pub fn min_compression_ratio(&self) -> f64 {
        self.sigs
            .iter()
            .map(|s| s.compression_ratio())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Options for signature construction.
#[derive(Clone, Copy, Debug)]
pub struct SignatureOptions {
    pub loopfind: LoopFindOptions,
    /// Threshold search step; must be positive. The search evaluates
    /// τ = `min_threshold` + i × `threshold_step` by integer index, so 20
    /// steps of 0.01 land exactly on 0.20 with no accumulated drift.
    pub threshold_step: f64,
    /// Lower bound at which the threshold search starts. Normally 0; the
    /// skeleton pipeline raises it when independently-compressed ranks
    /// produce structurally incompatible skeletons (e.g. data-dependent
    /// collective sizes clustering differently per rank).
    pub min_threshold: f64,
    /// Upper bound on the similarity threshold; the paper found ≤ 0.20
    /// sufficient across the NAS suite and treats larger values as suspect.
    pub max_threshold: f64,
}

impl Default for SignatureOptions {
    fn default() -> Self {
        SignatureOptions {
            loopfind: LoopFindOptions::default(),
            threshold_step: 0.01,
            min_threshold: 0.0,
            max_threshold: 0.20,
        }
    }
}

/// Outcome of the iterative threshold search for one rank.
#[derive(Clone, Debug)]
pub struct CompressionOutcome {
    pub signature: ExecutionSignature,
    /// True if the target ratio was not reached even at `max_threshold`.
    pub saturated: bool,
}

/// Compress one rank's trace, searching for the smallest similarity
/// threshold that achieves compression ratio `target_q` (paper §3.2:
/// start at τ=0, raise gradually; warn past the τ cap).
///
/// The search clusters through a [`ClusterCache`], which reuses the
/// zero-threshold partition for every event key whose size gaps exceed the
/// current threshold; τ steps whose clustering is unchanged from the
/// previous step are skipped outright (same symbols ⇒ same signature ⇒
/// the best-so-far and the termination test cannot change), which removes
/// most of the loop-refolding work from the search.
pub fn compress_process(
    trace: &ProcessTrace,
    target_q: f64,
    opts: SignatureOptions,
) -> CompressionOutcome {
    compress_seq(OccurrenceSeq::from_trace(trace), target_q, opts)
}

/// Compress an already-extracted occurrence sequence with the same threshold
/// search as [`compress_process`]. Streaming ingest builds the sequence
/// incrementally while the trace is still being read and joins the batch
/// pipeline here — sharing this exact code path is what makes streaming
/// signatures byte-identical to batch ones.
pub fn compress_seq(
    seq: OccurrenceSeq,
    target_q: f64,
    opts: SignatureOptions,
) -> CompressionOutcome {
    assert!(
        target_q >= 1.0,
        "target compression ratio must be >= 1, got {target_q}"
    );
    assert!(
        opts.threshold_step > 0.0,
        "threshold step must be positive, got {}",
        opts.threshold_step
    );
    let cache = ClusterCache::new(&seq);
    let mut best: Option<ExecutionSignature> = None;
    let mut best_ratio = f64::NEG_INFINITY;
    // Symbols and all-keys-reused flag of the previously evaluated step.
    let mut prev: Option<(Vec<(u32, f64)>, bool)> = None;
    for i in 0u32.. {
        let tau = opts.min_threshold + f64::from(i) * opts.threshold_step;
        if i > 0 && tau > opts.max_threshold {
            return CompressionOutcome {
                signature: best.expect("first threshold step is always evaluated"),
                saturated: true,
            };
        }
        let (clustered, all_reused) = cache.cluster(tau.min(1.0));
        let unchanged = prev.as_ref().is_some_and(|(syms, prev_reused)| {
            (all_reused && *prev_reused) || *syms == clustered.symbols
        });
        if unchanged {
            continue;
        }
        let symbols = clustered.symbols.clone();
        let mut sig = ExecutionSignature::from_clustered(clustered, opts.loopfind);
        sig.threshold = tau;
        let ratio = sig.compression_ratio();
        if best.is_none() || ratio > best_ratio {
            best_ratio = ratio;
            best = Some(sig);
        }
        if best_ratio >= target_q {
            return CompressionOutcome {
                signature: best.unwrap(),
                saturated: false,
            };
        }
        prev = Some((symbols, all_reused));
    }
    unreachable!("the threshold search always terminates at max_threshold")
}

/// One rank that failed to reach the target compression ratio within the
/// threshold cap, with what it did achieve — surfaced so `pskel build`
/// warnings can name the offending ranks instead of a bare flag.
#[derive(Clone, Debug, PartialEq)]
pub struct RankSaturation {
    pub rank: usize,
    /// Best compression ratio the rank reached.
    pub ratio: f64,
    /// Threshold of the best (kept) signature.
    pub threshold: f64,
}

/// Result of compressing a whole application trace.
#[derive(Clone, Debug)]
pub struct AppCompression {
    pub signature: AppSignature,
    /// Ranks that saturated the threshold search, ascending by rank;
    /// empty when every rank reached the target ratio.
    pub saturated: Vec<RankSaturation>,
}

impl AppCompression {
    /// Did any rank fail to reach the target ratio?
    pub fn is_saturated(&self) -> bool {
        !self.saturated.is_empty()
    }

    /// Human-readable list of the saturated ranks and their achieved
    /// ratios, e.g. `rank 3 (ratio 1.8 at tau 0.20), rank 7 (ratio 2.1 at
    /// tau 0.20)`; `None` when no rank saturated.
    pub fn saturation_summary(&self) -> Option<String> {
        if self.saturated.is_empty() {
            return None;
        }
        let mut s = String::new();
        for (i, r) in self.saturated.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "rank {} (ratio {:.1} at tau {:.2})",
                r.rank, r.ratio, r.threshold
            );
        }
        Some(s)
    }
}

/// Compress a whole application trace, fanning ranks across threads. Ranks
/// are independent, so the result — signatures and saturation list alike —
/// is identical to compressing them sequentially in rank order.
pub fn compress_app(trace: &AppTrace, target_q: f64, opts: SignatureOptions) -> AppCompression {
    let outcomes = par_map(trace.procs.iter().collect(), |p| {
        compress_process(p, target_q, opts)
    });
    let mut sigs = Vec::with_capacity(outcomes.len());
    let mut saturated = Vec::new();
    for out in outcomes {
        if out.saturated {
            saturated.push(RankSaturation {
                rank: out.signature.rank,
                ratio: out.signature.compression_ratio(),
                threshold: out.signature.threshold,
            });
        }
        sigs.push(out.signature);
    }
    AppCompression {
        signature: AppSignature {
            app: trace.app.clone(),
            sigs,
            app_time_secs: trace.total_time.as_secs_f64(),
        },
        saturated,
    }
}

/// Order-preserving parallel map over a work queue, using scoped threads —
/// the same std-only pattern as the prediction runner's prewarm pool.
fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let queue = Mutex::new(items.into_iter().enumerate());
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().next();
                match job {
                    Some((i, item)) => {
                        let r = f(item);
                        results.lock().unwrap().push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_sim::{SimDuration, SimTime};
    use pskel_trace::{MpiEvent, OpKind, Record};

    /// A trace alternating compute and two kinds of sends, with mild size
    /// jitter: (compute, send(2000±e), send small, allreduce) x reps.
    fn jittery_trace(reps: usize) -> ProcessTrace {
        let mut records = Vec::new();
        let mut t = 0u64;
        for i in 0..reps {
            records.push(Record::Compute {
                dur: SimDuration(10_000_000),
            });
            t += 10_000_000;
            let jitter = (i % 5) as u64 * 40; // 0..160 byte spread
            let mk = |kind, peer, bytes, t0: &mut u64| {
                let e = MpiEvent {
                    kind,
                    peer: Some(peer),
                    tag: Some(0),
                    bytes,
                    slots: vec![],
                    start: SimTime(*t0),
                    end: SimTime(*t0 + 50_000),
                };
                *t0 += 50_000;
                Record::Mpi(e)
            };
            records.push(mk(OpKind::Send, 1, 2000 + jitter, &mut t));
            records.push(mk(OpKind::Send, 2, 64, &mut t));
            records.push(mk(OpKind::Allreduce, 0, 8, &mut t));
        }
        ProcessTrace {
            rank: 0,
            records,
            finish: SimTime(t),
        }
    }

    #[test]
    fn zero_threshold_signature_expands_exactly() {
        let trace = jittery_trace(20);
        let out = compress_process(&trace, 1.0, SignatureOptions::default());
        let sig = out.signature;
        assert_eq!(sig.expanded_len(), sig.trace_len);
        assert_eq!(sig.trace_len, 60);
    }

    #[test]
    fn threshold_search_reaches_target_ratio() {
        let trace = jittery_trace(50);
        let out = compress_process(&trace, 20.0, SignatureOptions::default());
        assert!(!out.saturated, "target reachable with jitter merged");
        assert!(out.signature.compression_ratio() >= 20.0);
        // The jittery sends had to be merged, so tau > 0.
        assert!(out.signature.threshold > 0.0);
    }

    #[test]
    fn low_target_needs_no_threshold() {
        // With 5 distinct send sizes the zero-threshold alphabet has
        // 5+1+1 = 7 symbols; period-20 folding still compresses plenty for
        // a tiny target.
        let trace = jittery_trace(50);
        let out = compress_process(&trace, 2.0, SignatureOptions::default());
        assert!(!out.saturated);
        assert_eq!(out.signature.threshold, 0.0);
    }

    #[test]
    fn impossible_target_saturates_with_warning() {
        // A trace of all-distinct kinds cannot compress at any threshold.
        let mut records = Vec::new();
        let kinds = [OpKind::Send, OpKind::Recv, OpKind::Isend, OpKind::Irecv];
        for (i, k) in kinds.iter().enumerate() {
            records.push(Record::Mpi(MpiEvent {
                kind: *k,
                peer: Some(i as u32),
                tag: Some(i as u64),
                bytes: 100,
                slots: vec![],
                start: SimTime(i as u64 * 100),
                end: SimTime(i as u64 * 100 + 10),
            }));
        }
        let trace = ProcessTrace {
            rank: 0,
            records,
            finish: SimTime(1000),
        };
        let out = compress_process(&trace, 4.0, SignatureOptions::default());
        assert!(out.saturated);
        assert!(out.signature.compression_ratio() < 4.0);
    }

    #[test]
    fn total_compute_survives_compression() {
        let trace = jittery_trace(50);
        let total_before: f64 = 50.0 * 0.01;
        let out = compress_process(&trace, 20.0, SignatureOptions::default());
        let total_after = out.signature.total_compute();
        assert!(
            (total_after - total_before).abs() < 1e-9,
            "compute not preserved: {total_after} vs {total_before}"
        );
    }

    #[test]
    fn estimated_total_tracks_trace_time() {
        let trace = jittery_trace(50);
        let wall = trace.finish.as_secs_f64();
        let out = compress_process(&trace, 20.0, SignatureOptions::default());
        let est = out.signature.estimated_total_secs();
        assert!(
            (est - wall).abs() / wall < 1e-6,
            "estimate {est} should match wall {wall}"
        );
    }

    #[test]
    fn matches_naive_reference_search() {
        use crate::reference::naive_compress_process;
        let trace = pskel_trace::synthetic_process_trace(0, 1_500, 0xFACE);
        for target in [1.5, 8.0, 40.0, 500.0] {
            let fast = compress_process(&trace, target, SignatureOptions::default());
            let naive = naive_compress_process(&trace, target, SignatureOptions::default());
            assert_eq!(fast.saturated, naive.saturated, "target {target}");
            assert_eq!(fast.signature, naive.signature, "target {target}");
        }
    }

    #[test]
    fn final_step_lands_exactly_on_max_threshold() {
        // 20 steps of 0.01 from 0 must evaluate τ = 0.20 itself: the
        // integer-indexed schedule needs no epsilon guard.
        let taus: Vec<f64> = (0..=20).map(|i| f64::from(i) * 0.01).collect();
        assert_eq!(*taus.last().unwrap(), 0.20);
        assert!(taus.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn parallel_app_compression_matches_sequential() {
        let app = pskel_trace::synthetic_app_trace(4, 600, 0xAB);
        let par = compress_app(&app, 30.0, SignatureOptions::default());
        let seq: Vec<_> = app
            .procs
            .iter()
            .map(|p| compress_process(p, 30.0, SignatureOptions::default()))
            .collect();
        assert_eq!(par.signature.sigs.len(), 4);
        for (a, b) in par.signature.sigs.iter().zip(&seq) {
            assert_eq!(*a, b.signature);
        }
        let seq_saturated: Vec<RankSaturation> = seq
            .iter()
            .filter(|o| o.saturated)
            .map(|o| RankSaturation {
                rank: o.signature.rank,
                ratio: o.signature.compression_ratio(),
                threshold: o.signature.threshold,
            })
            .collect();
        assert_eq!(par.saturated, seq_saturated);
    }

    #[test]
    fn saturation_summary_names_ranks() {
        // Two distinct-kind events per rank cannot compress: both ranks
        // saturate and the summary must name them.
        let mk_rank = |rank: usize| {
            let records = vec![
                Record::Mpi(MpiEvent {
                    kind: OpKind::Send,
                    peer: Some(0),
                    tag: Some(0),
                    bytes: 100,
                    slots: vec![],
                    start: SimTime(0),
                    end: SimTime(10),
                }),
                Record::Mpi(MpiEvent {
                    kind: OpKind::Recv,
                    peer: Some(0),
                    tag: Some(0),
                    bytes: 100,
                    slots: vec![],
                    start: SimTime(20),
                    end: SimTime(30),
                }),
            ];
            ProcessTrace {
                rank,
                records,
                finish: SimTime(100),
            }
        };
        let app = AppTrace::new("sat", vec![mk_rank(0), mk_rank(1)]);
        let out = compress_app(&app, 2.0, SignatureOptions::default());
        assert!(out.is_saturated());
        assert_eq!(out.saturated.len(), 2);
        assert_eq!(out.saturated[0].rank, 0);
        assert_eq!(out.saturated[1].rank, 1);
        let summary = out.saturation_summary().unwrap();
        assert!(summary.contains("rank 0"), "{summary}");
        assert!(summary.contains("rank 1"), "{summary}");
    }

    #[test]
    fn serde_roundtrip() {
        let trace = jittery_trace(10);
        let sig = compress_process(&trace, 5.0, SignatureOptions::default()).signature;
        let s = serde_json::to_string(&sig).unwrap();
        let back: ExecutionSignature = serde_json::from_str(&s).unwrap();
        assert_eq!(sig, back);
    }
}
