//! Execution signatures: the compressed representation of a trace.

use crate::cluster::{cluster, ClusterInfo, ClusteredSeq};
use crate::feature::OccurrenceSeq;
use crate::loopfind::{find_loops, LoopFindOptions};
use crate::token::{self, Tok};
use pskel_trace::{AppTrace, ProcessTrace};
use serde::{Deserialize, Serialize};

/// The execution signature of one rank: a loop-structured symbol tree plus
/// the cluster table giving each symbol's operation parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSignature {
    pub rank: usize,
    pub tokens: Vec<Tok>,
    pub clusters: Vec<ClusterInfo>,
    /// Computation after the last event, seconds.
    pub tail_compute: f64,
    /// Number of events in the original trace.
    pub trace_len: usize,
    /// Similarity threshold used for clustering.
    pub threshold: f64,
}

impl ExecutionSignature {
    /// Build a signature from a clustered sequence.
    pub fn from_clustered(c: ClusteredSeq, opts: LoopFindOptions) -> ExecutionSignature {
        let trace_len = c.symbols.len();
        let toks: Vec<Tok> = c
            .symbols
            .iter()
            .map(|&(id, compute_before)| Tok::Sym { id, compute_before })
            .collect();
        let tokens = find_loops(toks, opts);
        ExecutionSignature {
            rank: c.rank,
            tokens,
            clusters: c.clusters,
            tail_compute: c.tail_compute,
            trace_len,
            threshold: 0.0,
        }
    }

    /// Length of the compressed representation (symbols written once).
    pub fn compressed_len(&self) -> usize {
        self.tokens.iter().map(Tok::compressed_len).sum()
    }

    /// Length after expanding all loops (must equal `trace_len`).
    pub fn expanded_len(&self) -> usize {
        self.tokens.iter().map(Tok::expanded_len).sum()
    }

    /// Compression ratio achieved (trace length / signature length); 1.0
    /// for an empty trace.
    pub fn compression_ratio(&self) -> f64 {
        let c = self.compressed_len();
        if c == 0 {
            1.0
        } else {
            self.trace_len as f64 / c as f64
        }
    }

    /// Expand back to the clustered symbol sequence.
    pub fn expand(&self) -> Vec<(u32, f64)> {
        token::expand(&self.tokens)
    }

    /// Total computation time the signature represents, seconds.
    pub fn total_compute(&self) -> f64 {
        token::total_compute(&self.tokens) + self.tail_compute
    }

    /// Estimated total execution time: computation plus the measured mean
    /// duration of every event occurrence.
    pub fn estimated_total_secs(&self) -> f64 {
        self.total_compute() + self.event_time(&self.tokens)
    }

    fn event_time(&self, toks: &[Tok]) -> f64 {
        toks.iter()
            .map(|t| match t {
                Tok::Sym { id, .. } => self.clusters[*id as usize].mean_dur_secs,
                Tok::Loop { count, body } => *count as f64 * self.event_time(body),
            })
            .sum()
    }

    /// Paper-style rendering of the token structure.
    pub fn render(&self) -> String {
        token::render(&self.tokens)
    }
}

/// Signatures for all ranks of an application, with run metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppSignature {
    pub app: String,
    pub sigs: Vec<ExecutionSignature>,
    /// Dedicated-testbed execution time of the traced run, seconds.
    pub app_time_secs: f64,
}

impl AppSignature {
    pub fn nranks(&self) -> usize {
        self.sigs.len()
    }

    /// Worst (smallest) compression ratio across ranks.
    pub fn min_compression_ratio(&self) -> f64 {
        self.sigs
            .iter()
            .map(|s| s.compression_ratio())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Options for signature construction.
#[derive(Clone, Copy, Debug)]
pub struct SignatureOptions {
    pub loopfind: LoopFindOptions,
    /// Threshold search step.
    pub threshold_step: f64,
    /// Lower bound at which the threshold search starts. Normally 0; the
    /// skeleton pipeline raises it when independently-compressed ranks
    /// produce structurally incompatible skeletons (e.g. data-dependent
    /// collective sizes clustering differently per rank).
    pub min_threshold: f64,
    /// Upper bound on the similarity threshold; the paper found ≤ 0.20
    /// sufficient across the NAS suite and treats larger values as suspect.
    pub max_threshold: f64,
}

impl Default for SignatureOptions {
    fn default() -> Self {
        SignatureOptions {
            loopfind: LoopFindOptions::default(),
            threshold_step: 0.01,
            min_threshold: 0.0,
            max_threshold: 0.20,
        }
    }
}

/// Outcome of the iterative threshold search for one rank.
#[derive(Clone, Debug)]
pub struct CompressionOutcome {
    pub signature: ExecutionSignature,
    /// True if the target ratio was not reached even at `max_threshold`.
    pub saturated: bool,
}

/// Compress one rank's trace, searching for the smallest similarity
/// threshold that achieves compression ratio `target_q` (paper §3.2:
/// start at τ=0, raise gradually; warn past the τ cap).
pub fn compress_process(
    trace: &ProcessTrace,
    target_q: f64,
    opts: SignatureOptions,
) -> CompressionOutcome {
    assert!(
        target_q >= 1.0,
        "target compression ratio must be >= 1, got {target_q}"
    );
    let seq = OccurrenceSeq::from_trace(trace);
    let mut tau = opts.min_threshold;
    let mut best: Option<ExecutionSignature> = None;
    loop {
        let clustered = cluster(&seq, tau.min(1.0));
        let mut sig = ExecutionSignature::from_clustered(clustered, opts.loopfind);
        sig.threshold = tau;
        let ratio = sig.compression_ratio();
        let better = best
            .as_ref()
            .map(|b| ratio > b.compression_ratio())
            .unwrap_or(true);
        if better {
            best = Some(sig);
        }
        if best.as_ref().unwrap().compression_ratio() >= target_q {
            return CompressionOutcome {
                signature: best.unwrap(),
                saturated: false,
            };
        }
        tau += opts.threshold_step;
        if tau > opts.max_threshold + 1e-12 {
            return CompressionOutcome {
                signature: best.unwrap(),
                saturated: true,
            };
        }
    }
}

/// Compress a whole application trace. Returns per-rank outcomes collected
/// into an [`AppSignature`] and a saturation flag (any rank saturated).
pub fn compress_app(
    trace: &AppTrace,
    target_q: f64,
    opts: SignatureOptions,
) -> (AppSignature, bool) {
    let mut sigs = Vec::with_capacity(trace.procs.len());
    let mut saturated = false;
    for p in &trace.procs {
        let out = compress_process(p, target_q, opts);
        saturated |= out.saturated;
        sigs.push(out.signature);
    }
    (
        AppSignature {
            app: trace.app.clone(),
            sigs,
            app_time_secs: trace.total_time.as_secs_f64(),
        },
        saturated,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_sim::{SimDuration, SimTime};
    use pskel_trace::{MpiEvent, OpKind, Record};

    /// A trace alternating compute and two kinds of sends, with mild size
    /// jitter: (compute, send(2000±e), send small, allreduce) x reps.
    fn jittery_trace(reps: usize) -> ProcessTrace {
        let mut records = Vec::new();
        let mut t = 0u64;
        for i in 0..reps {
            records.push(Record::Compute {
                dur: SimDuration(10_000_000),
            });
            t += 10_000_000;
            let jitter = (i % 5) as u64 * 40; // 0..160 byte spread
            let mk = |kind, peer, bytes, t0: &mut u64| {
                let e = MpiEvent {
                    kind,
                    peer: Some(peer),
                    tag: Some(0),
                    bytes,
                    slots: vec![],
                    start: SimTime(*t0),
                    end: SimTime(*t0 + 50_000),
                };
                *t0 += 50_000;
                Record::Mpi(e)
            };
            records.push(mk(OpKind::Send, 1, 2000 + jitter, &mut t));
            records.push(mk(OpKind::Send, 2, 64, &mut t));
            records.push(mk(OpKind::Allreduce, 0, 8, &mut t));
        }
        ProcessTrace {
            rank: 0,
            records,
            finish: SimTime(t),
        }
    }

    #[test]
    fn zero_threshold_signature_expands_exactly() {
        let trace = jittery_trace(20);
        let out = compress_process(&trace, 1.0, SignatureOptions::default());
        let sig = out.signature;
        assert_eq!(sig.expanded_len(), sig.trace_len);
        assert_eq!(sig.trace_len, 60);
    }

    #[test]
    fn threshold_search_reaches_target_ratio() {
        let trace = jittery_trace(50);
        let out = compress_process(&trace, 20.0, SignatureOptions::default());
        assert!(!out.saturated, "target reachable with jitter merged");
        assert!(out.signature.compression_ratio() >= 20.0);
        // The jittery sends had to be merged, so tau > 0.
        assert!(out.signature.threshold > 0.0);
    }

    #[test]
    fn low_target_needs_no_threshold() {
        // With 5 distinct send sizes the zero-threshold alphabet has
        // 5+1+1 = 7 symbols; period-20 folding still compresses plenty for
        // a tiny target.
        let trace = jittery_trace(50);
        let out = compress_process(&trace, 2.0, SignatureOptions::default());
        assert!(!out.saturated);
        assert_eq!(out.signature.threshold, 0.0);
    }

    #[test]
    fn impossible_target_saturates_with_warning() {
        // A trace of all-distinct kinds cannot compress at any threshold.
        let mut records = Vec::new();
        let kinds = [OpKind::Send, OpKind::Recv, OpKind::Isend, OpKind::Irecv];
        for (i, k) in kinds.iter().enumerate() {
            records.push(Record::Mpi(MpiEvent {
                kind: *k,
                peer: Some(i as u32),
                tag: Some(i as u64),
                bytes: 100,
                slots: vec![],
                start: SimTime(i as u64 * 100),
                end: SimTime(i as u64 * 100 + 10),
            }));
        }
        let trace = ProcessTrace {
            rank: 0,
            records,
            finish: SimTime(1000),
        };
        let out = compress_process(&trace, 4.0, SignatureOptions::default());
        assert!(out.saturated);
        assert!(out.signature.compression_ratio() < 4.0);
    }

    #[test]
    fn total_compute_survives_compression() {
        let trace = jittery_trace(50);
        let total_before: f64 = 50.0 * 0.01;
        let out = compress_process(&trace, 20.0, SignatureOptions::default());
        let total_after = out.signature.total_compute();
        assert!(
            (total_after - total_before).abs() < 1e-9,
            "compute not preserved: {total_after} vs {total_before}"
        );
    }

    #[test]
    fn estimated_total_tracks_trace_time() {
        let trace = jittery_trace(50);
        let wall = trace.finish.as_secs_f64();
        let out = compress_process(&trace, 20.0, SignatureOptions::default());
        let est = out.signature.estimated_total_secs();
        assert!(
            (est - wall).abs() / wall < 1e-6,
            "estimate {est} should match wall {wall}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let trace = jittery_trace(10);
        let sig = compress_process(&trace, 5.0, SignatureOptions::default()).signature;
        let s = serde_json::to_string(&sig).unwrap();
        let back: ExecutionSignature = serde_json::from_str(&s).unwrap();
        assert_eq!(sig, back);
    }
}
