//! Event identity and feature extraction for clustering.
//!
//! The paper clusters "substantially similar execution events" in an
//! N-dimensional parameter space, with the rule that different MPI
//! primitives (and blocking vs. nonblocking variants) are never grouped
//! (§3.2). We encode that rule as a *hard key* — kind, peer, tag, request
//! slots — and leave the message size as the fuzzy numeric dimension the
//! similarity threshold controls.

use pskel_sim::SimDuration;
use pskel_trace::{OpKind, ProcessTrace, Record};
use serde::{Deserialize, Serialize};

/// The non-negotiable identity of an event: clustering only merges events
/// whose keys are equal.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventKey {
    pub kind: OpKind,
    /// Destination / source / root rank.
    pub peer: Option<u32>,
    pub tag: Option<u64>,
    /// Request-slot pairing for nonblocking ops and their waits.
    pub slots: Vec<u32>,
}

/// One event occurrence extracted from a trace, with its fuzzy dimensions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventOccurrence {
    pub key: EventKey,
    /// Bytes moved by the call (the clustered numeric dimension).
    pub bytes: u64,
    /// Measured time inside the call on the dedicated testbed.
    pub dur: SimDuration,
    /// Computation time between the previous MPI call and this one,
    /// in seconds.
    pub compute_before: f64,
}

/// A trace rank reduced to its event-occurrence sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OccurrenceSeq {
    pub rank: usize,
    pub events: Vec<EventOccurrence>,
    /// Computation after the final MPI call.
    pub tail_compute: f64,
}

impl OccurrenceSeq {
    /// Extract the occurrence sequence from a process trace.
    pub fn from_trace(trace: &ProcessTrace) -> OccurrenceSeq {
        let mut events = Vec::new();
        let mut pending = 0.0f64;
        for rec in &trace.records {
            match rec {
                Record::Compute { dur } => pending += dur.as_secs_f64(),
                Record::Mpi(e) => {
                    events.push(EventOccurrence {
                        key: EventKey {
                            kind: e.kind,
                            peer: e.peer,
                            tag: e.tag,
                            slots: e.slots.clone(),
                        },
                        bytes: e.bytes,
                        dur: e.duration(),
                        compute_before: pending,
                    });
                    pending = 0.0;
                }
            }
        }
        OccurrenceSeq {
            rank: trace.rank,
            events,
            tail_compute: pending,
        }
    }

    /// Total computation time across the sequence (gaps + tail).
    pub fn total_compute(&self) -> f64 {
        self.events.iter().map(|e| e.compute_before).sum::<f64>() + self.tail_compute
    }

    /// Largest message size in the sequence; the similarity threshold is
    /// interpreted relative to this scale (τ = 1 merges everything of the
    /// same key). At least 1 to avoid division by zero.
    pub fn byte_scale(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.bytes)
            .max()
            .unwrap_or(0)
            .max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_sim::SimTime;
    use pskel_trace::MpiEvent;

    fn trace() -> ProcessTrace {
        let mk = |kind, bytes, start: u64, end: u64| {
            Record::Mpi(MpiEvent {
                kind,
                peer: Some(1),
                tag: Some(0),
                bytes,
                slots: vec![],
                start: SimTime(start),
                end: SimTime(end),
            })
        };
        ProcessTrace {
            rank: 3,
            records: vec![
                Record::Compute {
                    dur: SimDuration(2_000_000_000),
                },
                mk(OpKind::Send, 1000, 0, 10),
                Record::Compute {
                    dur: SimDuration(1_000_000_000),
                },
                Record::Compute {
                    dur: SimDuration(500_000_000),
                },
                mk(OpKind::Allreduce, 8, 20, 30),
                Record::Compute {
                    dur: SimDuration(250_000_000),
                },
            ],
            finish: SimTime(100),
        }
    }

    #[test]
    fn extraction_attaches_compute_gaps() {
        let seq = OccurrenceSeq::from_trace(&trace());
        assert_eq!(seq.rank, 3);
        assert_eq!(seq.events.len(), 2);
        assert!((seq.events[0].compute_before - 2.0).abs() < 1e-12);
        // Consecutive compute records accumulate.
        assert!((seq.events[1].compute_before - 1.5).abs() < 1e-12);
        assert!((seq.tail_compute - 0.25).abs() < 1e-12);
    }

    #[test]
    fn total_compute_sums_gaps_and_tail() {
        let seq = OccurrenceSeq::from_trace(&trace());
        assert!((seq.total_compute() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn byte_scale_is_max_and_at_least_one() {
        let seq = OccurrenceSeq::from_trace(&trace());
        assert_eq!(seq.byte_scale(), 1000.0);
        let empty = OccurrenceSeq {
            rank: 0,
            events: vec![],
            tail_compute: 0.0,
        };
        assert_eq!(empty.byte_scale(), 1.0);
    }

    #[test]
    fn keys_differ_by_kind() {
        let seq = OccurrenceSeq::from_trace(&trace());
        assert_ne!(seq.events[0].key, seq.events[1].key);
    }
}
