//! The loop-structured token tree of an execution signature.
//!
//! After clustering, a rank's trace is a string of symbols; loop detection
//! rewrites it into a tree of [`Tok`]s where repeated substrings become
//! [`Tok::Loop`] nodes — the paper's `α[(β)²γ]³κ[α]²` representation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One node of the signature tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Tok {
    /// A clustered execution event, annotated with the (possibly averaged)
    /// computation preceding it, in seconds.
    Sym { id: u32, compute_before: f64 },
    /// `count` repetitions of `body`.
    Loop { count: u64, body: Vec<Tok> },
}

impl Tok {
    /// Structural equality: same symbols and loop shape, ignoring the
    /// compute annotations (those get averaged when sequences merge).
    pub fn structurally_eq(a: &Tok, b: &Tok) -> bool {
        match (a, b) {
            (Tok::Sym { id: x, .. }, Tok::Sym { id: y, .. }) => x == y,
            (
                Tok::Loop {
                    count: ca,
                    body: ba,
                },
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) => ca == cb && seq_structurally_eq(ba, bb),
            _ => false,
        }
    }

    /// Number of symbols written in the compressed representation (loop
    /// bodies counted once): the "length of the execution signature".
    pub fn compressed_len(&self) -> usize {
        match self {
            Tok::Sym { .. } => 1,
            Tok::Loop { body, .. } => body.iter().map(Tok::compressed_len).sum(),
        }
    }

    /// Number of symbols after expanding all loops: the original trace
    /// length this subtree represents.
    pub fn expanded_len(&self) -> usize {
        match self {
            Tok::Sym { .. } => 1,
            Tok::Loop { count, body } => {
                *count as usize * body.iter().map(Tok::expanded_len).sum::<usize>()
            }
        }
    }
}

/// Structural equality of token sequences.
pub fn seq_structurally_eq(a: &[Tok], b: &[Tok]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| Tok::structurally_eq(x, y))
}

/// A 64-bit structural hash (ignores compute annotations), used to reject
/// non-equal windows cheaply during loop detection. Equal structures hash
/// equal; collisions are resolved by a full structural comparison.
pub fn structural_hash(t: &Tok) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    match t {
        Tok::Sym { id, .. } => (*id as u64 + 1).wrapping_mul(K) ^ 0x5351,
        Tok::Loop { count, body } => loop_hash(*count, body.iter().map(structural_hash)),
    }
}

/// [`structural_hash`] of a loop, computed from the already-known hashes
/// of its body tokens. Loop detection caches per-token hashes, so a fold
/// can hash the new loop node in O(body) without re-walking the subtree.
pub fn loop_hash(count: u64, body_hashes: impl Iterator<Item = u64>) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = count.wrapping_mul(K) ^ 0x4c4f;
    for bh in body_hashes {
        h = h.rotate_left(13) ^ bh.wrapping_mul(K);
    }
    h
}

/// Merge `other` into `acc` by weighted averaging of compute annotations.
/// The sequences must be structurally equal; `w_acc`/`w_other` are the
/// numbers of original iterations each side represents, so expansion totals
/// are preserved exactly.
pub fn merge_weighted(acc: &mut [Tok], other: &[Tok], w_acc: f64, w_other: f64) {
    debug_assert!(
        seq_structurally_eq(acc, other),
        "merging structurally unequal sequences"
    );
    let wt = w_acc + w_other;
    for (a, o) in acc.iter_mut().zip(other) {
        match (a, o) {
            (
                Tok::Sym {
                    compute_before: ca, ..
                },
                Tok::Sym {
                    compute_before: co, ..
                },
            ) => {
                *ca = (*ca * w_acc + *co * w_other) / wt;
            }
            (Tok::Loop { body: ba, .. }, Tok::Loop { body: bo, .. }) => {
                merge_weighted(ba, bo, w_acc, w_other);
            }
            _ => unreachable!("structural equality was checked"),
        }
    }
}

/// Expand a token sequence back into (symbol id, compute_before) pairs.
pub fn expand(toks: &[Tok]) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    expand_into(toks, &mut out);
    out
}

fn expand_into(toks: &[Tok], out: &mut Vec<(u32, f64)>) {
    for t in toks {
        match t {
            Tok::Sym { id, compute_before } => out.push((*id, *compute_before)),
            Tok::Loop { count, body } => {
                for _ in 0..*count {
                    expand_into(body, out);
                }
            }
        }
    }
}

/// Expand only the symbol ids (for structural comparisons).
pub fn expand_ids(toks: &[Tok]) -> Vec<u32> {
    expand(toks).into_iter().map(|(id, _)| id).collect()
}

/// Total compute seconds the sequence represents after expansion.
pub fn total_compute(toks: &[Tok]) -> f64 {
    toks.iter()
        .map(|t| match t {
            Tok::Sym { compute_before, .. } => *compute_before,
            Tok::Loop { count, body } => *count as f64 * total_compute(body),
        })
        .sum()
}

impl fmt::Display for Tok {
    /// Compact paper-style rendering: symbols as `s<id>`, loops as
    /// `[body]^count`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Sym { id, .. } => write!(f, "s{id}"),
            Tok::Loop { count, body } => {
                write!(f, "[")?;
                for (i, t) in body.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]^{count}")
            }
        }
    }
}

/// Render a full token sequence.
pub fn render(toks: &[Tok]) -> String {
    toks.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sym(id: u32) -> Tok {
        Tok::Sym {
            id,
            compute_before: 0.0,
        }
    }

    fn symc(id: u32, c: f64) -> Tok {
        Tok::Sym {
            id,
            compute_before: c,
        }
    }

    fn lp(count: u64, body: Vec<Tok>) -> Tok {
        Tok::Loop { count, body }
    }

    #[test]
    fn structural_equality_ignores_compute() {
        assert!(Tok::structurally_eq(&symc(1, 0.5), &symc(1, 9.0)));
        assert!(!Tok::structurally_eq(&sym(1), &sym(2)));
        assert!(Tok::structurally_eq(
            &lp(3, vec![symc(1, 0.1)]),
            &lp(3, vec![symc(1, 7.0)])
        ));
        assert!(!Tok::structurally_eq(
            &lp(3, vec![sym(1)]),
            &lp(2, vec![sym(1)])
        ));
        assert!(!Tok::structurally_eq(&lp(3, vec![sym(1)]), &sym(1)));
    }

    #[test]
    fn lengths() {
        let t = lp(3, vec![lp(2, vec![sym(1)]), sym(2)]);
        assert_eq!(t.compressed_len(), 2);
        assert_eq!(t.expanded_len(), 9);
    }

    #[test]
    fn expand_reproduces_sequence() {
        let toks = vec![sym(0), lp(2, vec![sym(1), sym(2)]), sym(3)];
        assert_eq!(expand_ids(&toks), vec![0, 1, 2, 1, 2, 3]);
    }

    #[test]
    fn merge_averages_with_weights() {
        let mut a = vec![symc(1, 1.0)];
        let b = vec![symc(1, 4.0)];
        merge_weighted(&mut a, &b, 1.0, 2.0);
        match &a[0] {
            Tok::Sym { compute_before, .. } => assert!((compute_before - 3.0).abs() < 1e-12),
            _ => unreachable!(),
        }
    }

    #[test]
    fn merge_preserves_expansion_totals() {
        // Two structurally equal nested sequences; after merge with weights
        // (2, 3), expanding 5 copies must equal 2*total(a) + 3*total(b).
        let a = vec![symc(0, 1.0), lp(4, vec![symc(1, 0.5)])];
        let b = vec![symc(0, 2.0), lp(4, vec![symc(1, 1.5)])];
        let ta = total_compute(&a);
        let tb = total_compute(&b);
        let mut m = a.clone();
        merge_weighted(&mut m, &b, 2.0, 3.0);
        let tm = total_compute(&m);
        assert!((5.0 * tm - (2.0 * ta + 3.0 * tb)).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_style() {
        let toks = vec![sym(0), lp(3, vec![lp(2, vec![sym(1)]), sym(2)]), sym(3)];
        assert_eq!(render(&toks), "s0 [[s1]^2 s2]^3 s3");
    }

    #[test]
    fn total_compute_weights_loops() {
        let toks = vec![symc(0, 1.0), lp(10, vec![symc(1, 0.2)])];
        assert!((total_compute(&toks) - 3.0).abs() < 1e-12);
    }
}
