//! Clustering of similar execution events (paper §3.2, first stage).
//!
//! Sequential leader clustering: events are scanned in trace order; an event
//! joins the first existing cluster with the same [`EventKey`] whose
//! centroid lies within the similarity threshold, else it founds a new
//! cluster. Centroids are running means, so two merged `MPI_Send(3, 2000)` /
//! `MPI_Send(3, 1800)` events become the paper's `MPI_Send(3, 1900)`.
//!
//! The similarity threshold τ ∈ [0, 1] maps linearly to the maximum allowed
//! message-size difference, relative to the largest message in the trace:
//! τ = 0 merges only identical sizes; τ = 1 merges any sizes of equal key.
//!
//! Events of different keys never interact, so the scan is decomposed into
//! independent per-key subsequences and each is clustered with a probe
//! vector kept sorted by centroid: candidate clusters for an event form a
//! contiguous run located by binary search, replacing the original
//! O(events × clusters) linear scan (kept as
//! [`reference::naive_cluster`](crate::reference::naive_cluster)) with
//! ~O(events × log bucket). Global cluster ids are re-stitched in founding
//! order afterwards, so the output — floats included — is identical to the
//! naive scan's.

use crate::feature::{EventKey, OccurrenceSeq};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A cluster of similar events: the symbol alphabet entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    pub key: EventKey,
    /// Centroid message size.
    pub mean_bytes: f64,
    /// Centroid in-call duration (dedicated testbed), seconds.
    pub mean_dur_secs: f64,
    /// Number of occurrences absorbed.
    pub count: u64,
    /// Mean of the computation preceding occurrences of this cluster.
    pub mean_compute_secs: f64,
    /// Welford M2 accumulator for the preceding-computation variance; the
    /// paper (§4.4) proposes using the frequency distribution of compute
    /// durations instead of plain means — this powers that extension.
    pub m2_compute: f64,
}

impl ClusterInfo {
    /// Centroid bytes rounded for use as an operation parameter.
    pub fn bytes(&self) -> u64 {
        self.mean_bytes.round().max(0.0) as u64
    }

    /// Sample standard deviation of the preceding computation, seconds.
    pub fn compute_std_secs(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2_compute / (self.count - 1) as f64).sqrt()
        }
    }
}

/// Result of clustering one rank's occurrence sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusteredSeq {
    pub rank: usize,
    /// The symbol string: one (cluster id, compute-before) per event.
    pub symbols: Vec<(u32, f64)>,
    pub clusters: Vec<ClusterInfo>,
    pub tail_compute: f64,
}

/// Cluster `seq` under similarity threshold `tau`.
pub fn cluster(seq: &OccurrenceSeq, tau: f64) -> ClusteredSeq {
    assert!(
        (0.0..=1.0).contains(&tau),
        "similarity threshold must be in [0,1], got {tau}"
    );
    let max_diff = tau * seq.byte_scale();
    let (groups, group_of) = group_by_key(seq);
    let mut local = vec![0u32; seq.events.len()];
    let per_key: Vec<Vec<ClusterInfo>> = groups
        .iter()
        .map(|idxs| cluster_key(seq, idxs, max_diff, &mut local).0)
        .collect();
    stitch(seq, &group_of, &local, per_key)
}

/// Group event indices by [`EventKey`], preserving trace order within each
/// group. Returns the groups plus each event's group index.
fn group_by_key(seq: &OccurrenceSeq) -> (Vec<Vec<usize>>, Vec<u32>) {
    let mut index: HashMap<&EventKey, u32> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of = Vec::with_capacity(seq.events.len());
    for (ei, ev) in seq.events.iter().enumerate() {
        let g = *index.entry(&ev.key).or_insert_with(|| {
            groups.push(Vec::new());
            (groups.len() - 1) as u32
        });
        groups[g as usize].push(ei);
        group_of.push(g);
    }
    (groups, group_of)
}

/// Leader-cluster one key's event subsequence, writing each event's local
/// cluster id into `local` (indexed by global event position).
///
/// Clusters are probed through a vector sorted by centroid: `fl(c - v)` is
/// monotone in `c`, so the clusters passing the original predicate
/// `|c - v| <= max_diff` form a contiguous run whose ends are found by
/// binary search and a short forward scan; the run's lowest cluster id is
/// exactly the cluster the naive first-match scan would pick. Returns the
/// clusters plus whether any running-mean update moved a centroid (used by
/// [`ClusterCache`] to validate zero-threshold reuse).
fn cluster_key(
    seq: &OccurrenceSeq,
    idxs: &[usize],
    max_diff: f64,
    local: &mut [u32],
) -> (Vec<ClusterInfo>, bool) {
    let mut clusters: Vec<ClusterInfo> = Vec::new();
    let mut by_centroid: Vec<(f64, u32)> = Vec::new();
    let mut moved = false;
    for &ei in idxs {
        let ev = &seq.events[ei];
        let v = ev.bytes as f64;
        let start = by_centroid.partition_point(|&(c, _)| c - v < -max_diff);
        let mut best: Option<(usize, u32)> = None;
        for (off, &(c, id)) in by_centroid[start..].iter().enumerate() {
            if c - v > max_diff {
                break;
            }
            if best.is_none_or(|(_, bid)| id < bid) {
                best = Some((start + off, id));
            }
        }
        let id = match best {
            Some((pos, id)) => {
                // Running mean update keeps the centroid the true average;
                // Welford's algorithm tracks the compute-gap variance.
                let c = &mut clusters[id as usize];
                let n = c.count as f64;
                let old_mean = c.mean_bytes;
                c.mean_bytes = (c.mean_bytes * n + v) / (n + 1.0);
                c.mean_dur_secs = (c.mean_dur_secs * n + ev.dur.as_secs_f64()) / (n + 1.0);
                let delta = ev.compute_before - c.mean_compute_secs;
                c.mean_compute_secs += delta / (n + 1.0);
                let delta2 = ev.compute_before - c.mean_compute_secs;
                c.m2_compute += delta * delta2;
                c.count += 1;
                let nc = c.mean_bytes;
                if nc != old_mean {
                    moved = true;
                    by_centroid.remove(pos);
                    let at = by_centroid.partition_point(|&(x, _)| x < nc);
                    by_centroid.insert(at, (nc, id));
                }
                id
            }
            None => {
                let id = clusters.len() as u32;
                clusters.push(ClusterInfo {
                    key: ev.key.clone(),
                    mean_bytes: v,
                    mean_dur_secs: ev.dur.as_secs_f64(),
                    count: 1,
                    mean_compute_secs: ev.compute_before,
                    m2_compute: 0.0,
                });
                let at = by_centroid.partition_point(|&(x, _)| x < v);
                by_centroid.insert(at, (v, id));
                id
            }
        };
        local[ei] = id;
    }
    (clusters, moved)
}

/// Reassemble per-key clusterings into one [`ClusteredSeq`] with global
/// cluster ids assigned in founding order — the order the naive global scan
/// would have created them, since a cluster is founded by its first event.
fn stitch(
    seq: &OccurrenceSeq,
    group_of: &[u32],
    local: &[u32],
    per_key: Vec<Vec<ClusterInfo>>,
) -> ClusteredSeq {
    let mut per_key: Vec<Vec<Option<ClusterInfo>>> = per_key
        .into_iter()
        .map(|cs| cs.into_iter().map(Some).collect())
        .collect();
    let mut gid_of: Vec<Vec<u32>> = per_key.iter().map(|cs| vec![u32::MAX; cs.len()]).collect();
    let mut clusters = Vec::with_capacity(per_key.iter().map(Vec::len).sum());
    let mut symbols = Vec::with_capacity(seq.events.len());
    for (ei, ev) in seq.events.iter().enumerate() {
        let (g, l) = (group_of[ei] as usize, local[ei] as usize);
        let gid = if gid_of[g][l] == u32::MAX {
            let id = clusters.len() as u32;
            clusters.push(per_key[g][l].take().expect("each cluster stitched once"));
            gid_of[g][l] = id;
            id
        } else {
            gid_of[g][l]
        };
        symbols.push((gid, ev.compute_before));
    }
    ClusteredSeq {
        rank: seq.rank,
        symbols,
        clusters,
        tail_compute: seq.tail_compute,
    }
}

/// Per-sequence state reused across the τ steps of the iterative threshold
/// search ([`crate::compress_process`]).
///
/// Holds the key grouping and, per key, the zero-threshold clustering plus
/// the smallest gap between that key's distinct message sizes. When
/// `max_diff` is below the gap, no merge beyond exact-size identity is
/// possible, so the zero-threshold partition (and its centroid floats) is
/// the exact clustering for that key and is reused without rescanning.
/// Reuse additionally requires that no zero-threshold centroid ever moved
/// (`stable`): running means of equal sizes stay exact at realistic
/// magnitudes, but if `size × count` ever exceeds 2⁵³ the mean can drift by
/// rounding and the shortcut conservatively switches itself off.
pub struct ClusterCache<'a> {
    seq: &'a OccurrenceSeq,
    scale: f64,
    groups: Vec<Vec<usize>>,
    group_of: Vec<u32>,
    zero: Vec<ZeroKey>,
}

struct ZeroKey {
    clusters: Vec<ClusterInfo>,
    /// Local cluster id per event, parallel to the group's index list.
    local: Vec<u32>,
    /// Smallest `fl(b - a)` over adjacent distinct sizes; ∞ if < 2 sizes.
    min_gap: f64,
    stable: bool,
}

impl<'a> ClusterCache<'a> {
    pub fn new(seq: &'a OccurrenceSeq) -> Self {
        let (groups, group_of) = group_by_key(seq);
        let mut local = vec![0u32; seq.events.len()];
        let zero = groups
            .iter()
            .map(|idxs| {
                let (clusters, moved) = cluster_key(seq, idxs, 0.0, &mut local);
                let mut sizes: Vec<f64> = clusters.iter().map(|c| c.mean_bytes).collect();
                sizes.sort_by(f64::total_cmp);
                let min_gap = sizes
                    .windows(2)
                    .map(|w| w[1] - w[0])
                    .fold(f64::INFINITY, f64::min);
                ZeroKey {
                    clusters,
                    local: idxs.iter().map(|&ei| local[ei]).collect(),
                    min_gap,
                    stable: !moved,
                }
            })
            .collect();
        ClusterCache {
            seq,
            scale: seq.byte_scale(),
            groups,
            group_of,
            zero,
        }
    }

    /// Cluster under threshold `tau`, reusing zero-threshold partitions for
    /// every key the threshold cannot affect. The second value is true when
    /// *all* keys were reused — the clustering then equals the τ = 0 one,
    /// which lets the threshold search skip re-folding entirely.
    pub fn cluster(&self, tau: f64) -> (ClusteredSeq, bool) {
        assert!(
            (0.0..=1.0).contains(&tau),
            "similarity threshold must be in [0,1], got {tau}"
        );
        let max_diff = tau * self.scale;
        let mut local = vec![0u32; self.seq.events.len()];
        let mut all_reused = true;
        let per_key: Vec<Vec<ClusterInfo>> = self
            .groups
            .iter()
            .zip(&self.zero)
            .map(|(idxs, z)| {
                if z.stable && max_diff < z.min_gap {
                    for (k, &ei) in idxs.iter().enumerate() {
                        local[ei] = z.local[k];
                    }
                    z.clusters.clone()
                } else {
                    all_reused = false;
                    cluster_key(self.seq, idxs, max_diff, &mut local).0
                }
            })
            .collect();
        (
            stitch(self.seq, &self.group_of, &local, per_key),
            all_reused,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::EventOccurrence;
    use pskel_sim::SimDuration;
    use pskel_trace::OpKind;

    fn occ(kind: OpKind, peer: u32, bytes: u64, dur_ns: u64) -> EventOccurrence {
        EventOccurrence {
            key: EventKey {
                kind,
                peer: Some(peer),
                tag: Some(0),
                slots: vec![],
            },
            bytes,
            dur: SimDuration(dur_ns),
            compute_before: 0.0,
        }
    }

    fn seq(events: Vec<EventOccurrence>) -> OccurrenceSeq {
        OccurrenceSeq {
            rank: 0,
            events,
            tail_compute: 0.0,
        }
    }

    #[test]
    fn zero_threshold_merges_only_identical() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 2000, 100),
            occ(OpKind::Send, 1, 1800, 100),
            occ(OpKind::Send, 1, 2000, 200),
        ]);
        let c = cluster(&s, 0.0);
        assert_eq!(c.clusters.len(), 2);
        assert_eq!(c.symbols[0].0, c.symbols[2].0);
        assert_ne!(c.symbols[0].0, c.symbols[1].0);
    }

    #[test]
    fn paper_example_merges_at_sufficient_threshold() {
        // MPI_Send(3, 2000) + MPI_Send(3, 1800) -> MPI_Send(3, 1900).
        let s = seq(vec![
            occ(OpKind::Send, 3, 2000, 100),
            occ(OpKind::Send, 3, 1800, 100),
        ]);
        // scale = 2000; diff = 200 -> tau >= 0.1 merges.
        let c = cluster(&s, 0.1);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].bytes(), 1900);
        assert_eq!(c.clusters[0].count, 2);
    }

    #[test]
    fn below_threshold_stays_separate() {
        let s = seq(vec![
            occ(OpKind::Send, 3, 2000, 100),
            occ(OpKind::Send, 3, 1800, 100),
        ]);
        let c = cluster(&s, 0.05);
        assert_eq!(c.clusters.len(), 2);
    }

    #[test]
    fn different_kinds_never_merge() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 1000, 100),
            occ(OpKind::Isend, 1, 1000, 100),
        ]);
        let c = cluster(&s, 1.0);
        assert_eq!(c.clusters.len(), 2, "blocking vs nonblocking stay distinct");
    }

    #[test]
    fn different_peers_never_merge() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 1000, 100),
            occ(OpKind::Send, 2, 1000, 100),
        ]);
        let c = cluster(&s, 1.0);
        assert_eq!(c.clusters.len(), 2);
    }

    #[test]
    fn centroid_tracks_running_mean_of_duration() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 100, 1_000),
            occ(OpKind::Send, 1, 100, 3_000),
        ]);
        let c = cluster(&s, 0.0);
        assert_eq!(c.clusters.len(), 1);
        assert!((c.clusters[0].mean_dur_secs - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn full_threshold_merges_everything_with_same_key() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 10, 100),
            occ(OpKind::Send, 1, 1_000_000, 100),
        ]);
        let c = cluster(&s, 1.0);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].bytes(), 500_005);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_threshold_rejected() {
        cluster(&seq(vec![]), 1.5);
    }

    #[test]
    fn symbols_preserve_compute_annotations() {
        let mut e = occ(OpKind::Send, 1, 100, 100);
        e.compute_before = 0.75;
        let s = seq(vec![e]);
        let c = cluster(&s, 0.0);
        assert_eq!(c.symbols, vec![(0, 0.75)]);
    }

    #[test]
    fn global_ids_follow_founding_order_across_keys() {
        // Interleave two keys so naive founding order alternates; stitched
        // global ids must match the order of first appearance, not grouping.
        let s = seq(vec![
            occ(OpKind::Send, 1, 100, 10),
            occ(OpKind::Recv, 2, 100, 10),
            occ(OpKind::Send, 1, 200, 10),
            occ(OpKind::Recv, 2, 200, 10),
            occ(OpKind::Send, 1, 100, 10),
        ]);
        let c = cluster(&s, 0.0);
        let ids: Vec<u32> = c.symbols.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0]);
        assert_eq!(c.clusters[0].key.kind, OpKind::Send);
        assert_eq!(c.clusters[1].key.kind, OpKind::Recv);
    }

    #[test]
    fn matches_reference_on_synthetic_trace_at_all_taus() {
        use crate::feature::OccurrenceSeq;
        use crate::reference::naive_cluster;
        let trace = pskel_trace::synthetic_process_trace(0, 2_000, 0x5eed);
        let s = OccurrenceSeq::from_trace(&trace);
        for i in 0..=20 {
            let tau = i as f64 * 0.01;
            assert_eq!(cluster(&s, tau), naive_cluster(&s, tau), "tau={tau}");
        }
    }

    #[test]
    fn cache_matches_direct_clustering() {
        use crate::feature::OccurrenceSeq;
        let trace = pskel_trace::synthetic_process_trace(1, 1_000, 0xCAFE);
        let s = OccurrenceSeq::from_trace(&trace);
        let cache = ClusterCache::new(&s);
        let mut saw_reuse = false;
        let mut saw_fresh = false;
        for i in 0..=20 {
            let tau = i as f64 * 0.01;
            let (cached, all_reused) = cache.cluster(tau);
            assert_eq!(cached, cluster(&s, tau), "tau={tau}");
            saw_reuse |= all_reused;
            saw_fresh |= !all_reused;
        }
        assert!(saw_reuse, "small taus must hit the zero-threshold reuse");
        assert!(saw_fresh, "large taus must recluster the jittered keys");
    }
}
