//! Clustering of similar execution events (paper §3.2, first stage).
//!
//! Sequential leader clustering: events are scanned in trace order; an event
//! joins the first existing cluster with the same [`EventKey`] whose
//! centroid lies within the similarity threshold, else it founds a new
//! cluster. Centroids are running means, so two merged `MPI_Send(3, 2000)` /
//! `MPI_Send(3, 1800)` events become the paper's `MPI_Send(3, 1900)`.
//!
//! The similarity threshold τ ∈ [0, 1] maps linearly to the maximum allowed
//! message-size difference, relative to the largest message in the trace:
//! τ = 0 merges only identical sizes; τ = 1 merges any sizes of equal key.

use crate::feature::{EventKey, EventOccurrence, OccurrenceSeq};
use serde::{Deserialize, Serialize};

/// A cluster of similar events: the symbol alphabet entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    pub key: EventKey,
    /// Centroid message size.
    pub mean_bytes: f64,
    /// Centroid in-call duration (dedicated testbed), seconds.
    pub mean_dur_secs: f64,
    /// Number of occurrences absorbed.
    pub count: u64,
    /// Mean of the computation preceding occurrences of this cluster.
    pub mean_compute_secs: f64,
    /// Welford M2 accumulator for the preceding-computation variance; the
    /// paper (§4.4) proposes using the frequency distribution of compute
    /// durations instead of plain means — this powers that extension.
    pub m2_compute: f64,
}

impl ClusterInfo {
    /// Centroid bytes rounded for use as an operation parameter.
    pub fn bytes(&self) -> u64 {
        self.mean_bytes.round().max(0.0) as u64
    }

    /// Sample standard deviation of the preceding computation, seconds.
    pub fn compute_std_secs(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2_compute / (self.count - 1) as f64).sqrt()
        }
    }
}

/// Result of clustering one rank's occurrence sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusteredSeq {
    pub rank: usize,
    /// The symbol string: one (cluster id, compute-before) per event.
    pub symbols: Vec<(u32, f64)>,
    pub clusters: Vec<ClusterInfo>,
    pub tail_compute: f64,
}

/// Cluster `seq` under similarity threshold `tau`.
pub fn cluster(seq: &OccurrenceSeq, tau: f64) -> ClusteredSeq {
    assert!(
        (0.0..=1.0).contains(&tau),
        "similarity threshold must be in [0,1], got {tau}"
    );
    let scale = seq.byte_scale();
    let max_diff = tau * scale;

    let mut clusters: Vec<ClusterInfo> = Vec::new();
    let mut symbols = Vec::with_capacity(seq.events.len());

    for ev in &seq.events {
        let id = assign(&mut clusters, ev, max_diff);
        symbols.push((id, ev.compute_before));
    }
    ClusteredSeq {
        rank: seq.rank,
        symbols,
        clusters,
        tail_compute: seq.tail_compute,
    }
}

fn assign(clusters: &mut Vec<ClusterInfo>, ev: &EventOccurrence, max_diff: f64) -> u32 {
    for (i, c) in clusters.iter_mut().enumerate() {
        if c.key == ev.key && (c.mean_bytes - ev.bytes as f64).abs() <= max_diff {
            // Running mean update keeps the centroid the true average;
            // Welford's algorithm tracks the compute-gap variance.
            let n = c.count as f64;
            c.mean_bytes = (c.mean_bytes * n + ev.bytes as f64) / (n + 1.0);
            c.mean_dur_secs = (c.mean_dur_secs * n + ev.dur.as_secs_f64()) / (n + 1.0);
            let delta = ev.compute_before - c.mean_compute_secs;
            c.mean_compute_secs += delta / (n + 1.0);
            let delta2 = ev.compute_before - c.mean_compute_secs;
            c.m2_compute += delta * delta2;
            c.count += 1;
            return i as u32;
        }
    }
    clusters.push(ClusterInfo {
        key: ev.key.clone(),
        mean_bytes: ev.bytes as f64,
        mean_dur_secs: ev.dur.as_secs_f64(),
        count: 1,
        mean_compute_secs: ev.compute_before,
        m2_compute: 0.0,
    });
    (clusters.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_sim::SimDuration;
    use pskel_trace::OpKind;

    fn occ(kind: OpKind, peer: u32, bytes: u64, dur_ns: u64) -> EventOccurrence {
        EventOccurrence {
            key: EventKey {
                kind,
                peer: Some(peer),
                tag: Some(0),
                slots: vec![],
            },
            bytes,
            dur: SimDuration(dur_ns),
            compute_before: 0.0,
        }
    }

    fn seq(events: Vec<EventOccurrence>) -> OccurrenceSeq {
        OccurrenceSeq {
            rank: 0,
            events,
            tail_compute: 0.0,
        }
    }

    #[test]
    fn zero_threshold_merges_only_identical() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 2000, 100),
            occ(OpKind::Send, 1, 1800, 100),
            occ(OpKind::Send, 1, 2000, 200),
        ]);
        let c = cluster(&s, 0.0);
        assert_eq!(c.clusters.len(), 2);
        assert_eq!(c.symbols[0].0, c.symbols[2].0);
        assert_ne!(c.symbols[0].0, c.symbols[1].0);
    }

    #[test]
    fn paper_example_merges_at_sufficient_threshold() {
        // MPI_Send(3, 2000) + MPI_Send(3, 1800) -> MPI_Send(3, 1900).
        let s = seq(vec![
            occ(OpKind::Send, 3, 2000, 100),
            occ(OpKind::Send, 3, 1800, 100),
        ]);
        // scale = 2000; diff = 200 -> tau >= 0.1 merges.
        let c = cluster(&s, 0.1);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].bytes(), 1900);
        assert_eq!(c.clusters[0].count, 2);
    }

    #[test]
    fn below_threshold_stays_separate() {
        let s = seq(vec![
            occ(OpKind::Send, 3, 2000, 100),
            occ(OpKind::Send, 3, 1800, 100),
        ]);
        let c = cluster(&s, 0.05);
        assert_eq!(c.clusters.len(), 2);
    }

    #[test]
    fn different_kinds_never_merge() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 1000, 100),
            occ(OpKind::Isend, 1, 1000, 100),
        ]);
        let c = cluster(&s, 1.0);
        assert_eq!(c.clusters.len(), 2, "blocking vs nonblocking stay distinct");
    }

    #[test]
    fn different_peers_never_merge() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 1000, 100),
            occ(OpKind::Send, 2, 1000, 100),
        ]);
        let c = cluster(&s, 1.0);
        assert_eq!(c.clusters.len(), 2);
    }

    #[test]
    fn centroid_tracks_running_mean_of_duration() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 100, 1_000),
            occ(OpKind::Send, 1, 100, 3_000),
        ]);
        let c = cluster(&s, 0.0);
        assert_eq!(c.clusters.len(), 1);
        assert!((c.clusters[0].mean_dur_secs - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn full_threshold_merges_everything_with_same_key() {
        let s = seq(vec![
            occ(OpKind::Send, 1, 10, 100),
            occ(OpKind::Send, 1, 1_000_000, 100),
        ]);
        let c = cluster(&s, 1.0);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].bytes(), 500_005);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_threshold_rejected() {
        cluster(&seq(vec![]), 1.5);
    }

    #[test]
    fn symbols_preserve_compute_annotations() {
        let mut e = occ(OpKind::Send, 1, 100, 100);
        e.compute_before = 0.75;
        let s = seq(vec![e]);
        let c = cluster(&s, 0.0);
        assert_eq!(c.symbols, vec![(0, 0.75)]);
    }
}
