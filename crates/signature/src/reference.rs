//! Naive reference implementations of clustering and loop detection.
//!
//! These are the original, straight-line algorithms that `cluster` and
//! `find_loops` replaced with indexed/incremental versions. They are kept
//! verbatim as the executable specification: the optimized code paths must
//! produce *identical* output (same floats, same structure), and the
//! equivalence tests in `tests/prop_equivalence.rs` plus the deterministic
//! tests below enforce that on randomized traces. Being O(events × clusters)
//! and O(n² · max_period) respectively, they are unsuitable for real-size
//! traces — use [`crate::cluster()`] / [`crate::find_loops`] everywhere
//! outside of tests.

use crate::cluster::{ClusterInfo, ClusteredSeq};
use crate::feature::{EventOccurrence, OccurrenceSeq};
use crate::loopfind::LoopFindOptions;
use crate::signature::{CompressionOutcome, ExecutionSignature, SignatureOptions};
use crate::token::{merge_weighted, seq_structurally_eq, structural_hash, Tok};
use pskel_trace::ProcessTrace;

/// Reference leader clustering: linear scan over all clusters per event.
pub fn naive_cluster(seq: &OccurrenceSeq, tau: f64) -> ClusteredSeq {
    assert!(
        (0.0..=1.0).contains(&tau),
        "similarity threshold must be in [0,1], got {tau}"
    );
    let scale = seq.byte_scale();
    let max_diff = tau * scale;

    let mut clusters: Vec<ClusterInfo> = Vec::new();
    let mut symbols = Vec::with_capacity(seq.events.len());

    for ev in &seq.events {
        let id = naive_assign(&mut clusters, ev, max_diff);
        symbols.push((id, ev.compute_before));
    }
    ClusteredSeq {
        rank: seq.rank,
        symbols,
        clusters,
        tail_compute: seq.tail_compute,
    }
}

fn naive_assign(clusters: &mut Vec<ClusterInfo>, ev: &EventOccurrence, max_diff: f64) -> u32 {
    for (i, c) in clusters.iter_mut().enumerate() {
        if c.key == ev.key && (c.mean_bytes - ev.bytes as f64).abs() <= max_diff {
            // Running mean update keeps the centroid the true average;
            // Welford's algorithm tracks the compute-gap variance.
            let n = c.count as f64;
            c.mean_bytes = (c.mean_bytes * n + ev.bytes as f64) / (n + 1.0);
            c.mean_dur_secs = (c.mean_dur_secs * n + ev.dur.as_secs_f64()) / (n + 1.0);
            let delta = ev.compute_before - c.mean_compute_secs;
            c.mean_compute_secs += delta / (n + 1.0);
            let delta2 = ev.compute_before - c.mean_compute_secs;
            c.m2_compute += delta * delta2;
            c.count += 1;
            return i as u32;
        }
    }
    clusters.push(ClusterInfo {
        key: ev.key.clone(),
        mean_bytes: ev.bytes as f64,
        mean_dur_secs: ev.dur.as_secs_f64(),
        count: 1,
        mean_compute_secs: ev.compute_before,
        m2_compute: 0.0,
    });
    (clusters.len() - 1) as u32
}

/// Reference loop detection: recompute hashes every pass, restart at period
/// 1 over the whole sequence after every fold.
pub fn naive_find_loops(mut toks: Vec<Tok>, opts: LoopFindOptions) -> Vec<Tok> {
    loop {
        let mut changed = false;
        let mut period = 1usize;
        while period <= toks.len() / 2 && period <= opts.max_period {
            let (folded, did) = naive_fold_pass(toks, period);
            toks = folded;
            if did {
                changed = true;
                toks = naive_coalesce(toks);
                period = 1; // inner structure changed; rescan small periods
            } else {
                period += 1;
            }
        }
        toks = naive_coalesce(toks);
        if !changed {
            return toks;
        }
    }
}

/// One left-to-right pass collapsing tandem repeats of window size `p`.
fn naive_fold_pass(toks: Vec<Tok>, p: usize) -> (Vec<Tok>, bool) {
    let n = toks.len();
    let hashes: Vec<u64> = toks.iter().map(structural_hash).collect();
    let windows_match = |i: usize| -> bool {
        hashes[i] == hashes[i + p]
            && hashes[i..i + p] == hashes[i + p..i + 2 * p]
            && seq_structurally_eq(&toks[i..i + p], &toks[i + p..i + 2 * p])
    };
    let mut out: Vec<Tok> = Vec::with_capacity(n);
    let mut changed = false;
    let mut i = 0;
    while i < n {
        if i + 2 * p <= n && windows_match(i) {
            let mut reps = 2usize;
            while i + (reps + 1) * p <= n
                && hashes[i..i + p] == hashes[i + reps * p..i + (reps + 1) * p]
                && seq_structurally_eq(&toks[i..i + p], &toks[i + reps * p..i + (reps + 1) * p])
            {
                reps += 1;
            }
            let mut body: Vec<Tok> = toks[i..i + p].to_vec();
            for k in 1..reps {
                merge_weighted(&mut body, &toks[i + k * p..i + (k + 1) * p], k as f64, 1.0);
            }
            out.push(Tok::Loop {
                count: reps as u64,
                body,
            });
            i += reps * p;
            changed = true;
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    (out, changed)
}

fn naive_coalesce(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(toks.len());
    for t in toks {
        let t = naive_canonicalize(t);
        match (out.last_mut(), t) {
            (
                Some(Tok::Loop {
                    count: ca,
                    body: ba,
                }),
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) if seq_structurally_eq(ba, &bb) => {
                merge_weighted(ba, &bb, *ca as f64, cb as f64);
                *ca += cb;
            }
            (_, t) => out.push(t),
        }
    }
    out
}

fn naive_canonicalize(t: Tok) -> Tok {
    match t {
        Tok::Loop { count, mut body } => {
            body = body.into_iter().map(naive_canonicalize).collect();
            body = naive_coalesce_inner(body);
            if count == 1 && body.len() == 1 {
                return body.pop().unwrap();
            }
            if body.len() == 1 {
                if let Tok::Loop {
                    count: ci,
                    body: bi,
                } = &body[0]
                {
                    return Tok::Loop {
                        count: count * ci,
                        body: bi.clone(),
                    };
                }
            }
            Tok::Loop { count, body }
        }
        s => s,
    }
}

fn naive_coalesce_inner(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(toks.len());
    for t in toks {
        match (out.last_mut(), t) {
            (
                Some(Tok::Loop {
                    count: ca,
                    body: ba,
                }),
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) if seq_structurally_eq(ba, &bb) => {
                merge_weighted(ba, &bb, *ca as f64, cb as f64);
                *ca += cb;
            }
            (_, t) => out.push(t),
        }
    }
    out
}

/// Reference threshold search composed from the naive stages, with the same
/// integer-indexed τ schedule as the optimized [`crate::compress_process`]
/// so the two can be compared for exact equality.
pub fn naive_compress_process(
    trace: &ProcessTrace,
    target_q: f64,
    opts: SignatureOptions,
) -> CompressionOutcome {
    assert!(
        target_q >= 1.0,
        "target compression ratio must be >= 1, got {target_q}"
    );
    assert!(
        opts.threshold_step > 0.0,
        "threshold step must be positive, got {}",
        opts.threshold_step
    );
    let seq = OccurrenceSeq::from_trace(trace);
    let mut best: Option<ExecutionSignature> = None;
    for i in 0u32.. {
        let tau = opts.min_threshold + f64::from(i) * opts.threshold_step;
        if i > 0 && tau > opts.max_threshold {
            break;
        }
        let clustered = naive_cluster(&seq, tau.min(1.0));
        let trace_len = clustered.symbols.len();
        let toks: Vec<Tok> = clustered
            .symbols
            .iter()
            .map(|&(id, compute_before)| Tok::Sym { id, compute_before })
            .collect();
        let sig = ExecutionSignature {
            rank: clustered.rank,
            tokens: naive_find_loops(toks, opts.loopfind),
            clusters: clustered.clusters,
            tail_compute: clustered.tail_compute,
            trace_len,
            threshold: tau,
        };
        let ratio = sig.compression_ratio();
        let better = best
            .as_ref()
            .map(|b| ratio > b.compression_ratio())
            .unwrap_or(true);
        if better {
            best = Some(sig);
        }
        if best.as_ref().unwrap().compression_ratio() >= target_q {
            return CompressionOutcome {
                signature: best.unwrap(),
                saturated: false,
            };
        }
    }
    CompressionOutcome {
        signature: best.expect("first threshold step is always evaluated"),
        saturated: true,
    }
}
