//! # pskel-signature — trace compression into execution signatures
//!
//! Implements §3.2 of the paper: the application execution trace is
//! compressed into a compact *execution signature* in two stages —
//!
//! 1. **Clustering** ([`cluster()`]): substantially similar events (same MPI
//!    primitive, peer, tag; message sizes within the similarity threshold)
//!    are merged into clusters represented by their centroid, producing a
//!    string of symbols.
//! 2. **Loop detection** ([`find_loops`]): repeated substrings of the
//!    symbol string are folded into recursive loop nests, turning
//!    `αββγββγββγκαα` into `α[(β)²γ]³κ[α]²`.
//!
//! The similarity threshold is searched iteratively ([`compress_process`])
//! until the desired compression ratio Q is reached, with Q = K/2 chosen by
//! the skeleton-construction layer.

pub mod cluster;
pub mod feature;
pub mod loopfind;
pub mod reference;
pub mod signature;
pub mod token;

pub use cluster::{cluster, ClusterCache, ClusterInfo, ClusteredSeq};
pub use feature::{EventKey, EventOccurrence, OccurrenceSeq};
pub use loopfind::{find_loops, LoopFindOptions};
pub use signature::{
    compress_app, compress_process, compress_seq, AppCompression, AppSignature, CompressionOutcome,
    ExecutionSignature, RankSaturation, SignatureOptions,
};
pub use token::Tok;
