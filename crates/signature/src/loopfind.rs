//! Loop detection: fold repeated substrings into loop nests (paper §3.2,
//! second stage).
//!
//! The algorithm repeatedly collapses *tandem repeats* — adjacent equal
//! windows — working from the smallest period upward and restarting after
//! every change, until a fixpoint. Folding inner repeats first lets outer
//! periodic structure surface as short windows over `Loop` tokens, which is
//! how `αββγββγββγκαα` becomes the paper's `α[(β)²γ]³κ[α]²`.
//!
//! Compute annotations of merged iterations are averaged (weighted by the
//! iteration counts each side represents), exactly the paper's policy of
//! using the mean duration of corresponding compute events; expansion
//! totals are preserved.

use crate::token::{merge_weighted, seq_structurally_eq, structural_hash, Tok};

/// Options controlling loop detection.
#[derive(Clone, Copy, Debug)]
pub struct LoopFindOptions {
    /// Longest window (in tokens) considered when searching for repeats.
    /// Real application phase bodies are short once inner loops have been
    /// folded; the cap bounds worst-case cost on pathological inputs.
    pub max_period: usize,
}

impl Default for LoopFindOptions {
    fn default() -> Self {
        LoopFindOptions { max_period: 512 }
    }
}

/// Fold a token sequence into loop nests.
pub fn find_loops(mut toks: Vec<Tok>, opts: LoopFindOptions) -> Vec<Tok> {
    loop {
        let mut changed = false;
        let mut period = 1usize;
        while period <= toks.len() / 2 && period <= opts.max_period {
            let (folded, did) = fold_pass(toks, period);
            toks = folded;
            if did {
                changed = true;
                toks = coalesce(toks);
                period = 1; // inner structure changed; rescan small periods
            } else {
                period += 1;
            }
        }
        toks = coalesce(toks);
        if !changed {
            return toks;
        }
    }
}

/// One left-to-right pass collapsing tandem repeats of window size `p`.
fn fold_pass(toks: Vec<Tok>, p: usize) -> (Vec<Tok>, bool) {
    let n = toks.len();
    // Hash screen: windows whose hash slices differ cannot be equal, and
    // the first-element check rejects most positions in O(1).
    let hashes: Vec<u64> = toks.iter().map(structural_hash).collect();
    let windows_match = |i: usize| -> bool {
        hashes[i] == hashes[i + p]
            && hashes[i..i + p] == hashes[i + p..i + 2 * p]
            && seq_structurally_eq(&toks[i..i + p], &toks[i + p..i + 2 * p])
    };
    let mut out: Vec<Tok> = Vec::with_capacity(n);
    let mut changed = false;
    let mut i = 0;
    while i < n {
        if i + 2 * p <= n && windows_match(i) {
            // Extend the run of equal windows as far as it goes.
            let mut reps = 2usize;
            while i + (reps + 1) * p <= n
                && hashes[i..i + p] == hashes[i + reps * p..i + (reps + 1) * p]
                && seq_structurally_eq(&toks[i..i + p], &toks[i + reps * p..i + (reps + 1) * p])
            {
                reps += 1;
            }
            // Average the windows into one body (weights preserve totals).
            let mut body: Vec<Tok> = toks[i..i + p].to_vec();
            for k in 1..reps {
                merge_weighted(&mut body, &toks[i + k * p..i + (k + 1) * p], k as f64, 1.0);
            }
            out.push(Tok::Loop {
                count: reps as u64,
                body,
            });
            i += reps * p;
            changed = true;
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    (out, changed)
}

/// Cleanup rewrites that keep the tree canonical:
/// * adjacent loops with structurally equal bodies merge their counts;
/// * a loop immediately followed/preceded by one more copy of its body is
///   not collapsed (that unrolled copy carries distinct compute values and
///   will be re-examined by later passes anyway);
/// * single-iteration loops unwrap;
/// * loops whose body is exactly one loop multiply out.
fn coalesce(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(toks.len());
    for t in toks {
        let t = canonicalize(t);
        match (out.last_mut(), t) {
            (
                Some(Tok::Loop {
                    count: ca,
                    body: ba,
                }),
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) if seq_structurally_eq(ba, &bb) => {
                merge_weighted(ba, &bb, *ca as f64, cb as f64);
                *ca += cb;
            }
            (_, t) => out.push(t),
        }
    }
    out
}

fn canonicalize(t: Tok) -> Tok {
    match t {
        Tok::Loop { count, mut body } => {
            body = body.into_iter().map(canonicalize).collect();
            body = coalesce_inner(body);
            if count == 1 && body.len() == 1 {
                return body.pop().unwrap();
            }
            if body.len() == 1 {
                if let Tok::Loop {
                    count: ci,
                    body: bi,
                } = &body[0]
                {
                    return Tok::Loop {
                        count: count * ci,
                        body: bi.clone(),
                    };
                }
            }
            Tok::Loop { count, body }
        }
        s => s,
    }
}

fn coalesce_inner(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(toks.len());
    for t in toks {
        match (out.last_mut(), t) {
            (
                Some(Tok::Loop {
                    count: ca,
                    body: ba,
                }),
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) if seq_structurally_eq(ba, &bb) => {
                merge_weighted(ba, &bb, *ca as f64, cb as f64);
                *ca += cb;
            }
            (_, t) => out.push(t),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{expand_ids, render, total_compute};

    fn sym(id: u32) -> Tok {
        Tok::Sym {
            id,
            compute_before: 0.0,
        }
    }

    fn symc(id: u32, c: f64) -> Tok {
        Tok::Sym {
            id,
            compute_before: c,
        }
    }

    fn syms(ids: &[u32]) -> Vec<Tok> {
        ids.iter().map(|&i| sym(i)).collect()
    }

    fn fold(ids: &[u32]) -> Vec<Tok> {
        find_loops(syms(ids), LoopFindOptions::default())
    }

    // Symbols: alpha=0, beta=1, gamma=2, kappa=3.

    #[test]
    fn paper_example_folds_to_nested_loops() {
        // αββγββγββγκαα  ->  α[(β)²γ]³κ[α]²
        let toks = fold(&[0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0]);
        assert_eq!(render(&toks), "s0 [[s1]^2 s2]^3 s3 [s0]^2");
    }

    #[test]
    fn expansion_is_inverse_of_folding() {
        let input = vec![0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0];
        let toks = fold(&input);
        assert_eq!(expand_ids(&toks), input);
    }

    #[test]
    fn simple_run_becomes_one_loop() {
        let toks = fold(&[5, 5, 5, 5]);
        assert_eq!(render(&toks), "[s5]^4");
    }

    #[test]
    fn no_repeats_is_identity() {
        let input = vec![0, 1, 2, 3, 4];
        let toks = fold(&input);
        assert_eq!(expand_ids(&toks), input);
        assert_eq!(toks.len(), 5, "nothing to fold");
    }

    #[test]
    fn long_period_repeats_fold() {
        // (abcde)x3
        let mut input = Vec::new();
        for _ in 0..3 {
            input.extend_from_slice(&[0, 1, 2, 3, 4]);
        }
        let toks = fold(&input);
        assert_eq!(render(&toks), "[s0 s1 s2 s3 s4]^3");
    }

    #[test]
    fn nested_three_levels() {
        // ((ab)^2 c)^2 = ababcababc
        let input = vec![0, 1, 0, 1, 2, 0, 1, 0, 1, 2];
        let toks = fold(&input);
        assert_eq!(render(&toks), "[[s0 s1]^2 s2]^2");
        assert_eq!(expand_ids(&toks), input);
    }

    #[test]
    fn partial_trailing_iteration_stays_unrolled() {
        // (ab)^3 a : trailing 'a' must not join the loop.
        let input = vec![0, 1, 0, 1, 0, 1, 0];
        let toks = fold(&input);
        assert_eq!(expand_ids(&toks), input);
        assert_eq!(render(&toks), "[s0 s1]^3 s0");
    }

    #[test]
    fn compute_annotations_are_averaged_and_totals_preserved() {
        let input = vec![symc(1, 1.0), symc(1, 2.0), symc(1, 6.0)];
        let before = total_compute(&input);
        let toks = find_loops(input, LoopFindOptions::default());
        assert_eq!(render(&toks), "[s1]^3");
        let after = total_compute(&toks);
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
        match &toks[0] {
            Tok::Loop { body, .. } => match &body[0] {
                Tok::Sym { compute_before, .. } => {
                    assert!((compute_before - 3.0).abs() < 1e-12)
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn adjacent_equal_loops_coalesce() {
        // Build [a]^2 [a]^2 by hand and coalesce via find_loops.
        let toks = vec![
            Tok::Loop {
                count: 2,
                body: vec![symc(0, 1.0)],
            },
            Tok::Loop {
                count: 2,
                body: vec![symc(0, 3.0)],
            },
        ];
        let before = total_compute(&toks);
        let out = find_loops(toks, LoopFindOptions::default());
        assert_eq!(render(&out), "[s0]^4");
        assert!((total_compute(&out) - before).abs() < 1e-12);
    }

    #[test]
    fn max_period_caps_window() {
        // Period-3 repeat, but max_period 2: must stay unfolded.
        let input = vec![0, 1, 2, 0, 1, 2];
        let toks = find_loops(syms(&input), LoopFindOptions { max_period: 2 });
        assert_eq!(expand_ids(&toks), input);
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn interleaved_phases_fold_independently() {
        // aabb aabb -> [[a]^2 [b]^2]^2
        let input = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let toks = fold(&input);
        assert_eq!(render(&toks), "[[s0]^2 [s1]^2]^2");
    }

    #[test]
    fn large_uniform_input_is_fast_and_exact() {
        let input: Vec<u32> = std::iter::repeat_n([0, 1, 2], 10_000).flatten().collect();
        let toks = fold(&input);
        assert_eq!(render(&toks), "[s0 s1 s2]^10000");
        assert_eq!(expand_ids(&toks), input);
    }
}
