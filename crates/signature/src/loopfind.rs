//! Loop detection: fold repeated substrings into loop nests (paper §3.2,
//! second stage).
//!
//! The algorithm repeatedly collapses *tandem repeats* — adjacent equal
//! windows — working from the smallest period upward and restarting after
//! every change, until a fixpoint. Folding inner repeats first lets outer
//! periodic structure surface as short windows over `Loop` tokens, which is
//! how `αββγββγββγκαα` becomes the paper's `α[(β)²γ]³κ[α]²`.
//!
//! Compute annotations of merged iterations are averaged (weighted by the
//! iteration counts each side represents), exactly the paper's policy of
//! using the mean duration of corresponding compute events; expansion
//! totals are preserved.
//!
//! The fold order (and therefore the output) is that of the straight-line
//! algorithm kept in [`reference::naive_find_loops`](crate::reference::
//! naive_find_loops); the engine here reaches the same fixpoint faster:
//!
//! * each token carries its `structural_hash`, computed once at rewrite
//!   time instead of re-walking the whole sequence every pass;
//! * window equality is screened by a Rabin–Karp rolling hash over the
//!   cached token hashes, making each probe O(1) before the authoritative
//!   structural comparison (false screen positives are merely re-checked,
//!   so the result never depends on the hash scheme);
//! * every token carries a modification stamp, and each period records when
//!   it last verified the sequence. A pass only probes windows overlapping
//!   tokens newer than that watermark: a window of all-older tokens was
//!   contiguous and probed at the recorded pass (folds and merges always
//!   leave a freshly-stamped token in place of what they consume, so
//!   surviving old neighborhoods are unchanged) and cannot have started
//!   folding since. This removes the original
//!   O(n² · max_period) restart-from-scratch worst case the `max_period`
//!   cap papered over;
//! * a feasible-period bitmap (distances realized between equal token
//!   hashes) skips entire periods that provably cannot host a repeat,
//!   so the first climb does not scan the sequence once per period.

use crate::token::{loop_hash, merge_weighted, seq_structurally_eq, structural_hash, Tok};

/// Options controlling loop detection.
#[derive(Clone, Copy, Debug)]
pub struct LoopFindOptions {
    /// Longest window (in tokens) considered when searching for repeats.
    /// Real application phase bodies are short once inner loops have been
    /// folded; the cap bounds worst-case cost on pathological inputs.
    pub max_period: usize,
}

impl Default for LoopFindOptions {
    fn default() -> Self {
        LoopFindOptions { max_period: 512 }
    }
}

/// A token plus its cached [`structural_hash`] and modification stamp.
struct HTok {
    tok: Tok,
    hash: u64,
    /// Clock value when this entry was created or structurally rewritten.
    mtime: u64,
}

impl HTok {
    fn new(tok: Tok) -> HTok {
        HTok {
            hash: structural_hash(&tok),
            tok,
            mtime: 1,
        }
    }
}

/// Fold a token sequence into loop nests.
pub fn find_loops(toks: Vec<Tok>, opts: LoopFindOptions) -> Vec<Tok> {
    let n = toks.len();
    let p_cap = opts.max_period.min(n / 2);
    let mut f = Folder {
        seq: toks.into_iter().map(HTok::new).collect(),
        dirty: (0..n as u32).collect(),
        feasible: FeasibleSet::all(),
        feasible_stale: true,
        verified: vec![0; p_cap + 1],
        clock: 1,
        max_period: opts.max_period,
    };
    loop {
        let mut changed = false;
        let mut period = 1usize;
        while period <= f.seq.len() / 2 && period <= f.max_period {
            if f.fold_pass(period) {
                changed = true;
                f.coalesce();
                period = 1; // inner structure changed; rescan small periods
            } else {
                period += 1;
            }
        }
        f.coalesce();
        if !changed {
            return f.seq.into_iter().map(|e| e.tok).collect();
        }
    }
}

struct Folder {
    seq: Vec<HTok>,
    /// Positions of every entry newer than the oldest per-period watermark
    /// at the last rebuild, ascending — the only places new repeats can
    /// start. Refreshed whenever the sequence is rewritten.
    dirty: Vec<u32>,
    /// Periods at which a tandem repeat is possible at all (some pair of
    /// equal token hashes sits at that distance). Recomputed lazily: only
    /// when a climb reaches [`FEASIBLE_MIN_PERIOD`] after a rewrite, so
    /// fold-heavy phases (which restart at small periods constantly) don't
    /// pay for it.
    feasible: FeasibleSet,
    feasible_stale: bool,
    /// Per-period clock watermark: entries with `mtime <=` it are proven
    /// not to start a repeat of that period.
    verified: Vec<u64>,
    clock: u64,
    max_period: usize,
}

/// Periods below this are probed directly (a scan there is cheaper than
/// keeping the feasible-period bitmap fresh across rewrites).
const FEASIBLE_MIN_PERIOD: usize = 16;

/// Bitmap of periods that could host a tandem repeat. A period-p repeat
/// forces `hash[i] == hash[i + p]` at its start, so only distances realized
/// between equal token hashes are feasible; the rest of the period climb is
/// skipped without scanning. When computing the distance set would cost
/// more than the climb it saves (massively repetitive sequences — which
/// fold at small periods immediately), it degrades to "all feasible".
struct FeasibleSet {
    bits: Vec<u64>,
    all: bool,
}

impl FeasibleSet {
    fn all() -> FeasibleSet {
        FeasibleSet {
            bits: Vec::new(),
            all: true,
        }
    }

    fn contains(&self, p: usize) -> bool {
        self.all || self.bits[p / 64] & (1u64 << (p % 64)) != 0
    }
}

impl Folder {
    /// One left-to-right pass collapsing tandem repeats of window size `p`,
    /// probing only candidate windows that overlap a dirty entry.
    fn fold_pass(&mut self, p: usize) -> bool {
        let n = self.seq.len();
        let pre = self.clock;
        if p >= FEASIBLE_MIN_PERIOD {
            if self.feasible_stale {
                self.rebuild_feasible();
                self.feasible_stale = false;
            }
            if !self.feasible.contains(p) {
                // No pair of equal token hashes sits at distance p, so no
                // window can equal its right neighbor: the pass is a no-op.
                self.verified[p] = pre;
                return false;
            }
        }
        let watermark = self.verified[p];

        // Candidate start positions, as merged inclusive ranges: i such
        // that the window [i, i + 2p) contains an entry newer than the
        // watermark.
        let last_start = n - 2 * p; // n >= 2p guaranteed by the caller
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        if watermark == 0 {
            // First visit of this period: every entry is newer. The dirty
            // index is pruned against *visited* periods only, so it must
            // not be consulted here.
            ranges.push((0, last_start));
        } else {
            for &dpos in &self.dirty {
                let j = dpos as usize;
                if self.seq[j].mtime <= watermark {
                    continue;
                }
                let lo = j.saturating_sub(2 * p - 1);
                let hi = j.min(last_start);
                if lo > hi {
                    continue;
                }
                match ranges.last_mut() {
                    Some((_, e)) if lo <= *e + 1 => *e = (*e).max(hi),
                    _ => ranges.push((lo, hi)),
                }
            }
        }
        if ranges.is_empty() {
            self.verified[p] = pre;
            return false;
        }

        // Probe candidates left to right with a rolling polynomial hash
        // over the cached token hashes: two adjacent windows can only be
        // equal if their window hashes coincide.
        const B: u64 = 0x0100_0000_01b3;
        let bp = B.wrapping_pow(p as u32);
        let mut folds: Vec<(usize, usize)> = Vec::new(); // (start, reps)
        let mut cursor = 0usize;
        let mut prefix: Vec<u64> = Vec::new();
        for &(a, b) in &ranges {
            let span = b + 2 * p; // <= n because b <= last_start
            prefix.clear();
            prefix.push(0);
            for e in &self.seq[a..span] {
                let last = *prefix.last().unwrap();
                prefix.push(last.wrapping_mul(B).wrapping_add(e.hash));
            }
            // Window hash of [x, x + p) for x in [a, span - p].
            let whash = |x: usize| prefix[x + p - a].wrapping_sub(prefix[x - a].wrapping_mul(bp));
            for i in a..=b {
                if i < cursor || whash(i) != whash(i + p) || !self.windows_eq(i, i + p, p) {
                    continue;
                }
                // Extend the run of equal windows as far as it goes.
                let mut reps = 2usize;
                while i + (reps + 1) * p <= n && self.windows_eq(i, i + reps * p, p) {
                    reps += 1;
                }
                folds.push((i, reps));
                cursor = i + reps * p;
            }
        }
        if folds.is_empty() {
            self.verified[p] = pre;
            return false;
        }

        // Rebuild the sequence, averaging each run's windows into one body
        // (weights preserve expansion totals).
        self.clock += 1;
        let stamp = self.clock;
        let input = std::mem::take(&mut self.seq);
        let mut out: Vec<HTok> = Vec::with_capacity(input.len());
        let mut iter = input.into_iter();
        let mut pos = 0usize;
        for &(start, reps) in &folds {
            while pos < start {
                out.push(iter.next().unwrap());
                pos += 1;
            }
            let mut body: Vec<Tok> = Vec::with_capacity(p);
            let mut body_hashes: Vec<u64> = Vec::with_capacity(p);
            for _ in 0..p {
                let e = iter.next().unwrap();
                body_hashes.push(e.hash);
                body.push(e.tok);
            }
            let mut window: Vec<Tok> = Vec::with_capacity(p);
            for k in 1..reps {
                window.clear();
                window.extend(iter.by_ref().take(p).map(|e| e.tok));
                merge_weighted(&mut body, &window, k as f64, 1.0);
            }
            pos += reps * p;
            out.push(HTok {
                hash: loop_hash(reps as u64, body_hashes.iter().copied()),
                tok: Tok::Loop {
                    count: reps as u64,
                    body,
                },
                mtime: stamp,
            });
        }
        out.extend(iter);
        self.seq = out;
        // Record the verification before rebuilding, so the horizon below
        // sees this period as visited and keeps only the fresh stamps.
        self.verified[p] = pre;
        self.rebuild_dirty();
        true
    }

    /// Structural equality of the windows at `x` and `y`, screened by the
    /// cached per-token hashes.
    fn windows_eq(&self, x: usize, y: usize, p: usize) -> bool {
        let (a, b) = (&self.seq[x..x + p], &self.seq[y..y + p]);
        a.iter().zip(b).all(|(u, v)| u.hash == v.hash)
            && a.iter()
                .zip(b)
                .all(|(u, v)| Tok::structurally_eq(&u.tok, &v.tok))
    }

    /// Cleanup rewrites that keep the tree canonical:
    /// * adjacent loops with structurally equal bodies merge their counts;
    /// * single-iteration loops unwrap;
    /// * loops whose body is exactly one loop multiply out.
    ///
    /// Rewritten entries get a fresh stamp (merging changes counts and
    /// adjacency, so affected neighborhoods must be re-probed); entries
    /// passed through untouched keep their verification history.
    fn coalesce(&mut self) {
        self.clock += 1;
        let stamp = self.clock;
        let input = std::mem::take(&mut self.seq);
        let mut out: Vec<HTok> = Vec::with_capacity(input.len());
        let mut any = false;
        for e in input {
            let mut rewritten = false;
            let tok = canonicalize(e.tok, &mut rewritten);
            let (hash, mtime) = if rewritten {
                any = true;
                (structural_hash(&tok), stamp)
            } else {
                (e.hash, e.mtime)
            };
            let merged = if let (
                Some(last),
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) = (out.last_mut(), &tok)
            {
                if let Tok::Loop {
                    count: ca,
                    body: ba,
                } = &mut last.tok
                {
                    if seq_structurally_eq(ba, bb) {
                        merge_weighted(ba, bb, *ca as f64, *cb as f64);
                        *ca += *cb;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            } else {
                false
            };
            if merged {
                any = true;
                let last = out.last_mut().unwrap();
                last.hash = structural_hash(&last.tok);
                last.mtime = stamp;
            } else {
                out.push(HTok { tok, hash, mtime });
            }
        }
        self.seq = out;
        if any {
            self.rebuild_dirty();
        }
    }

    /// Recompute the dirty-position index: entries older than every
    /// *visited* period's watermark can never be probed through the index
    /// again and are dropped from it. Unvisited periods (watermark 0) scan
    /// the full sequence directly and never consult the index, so they
    /// don't hold the horizon down.
    fn rebuild_dirty(&mut self) {
        let p_cap = self
            .max_period
            .min(self.seq.len() / 2)
            .min(self.verified.len() - 1);
        let horizon = self.verified[1..=p_cap]
            .iter()
            .copied()
            .filter(|&w| w != 0)
            .min()
            .unwrap_or(u64::MAX);
        self.dirty.clear();
        for (i, e) in self.seq.iter().enumerate() {
            if e.mtime > horizon {
                self.dirty.push(i as u32);
            }
        }
        self.feasible_stale = true;
    }

    /// Recompute the feasible-period bitmap: sort (hash, position) pairs
    /// and mark every distance <= p_cap realized within an equal-hash
    /// group. Capped so massively repetitive inputs — which fold at small
    /// periods almost immediately — fall back to "all feasible" instead of
    /// enumerating quadratically many pairs.
    fn rebuild_feasible(&mut self) {
        let n = self.seq.len();
        let p_cap = self.max_period.min(n / 2);
        if p_cap == 0 {
            self.feasible = FeasibleSet::all();
            return;
        }
        let mut by_hash: Vec<(u64, u32)> = self
            .seq
            .iter()
            .enumerate()
            .map(|(i, e)| (e.hash, i as u32))
            .collect();
        by_hash.sort_unstable();
        let mut bits = vec![0u64; p_cap / 64 + 1];
        let budget = 4 * n + 1024;
        let mut work = 0usize;
        let mut g0 = 0usize;
        for i in 1..=by_hash.len() {
            if i < by_hash.len() && by_hash[i].0 == by_hash[g0].0 {
                continue;
            }
            let group = &by_hash[g0..i];
            g0 = i;
            for (a, &(_, pa)) in group.iter().enumerate() {
                for &(_, pb) in &group[a + 1..] {
                    let d = (pb - pa) as usize;
                    if d > p_cap {
                        break;
                    }
                    work += 1;
                    if work > budget {
                        self.feasible = FeasibleSet::all();
                        return;
                    }
                    bits[d / 64] |= 1u64 << (d % 64);
                }
            }
        }
        self.feasible = FeasibleSet { bits, all: false };
    }
}

fn canonicalize(t: Tok, changed: &mut bool) -> Tok {
    match t {
        Tok::Loop { count, mut body } => {
            body = body.into_iter().map(|b| canonicalize(b, changed)).collect();
            body = coalesce_inner(body, changed);
            if count == 1 && body.len() == 1 {
                *changed = true;
                return body.pop().unwrap();
            }
            if body.len() == 1 {
                if let Tok::Loop {
                    count: ci,
                    body: bi,
                } = &body[0]
                {
                    *changed = true;
                    return Tok::Loop {
                        count: count * ci,
                        body: bi.clone(),
                    };
                }
            }
            Tok::Loop { count, body }
        }
        s => s,
    }
}

fn coalesce_inner(toks: Vec<Tok>, changed: &mut bool) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(toks.len());
    for t in toks {
        match (out.last_mut(), t) {
            (
                Some(Tok::Loop {
                    count: ca,
                    body: ba,
                }),
                Tok::Loop {
                    count: cb,
                    body: bb,
                },
            ) if seq_structurally_eq(ba, &bb) => {
                merge_weighted(ba, &bb, *ca as f64, cb as f64);
                *ca += cb;
                *changed = true;
            }
            (_, t) => out.push(t),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{expand_ids, render, total_compute};

    fn sym(id: u32) -> Tok {
        Tok::Sym {
            id,
            compute_before: 0.0,
        }
    }

    fn symc(id: u32, c: f64) -> Tok {
        Tok::Sym {
            id,
            compute_before: c,
        }
    }

    fn syms(ids: &[u32]) -> Vec<Tok> {
        ids.iter().map(|&i| sym(i)).collect()
    }

    fn fold(ids: &[u32]) -> Vec<Tok> {
        find_loops(syms(ids), LoopFindOptions::default())
    }

    // Symbols: alpha=0, beta=1, gamma=2, kappa=3.

    #[test]
    fn paper_example_folds_to_nested_loops() {
        // αββγββγββγκαα  ->  α[(β)²γ]³κ[α]²
        let toks = fold(&[0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0]);
        assert_eq!(render(&toks), "s0 [[s1]^2 s2]^3 s3 [s0]^2");
    }

    #[test]
    fn expansion_is_inverse_of_folding() {
        let input = vec![0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0];
        let toks = fold(&input);
        assert_eq!(expand_ids(&toks), input);
    }

    #[test]
    fn simple_run_becomes_one_loop() {
        let toks = fold(&[5, 5, 5, 5]);
        assert_eq!(render(&toks), "[s5]^4");
    }

    #[test]
    fn no_repeats_is_identity() {
        let input = vec![0, 1, 2, 3, 4];
        let toks = fold(&input);
        assert_eq!(expand_ids(&toks), input);
        assert_eq!(toks.len(), 5, "nothing to fold");
    }

    #[test]
    fn long_period_repeats_fold() {
        // (abcde)x3
        let mut input = Vec::new();
        for _ in 0..3 {
            input.extend_from_slice(&[0, 1, 2, 3, 4]);
        }
        let toks = fold(&input);
        assert_eq!(render(&toks), "[s0 s1 s2 s3 s4]^3");
    }

    #[test]
    fn nested_three_levels() {
        // ((ab)^2 c)^2 = ababcababc
        let input = vec![0, 1, 0, 1, 2, 0, 1, 0, 1, 2];
        let toks = fold(&input);
        assert_eq!(render(&toks), "[[s0 s1]^2 s2]^2");
        assert_eq!(expand_ids(&toks), input);
    }

    #[test]
    fn partial_trailing_iteration_stays_unrolled() {
        // (ab)^3 a : trailing 'a' must not join the loop.
        let input = vec![0, 1, 0, 1, 0, 1, 0];
        let toks = fold(&input);
        assert_eq!(expand_ids(&toks), input);
        assert_eq!(render(&toks), "[s0 s1]^3 s0");
    }

    #[test]
    fn compute_annotations_are_averaged_and_totals_preserved() {
        let input = vec![symc(1, 1.0), symc(1, 2.0), symc(1, 6.0)];
        let before = total_compute(&input);
        let toks = find_loops(input, LoopFindOptions::default());
        assert_eq!(render(&toks), "[s1]^3");
        let after = total_compute(&toks);
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
        match &toks[0] {
            Tok::Loop { body, .. } => match &body[0] {
                Tok::Sym { compute_before, .. } => {
                    assert!((compute_before - 3.0).abs() < 1e-12)
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn adjacent_equal_loops_coalesce() {
        // Build [a]^2 [a]^2 by hand and coalesce via find_loops.
        let toks = vec![
            Tok::Loop {
                count: 2,
                body: vec![symc(0, 1.0)],
            },
            Tok::Loop {
                count: 2,
                body: vec![symc(0, 3.0)],
            },
        ];
        let before = total_compute(&toks);
        let out = find_loops(toks, LoopFindOptions::default());
        assert_eq!(render(&out), "[s0]^4");
        assert!((total_compute(&out) - before).abs() < 1e-12);
    }

    #[test]
    fn max_period_caps_window() {
        // Period-3 repeat, but max_period 2: must stay unfolded.
        let input = vec![0, 1, 2, 0, 1, 2];
        let toks = find_loops(syms(&input), LoopFindOptions { max_period: 2 });
        assert_eq!(expand_ids(&toks), input);
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn interleaved_phases_fold_independently() {
        // aabb aabb -> [[a]^2 [b]^2]^2
        let input = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let toks = fold(&input);
        assert_eq!(render(&toks), "[[s0]^2 [s1]^2]^2");
    }

    #[test]
    fn large_uniform_input_is_fast_and_exact() {
        let input: Vec<u32> = std::iter::repeat_n([0, 1, 2], 10_000).flatten().collect();
        let toks = fold(&input);
        assert_eq!(render(&toks), "[s0 s1 s2]^10000");
        assert_eq!(expand_ids(&toks), input);
    }

    #[test]
    fn matches_reference_on_pseudorandom_sequences() {
        use crate::reference::naive_find_loops;
        // SplitMix64-driven low-alphabet strings with planted repeats: the
        // incremental engine must reach the reference fixpoint exactly,
        // including the merged compute floats.
        let mut state = 0x5eed_cafe_u64;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for case in 0..50 {
            let len = 1 + (next() % 120) as usize;
            let alphabet = 1 + (next() % 4) as u32;
            let mut input: Vec<Tok> = Vec::with_capacity(len);
            while input.len() < len {
                let id = (next() % alphabet as u64) as u32;
                let c = (next() % 1000) as f64 / 250.0;
                input.push(symc(id, c));
                // Occasionally plant an immediate repeat of the tail to
                // make folds likely at several periods.
                if next() % 3 == 0 {
                    let tail = 1 + (next() % 4) as usize;
                    let start = input.len().saturating_sub(tail);
                    let copy: Vec<Tok> = input[start..].to_vec();
                    input.extend(copy);
                }
            }
            let opts = LoopFindOptions {
                max_period: if next() % 2 == 0 { 512 } else { 3 },
            };
            let fast = find_loops(input.clone(), opts);
            let naive = naive_find_loops(input, opts);
            assert_eq!(fast, naive, "case {case} diverged");
        }
    }
}
