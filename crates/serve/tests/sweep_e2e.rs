//! End-to-end `/v1/sweep`: the vectorized batch endpoint must answer
//! per-point documents byte-identical to individually executed predicts
//! — the property the fleet router's batch planner relies on — and its
//! counters must record exactly one pass.

use pskel_serve::{Json, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let status: u16 = buf
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (
        status,
        buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string(),
    )
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .map(|v| v as u64)
        .unwrap_or_else(|| panic!("metrics exposition is missing {name}"))
}

#[test]
fn sweep_points_are_bit_identical_to_individual_predicts() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        store_dir: None,
        test_endpoints: false,
        summary_every: None,
    })
    .expect("server starts");

    // The sweep goes first, against cold worker contexts, so the batch is
    // answered through the forked sweep executor — the individual
    // predicts afterwards recompute each point on the serial path and
    // must still match byte for byte.
    let scenarios = ["cpu-one-node", "net-one-link", "dedicated"];
    let batches_before = counter(server.addr, "pskel_sweep_batches_total");
    let points_before = counter(server.addr, "pskel_sweep_points_total");
    let sweep_body = r#"{"bench":"CG","class":"S","target_secs":0.004,
        "scenarios":["cpu-one-node","net-one-link","dedicated"]}"#;
    let (status, resp) = http(server.addr, "POST", "/v1/sweep", sweep_body);
    assert_eq!(status, 200, "{resp}");
    let doc = Json::parse(&resp).expect("sweep response is JSON");
    assert_eq!(doc.get("count").and_then(Json::as_f64), Some(3.0), "{resp}");
    let points = match doc.get("points") {
        Some(Json::Arr(points)) => points.clone(),
        other => panic!("points missing: {other:?}"),
    };
    assert_eq!(points.len(), scenarios.len());
    for (s, point) in scenarios.iter().zip(&points) {
        let body = format!(r#"{{"bench":"CG","class":"S","target_secs":0.004,"scenario":"{s}"}}"#);
        let (status, direct) = http(server.addr, "POST", "/v1/predict", &body);
        assert_eq!(status, 200, "{direct}");
        assert_eq!(
            point.render(),
            direct,
            "sweep point diverged from the individual predict"
        );
    }

    // The cold batch ran through the forked executor, which shows up in
    // the sweep-fork counter family.
    assert!(
        counter(server.addr, "pskel_sweep_fork_points_total") >= scenarios.len() as u64,
        "forked sweep executor was bypassed"
    );

    // Exactly one vectorized pass of three points was recorded.
    assert_eq!(
        counter(server.addr, "pskel_sweep_batches_total"),
        batches_before + 1
    );
    assert_eq!(
        counter(server.addr, "pskel_sweep_points_total"),
        points_before + 3
    );

    // A `"sweep"` spec expands server-side into its points.
    let spec_body = r#"{"bench":"CG","class":"S","target_secs":0.004,
        "sweep":{"name":"pr","sweep":[{"var":"p","from":1,"to":2}],
                 "cpu":[{"node":"all","at":0.0,"procs":"$p"}]}}"#;
    let (status, resp) = http(server.addr, "POST", "/v1/sweep", spec_body);
    assert_eq!(status, 200, "{resp}");
    let doc = Json::parse(&resp).unwrap();
    assert_eq!(doc.get("count").and_then(Json::as_f64), Some(2.0), "{resp}");

    // Validation errors answer 400 with a reason.
    for bad in [
        r#"{"bench":"CG","scenarios":[]}"#,
        r#"{"bench":"CG","scenarios":["dedicated"],"sweep":{"name":"x"}}"#,
        r#"{"bench":"CG"}"#,
    ] {
        let (status, resp) = http(server.addr, "POST", "/v1/sweep", bad);
        assert_eq!(status, 400, "{bad} → {resp}");
        assert!(resp.contains("error"), "{resp}");
    }

    assert!(server.shutdown(Duration::from_secs(10)));
}
