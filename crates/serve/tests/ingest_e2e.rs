//! End-to-end streaming ingest: upload a binary PSKT trace over a real
//! TCP connection, check the streamed signature against the batch
//! pipeline byte-for-byte (via the response document), exercise the
//! provenance cache, corrupt-upload diagnostics, and the prediction
//! endpoint on the same server.

use pskel_serve::{Json, ServeConfig, Server};
use pskel_signature::SignatureOptions;
use pskel_store::binfmt::write_trace_binary;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn raw(addr: SocketAddr, req: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(req).unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let status: u16 = buf
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, buf)
}

fn upload_request(body: &[u8], provenance: Option<&str>) -> Vec<u8> {
    let extra = provenance
        .map(|p| format!("X-Provenance: {p}\r\n"))
        .unwrap_or_default();
    let mut req = format!(
        "POST /v1/trace HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         Content-Type: application/octet-stream\r\n{extra}Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

fn body_of(response: &str) -> &str {
    response
        .split("\r\n\r\n")
        .nth(1)
        .expect("response carries a body")
}

#[test]
fn upload_ingests_caches_and_predicts_end_to_end() {
    let dir = std::env::temp_dir().join("pskel-serve-ingest-e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 4,
        store_dir: Some(dir.clone()),
        test_endpoints: false,
        summary_every: None,
    })
    .expect("server starts");

    let trace = pskel_trace::synthetic_app_trace(3, 400, 0xE2E);
    let mut bin = Vec::new();
    write_trace_binary(&mut bin, &trace).unwrap();

    // Upload with a declared provenance: 200 with the full report.
    let (status, resp) = raw(server.addr, &upload_request(&bin, Some("e2e-trace")));
    assert_eq!(status, 200, "{resp}");
    let doc = Json::parse(body_of(&resp)).expect("response is JSON");
    assert_eq!(
        doc.get("app").and_then(Json::as_str),
        Some(trace.app.as_str())
    );
    assert_eq!(doc.get("ranks").and_then(Json::as_f64), Some(3.0));
    assert_eq!(doc.get("stored").and_then(Json::as_bool), Some(true));
    assert!(doc.get("phases").is_some(), "phases missing: {resp}");

    // The streamed signature equals the batch pipeline's, observed
    // through the response document's per-rank token counts.
    let batch = pskel_signature::compress_app(&trace, 32.0, SignatureOptions::default()).signature;
    let tokens: Vec<usize> = match doc.get("tokens_per_rank") {
        Some(Json::Arr(items)) => items.iter().map(|v| v.as_f64().unwrap() as usize).collect(),
        other => panic!("tokens_per_rank missing: {other:?}"),
    };
    let expected: Vec<usize> = batch.sigs.iter().map(|s| s.tokens.len()).collect();
    assert_eq!(tokens, expected);

    // Re-uploading the same provenance is answered from the store with
    // the identical document.
    let (status2, resp2) = raw(server.addr, &upload_request(&bin, Some("e2e-trace")));
    assert_eq!(status2, 200);
    assert_eq!(body_of(&resp), body_of(&resp2));

    // A truncated upload is a client error naming the failing offset.
    let mut cut = bin.clone();
    cut.truncate(bin.len() / 2);
    let (status3, resp3) = raw(server.addr, &upload_request(&cut, None));
    assert_eq!(status3, 400, "{resp3}");
    assert!(resp3.contains("byte offset"), "diagnostic missing: {resp3}");

    // The same server still answers predictions.
    let body = r#"{"bench":"CG","scenario":"dedicated","target_secs":0.004}"#;
    let req = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status4, resp4) = raw(server.addr, req.as_bytes());
    assert_eq!(status4, 200, "{resp4}");
    assert!(resp4.contains("predicted_secs"), "{resp4}");

    // Ingest traffic shows up in /metrics: one real ingest, one cache hit.
    let (status5, metrics) = raw(
        server.addr,
        b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status5, 200);
    assert!(
        metrics.contains("pskel_ingest_uploads_total 1"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("pskel_ingest_cache_hits_total 1"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("pskel_ingest_last_phases"),
        "metrics: {metrics}"
    );

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn upload_gate_429_carries_retry_after() {
    // Capacity 1: a single in-flight upload saturates the ingest gate,
    // which must answer further uploads exactly like the predict queue
    // does — 429 with a Retry-After hint, not a bare rejection.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 1,
        store_dir: None,
        test_endpoints: false,
        summary_every: None,
    })
    .expect("server starts");

    // Occupy the gate: declare a large body but stall after a few bytes,
    // so the connection thread holds the ActiveIngest guard while it
    // waits for the rest.
    let mut stalled = TcpStream::connect(server.addr).expect("connect");
    stalled
        .write_all(
            b"POST /v1/trace HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
              Content-Type: application/octet-stream\r\nContent-Length: 100000\r\n\r\nPSKT",
        )
        .unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let trace = pskel_trace::synthetic_app_trace(2, 100, 0x429);
    let mut bin = Vec::new();
    write_trace_binary(&mut bin, &trace).unwrap();
    let (status, resp) = raw(server.addr, &upload_request(&bin, Some("gate-test")));
    assert_eq!(status, 429, "{resp}");
    let headers = resp.split("\r\n\r\n").next().unwrap_or("");
    assert!(
        headers.to_ascii_lowercase().contains("retry-after: 1"),
        "429 from the upload gate must carry Retry-After, got: {headers}"
    );

    drop(stalled);
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn oversized_upload_is_413_with_hint_and_unnamed_uploads_work() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 4,
        store_dir: None,
        test_endpoints: false,
        summary_every: None,
    })
    .expect("server starts");

    // An octet-stream upload declaring more than the streaming cap is
    // rejected up front with the cap in the body.
    let head = format!(
        "POST /v1/trace HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         Content-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
        pskel_serve::http::MAX_UPLOAD_BYTES + 1
    );
    let (status, resp) = raw(server.addr, head.as_bytes());
    assert_eq!(status, 413, "{resp}");
    assert!(resp.contains("max_body_bytes"), "{resp}");

    // Without x-provenance the upload is keyed by content hash; with no
    // store configured it still ingests, just reports stored=false.
    let trace = pskel_trace::synthetic_app_trace(2, 200, 0xFAB);
    let mut bin = Vec::new();
    write_trace_binary(&mut bin, &trace).unwrap();
    let (status, resp) = raw(server.addr, &upload_request(&bin, None));
    assert_eq!(status, 200, "{resp}");
    let doc = Json::parse(body_of(&resp)).unwrap();
    assert_eq!(doc.get("stored").and_then(Json::as_bool), Some(false));
    assert!(doc.get("key").and_then(Json::as_str).is_some());

    assert!(server.shutdown(Duration::from_secs(10)));
}
