//! Property tests for the HTTP/1.1 request parser: whatever bytes a peer
//! sends, the parser must return an error (or a clean EOF) — never panic
//! and never loop forever.

use proptest::prelude::*;
use pskel_serve::http::read_request;
use std::io::Cursor;

proptest! {
    /// Arbitrary byte soup: parsing must terminate without panicking.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut cur = Cursor::new(bytes);
        let _ = read_request(&mut cur);
    }

    /// Well-formed requests round-trip every field.
    #[test]
    fn valid_requests_roundtrip(
        method in "[A-Z]{3,7}",
        path in "/[a-zA-Z0-9_./-]{0,40}",
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let mut cur = Cursor::new(raw);
        let req = read_request(&mut cur)
            .expect("well-formed request parses")
            .expect("not EOF");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.body, body);
        prop_assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    /// Any truncated prefix of a valid request is EOF or an error —
    /// never a panic, never a half-parsed success.
    #[test]
    fn truncated_requests_fail_gracefully(
        body in prop::collection::vec(any::<u8>(), 1..256),
        cut_permille in 0usize..1000,
    ) {
        let mut raw = format!(
            "POST /v1/predict HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let cut = raw.len() * cut_permille / 1000;
        prop_assume!(cut < raw.len()); // a full request would rightly parse
        let mut cur = Cursor::new(raw[..cut].to_vec());
        match read_request(&mut cur) {
            Ok(Some(req)) => prop_assert!(
                false,
                "truncated request must not parse, got {} {}",
                req.method,
                req.path
            ),
            Ok(None) | Err(_) => {}
        }
    }

    /// Query strings are stripped from the routed path.
    #[test]
    fn query_strings_are_stripped(path in "/[a-z]{1,20}", query in "[a-z=&]{0,20}") {
        let raw = format!("GET {path}?{query} HTTP/1.1\r\nHost: q\r\n\r\n").into_bytes();
        let mut cur = Cursor::new(raw);
        let req = read_request(&mut cur).unwrap().unwrap();
        prop_assert_eq!(req.path, path);
    }
}
