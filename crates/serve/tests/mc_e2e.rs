//! End-to-end Monte-Carlo predictions over HTTP: `"samples"` adds a
//! percentile `distribution` to `/v1/predict` responses, repeat requests
//! replay byte-identically from the per-seed cache, and bodies without
//! `"samples"` keep the exact legacy shape.

use pskel_serve::{Json, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let status: u16 = buf
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (
        status,
        buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string(),
    )
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .map(|v| v as u64)
        .unwrap_or_else(|| panic!("metrics exposition is missing {name}"))
}

/// A stochastic inline scenario: exponential CPU bursts on every node.
const NOISY_SCENARIO: &str = r#"{"name":"mc-e2e","noise":[
    {"kind":"cpu","node":"all","procs":2,
     "interarrival":"exp","interarrival_mean":0.002,
     "duration":"uniform","duration_min":0.001,"duration_max":0.004,
     "until":0.25}]}"#;

#[test]
fn samples_add_a_deterministic_distribution_and_legacy_bodies_are_unchanged() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        // One worker: repeat requests must land on the same context so
        // the memo (not a shared store) answers them.
        workers: 1,
        queue_capacity: 8,
        store_dir: None,
        test_endpoints: false,
        summary_every: None,
    })
    .expect("server starts");

    let plain_body =
        format!(r#"{{"bench":"CG","class":"S","target_secs":0.004,"scenario":{NOISY_SCENARIO}}}"#);
    let mc_body = format!(
        r#"{{"bench":"CG","class":"S","target_secs":0.004,"scenario":{NOISY_SCENARIO},
            "samples":5,"seed":11}}"#
    );

    // Legacy request first: no distribution anywhere in the body.
    let (status, plain) = http(server.addr, "POST", "/v1/predict", &plain_body);
    assert_eq!(status, 200, "{plain}");
    assert!(!plain.contains("distribution"), "{plain}");

    let samples_before = counter(server.addr, "pskel_mc_samples_total");
    let (status, first) = http(server.addr, "POST", "/v1/predict", &mc_body);
    assert_eq!(status, 200, "{first}");
    let doc = Json::parse(&first).expect("mc response is JSON");
    let dist = doc.get("distribution").expect("distribution present");
    assert_eq!(dist.get("samples").and_then(Json::as_f64), Some(5.0));
    assert_eq!(dist.get("seed").and_then(Json::as_f64), Some(11.0));
    for q in ["p50", "p90", "p99"] {
        let p = dist.get(q).unwrap_or_else(|| panic!("{q} missing"));
        let value = p.get("value").and_then(Json::as_f64).unwrap();
        assert!(p.get("ci_lo").and_then(Json::as_f64).unwrap() <= value);
        assert!(value <= p.get("ci_hi").and_then(Json::as_f64).unwrap());
    }
    assert_eq!(
        counter(server.addr, "pskel_mc_samples_total"),
        samples_before + 5
    );

    // The Monte-Carlo fields append to the legacy document: everything
    // before `"distribution"` is byte-identical to the plain body.
    let legacy_prefix = &plain[..plain.len() - 1];
    assert!(
        first.starts_with(legacy_prefix),
        "mc body must extend the legacy body:\n{plain}\n{first}"
    );

    // A repeat request replays from the per-seed cache: identical bytes,
    // zero new simulations. (Requests coalesce too, so force a distinct
    // connection after the first completed.)
    let (status, second) = http(server.addr, "POST", "/v1/predict", &mc_body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "repeat mc predict must be byte-identical");
    assert_eq!(
        counter(server.addr, "pskel_mc_samples_total"),
        samples_before + 5,
        "repeat request must not re-simulate"
    );
    assert!(counter(server.addr, "pskel_mc_cache_hits_total") >= 5);

    // Validation: samples only works with the skeleton method.
    let bad = format!(
        r#"{{"bench":"CG","class":"S","scenario":{NOISY_SCENARIO},
            "method":"average","samples":4}}"#
    );
    let (status, resp) = http(server.addr, "POST", "/v1/predict", &bad);
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("skeleton"), "{resp}");

    assert!(server.shutdown(Duration::from_secs(10)));
}
