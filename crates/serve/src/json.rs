//! A minimal, dependency-free JSON value: parse request bodies, build
//! response documents, render compactly.
//!
//! The service's API surface is small — flat objects of strings,
//! numbers and booleans in; one or two levels of nesting out — so a
//! self-contained implementation keeps the crate std-only and avoids
//! dragging a serialization framework into the hot request path. The
//! parser accepts full JSON (nested values, escapes, exponents) with a
//! recursion-depth guard; the renderer emits the compact form with no
//! insignificant whitespace.

use std::fmt::Write as _;

/// Nesting depth beyond which the parser refuses input; the API never
/// needs deep documents and a hostile body must not exhaust the stack.
const MAX_DEPTH: usize = 32;

/// A parsed or constructed JSON value. Objects preserve insertion
/// order, so rendered responses read in the order they were built.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the compact textual form (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            // JSON has no NaN/Infinity; null is the conventional stand-in.
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error, as is anything malformed.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".into());
        }
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("number {text:?} overflows at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape advanced past the hex
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character (the body was validated
                    // as UTF-8 before parsing).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (plus a following low-surrogate
    /// pair when needed); leaves `pos` after the consumed digits.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| "invalid surrogate pair".to_string());
                }
            }
            return Err("unpaired surrogate in \\u escape".into());
        }
        char::from_u32(hi).ok_or_else(|| "invalid \\u escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_api_request_shape() {
        let v =
            Json::parse(r#"{ "bench": "CG", "class": "S", "target_secs": 4e-3, "verify": true }"#)
                .unwrap();
        assert!(v.is_object());
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("CG"));
        assert_eq!(v.get("target_secs").and_then(Json::as_f64), Some(0.004));
        assert_eq!(v.get("verify").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn renders_compactly_in_insertion_order() {
        let v = Json::obj([
            ("status", Json::str("ok")),
            ("depth", Json::from(3u64)),
            ("draining", Json::from(false)),
            ("items", Json::Arr(vec![Json::from(1u64), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"status":"ok","depth":3,"draining":false,"items":[1,null]}"#
        );
    }

    #[test]
    fn roundtrips_nested_documents() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x","d":[true,false,null]},"e":"q\"uote\\"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""line\nbreak é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak é 😀"));
        let rendered = Json::Str("tab\there \"q\"".into()).render();
        assert_eq!(rendered, r#""tab\there \"q\"""#);
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("tab\there \"q\"")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{not json",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1 2]",
            "truth",
            "\"unterminated",
            r#""\q""#,
            r#""\ud800""#,
            "1e9999",
            "{} trailing",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
