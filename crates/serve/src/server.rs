//! The TCP front end: accept loop, connection threads, periodic stderr
//! summary, and graceful drain-on-shutdown.
//!
//! The accept loop runs nonblocking with a short poll so it can observe
//! the shutdown flag promptly (a signal handler may only flip an
//! `AtomicBool`). Each connection gets its own thread — connection
//! concurrency is naturally bounded by the job queue: a thread that
//! can't enqueue answers 429 immediately and goes back to reading, so
//! threads never pile up behind a slow simulator.

use crate::http::{read_request_body, read_request_head, ParseError, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::queue::Bounded;
use crate::router::{is_trace_upload, Router};
use crate::worker::{self, Job};
use pskel_predict::EvalCounters;
use pskel_store::Store;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Per-connection read timeout; an idle keep-alive peer is dropped after
/// this long so it cannot hold up a drain.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Configuration for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond this, requests get 429.
    pub queue_capacity: usize,
    /// Artifact store directory (`None` disables persistence).
    pub store_dir: Option<PathBuf>,
    /// Enable `POST /v1/sleep` for deterministic backpressure tests.
    pub test_endpoints: bool,
    /// Interval between one-line stderr summaries (`None` disables them).
    pub summary_every: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7070".into(),
            workers: default_workers(),
            queue_capacity: 64,
            store_dir: None,
            test_endpoints: false,
            summary_every: Some(Duration::from_secs(10)),
        }
    }
}

/// Workers default to the machine's parallelism, capped: each worker can
/// hold several per-class simulation contexts, and contexts are memory-
/// heavy, so more than 8 rarely pays.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(1, 8)
}

/// A running service. Dropping it without [`Server::shutdown`] aborts
/// helper threads ungracefully; call `shutdown` for a clean drain.
pub struct Server {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    router: Arc<Router>,
    queue: Arc<Bounded<Job>>,
    counters: Arc<EvalCounters>,
    draining: Arc<AtomicBool>,
    active_conns: Arc<AtomicUsize>,
    accept_handle: Option<JoinHandle<()>>,
    summary_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and accept loop, and return
    /// immediately; the server runs on background threads.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(Store::open(dir)?)),
            None => None,
        };
        let counters: Arc<EvalCounters> = Arc::new(EvalCounters::default());
        let queue: Arc<Bounded<Job>> = Arc::new(Bounded::new(config.queue_capacity));
        let metrics = Arc::new(Metrics::new());
        let draining = Arc::new(AtomicBool::new(false));

        let worker_handles = worker::spawn_pool(
            config.workers,
            Arc::clone(&queue),
            store.clone(),
            Arc::clone(&counters),
        );
        let router = Arc::new(Router::new(
            Arc::clone(&queue),
            Arc::clone(&metrics),
            Arc::clone(&counters),
            store,
            Arc::clone(&draining),
            config.test_endpoints,
        ));

        let active_conns = Arc::new(AtomicUsize::new(0));
        let accept_handle = {
            let router = Arc::clone(&router);
            let draining = Arc::clone(&draining);
            let active = Arc::clone(&active_conns);
            std::thread::Builder::new()
                .name("pskel-serve-accept".into())
                .spawn(move || accept_loop(listener, router, draining, active))?
        };
        let summary_handle = config.summary_every.map(|every| {
            let metrics = Arc::clone(&router.metrics);
            let queue = Arc::clone(&queue);
            let draining = Arc::clone(&draining);
            std::thread::Builder::new()
                .name("pskel-serve-summary".into())
                .spawn(move || summary_loop(metrics, queue, draining, every))
                .expect("spawning summary thread")
        });

        Ok(Server {
            addr,
            router,
            queue,
            counters,
            draining,
            active_conns,
            accept_handle: Some(accept_handle),
            summary_handle,
            worker_handles,
        })
    }

    /// The shared simulation counters (for tests and the CLI summary).
    pub fn counters(&self) -> Arc<EvalCounters> {
        Arc::clone(&self.counters)
    }

    /// Current queue depth (for tests and the CLI summary).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The metrics registry backing `/metrics`.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.router.metrics)
    }

    /// Graceful shutdown: stop accepting, answer new jobs with 503,
    /// drain queued and in-flight jobs, and wait up to `deadline` for
    /// open connections to finish. Returns `true` if the drain completed
    /// within the deadline.
    pub fn shutdown(mut self, deadline: Duration) -> bool {
        self.draining.store(true, Ordering::SeqCst);
        // Close the queue: workers finish what is queued, then exit.
        self.queue.close();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.summary_handle.take() {
            let _ = h.join();
        }
        // Connection threads only outlive this point if a peer is mid-
        // request; give them until the deadline to flush responses.
        let t0 = Instant::now();
        while self.active_conns.load(Ordering::SeqCst) > 0 {
            if t0.elapsed() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<Router>,
    draining: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
) {
    loop {
        if draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let router = Arc::clone(&router);
                let conn_active = Arc::clone(&active);
                active.fetch_add(1, Ordering::SeqCst);
                let spawned = std::thread::Builder::new()
                    .name("pskel-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &router);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion); the
                    // connection is dropped and the count restored.
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Handle one connection until the peer closes, errors, or asks not to
/// keep it alive. Binary trace uploads never buffer their body: the
/// connection's own reader is handed to the streaming ingest engine, so
/// signature construction overlaps the upload.
fn serve_connection(stream: TcpStream, router: &Router) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let head = match read_request_head(&mut reader) {
            Ok(Some(head)) => head,
            Ok(None) => return Ok(()), // clean close
            Err(e) => return parse_failure(e, &mut writer),
        };
        if is_trace_upload(&head.req) {
            let (resp, framed) = router.handle_upload(&head.req, &mut reader, head.content_length);
            let keep_alive = head.req.keep_alive && framed;
            resp.write_to(&mut writer, keep_alive)?;
            writer.flush()?;
            if !keep_alive {
                return Ok(());
            }
            continue;
        }
        let req: Request = match read_request_body(&mut reader, head) {
            Ok(req) => req,
            Err(e) => return parse_failure(e, &mut writer),
        };
        let keep_alive = req.keep_alive;
        let resp = router.handle(&req);
        resp.write_to(&mut writer, keep_alive)?;
        writer.flush()?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// A request that could not be parsed ends the connection: answer with
/// the parse error's status — including the `max_body_bytes` cap when
/// the rejection is about body size — and close, since the framing can't
/// be trusted after a bad read. Peer hangups and idle timeouts close
/// silently.
fn parse_failure(e: ParseError, writer: &mut impl Write) -> io::Result<()> {
    match e {
        ParseError::Io(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
        ParseError::Io(e) if e.kind() == io::ErrorKind::TimedOut => Ok(()),
        ParseError::Io(e) => Err(e),
        e => {
            let mut pairs = vec![("error".to_string(), Json::from(e.message()))];
            if let Some(limit) = e.body_limit() {
                pairs.push(("max_body_bytes".to_string(), Json::from(limit)));
            }
            let resp = Response::json(e.status(), Json::Obj(pairs).render());
            resp.write_to(writer, false)?;
            writer.flush()?;
            Ok(())
        }
    }
}

fn summary_loop(
    metrics: Arc<Metrics>,
    queue: Arc<Bounded<Job>>,
    draining: Arc<AtomicBool>,
    every: Duration,
) {
    let mut last = Instant::now();
    loop {
        if draining.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(200));
        if last.elapsed() >= every {
            last = Instant::now();
            if metrics.totals().requests > 0 {
                eprintln!("{}", metrics.summary_line(queue.len()));
            }
        }
    }
}

/// Minimal raw signal handling (no external crates): flips a shared flag
/// on SIGINT/SIGTERM so the serve loop can drain and exit 0.
pub mod signal {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_signal(_sig: c_int) {
        // Only async-signal-safe work here: a relaxed-free atomic store.
        if let Some(f) = FLAG.get() {
            f.store(true, Ordering::SeqCst);
        }
    }

    /// Install handlers for SIGINT (2) and SIGTERM (15) that set `flag`.
    /// Idempotent; the first registered flag wins.
    #[cfg(unix)]
    pub fn install(flag: Arc<AtomicBool>) {
        let _ = FLAG.set(flag);
        type Handler = extern "C" fn(c_int);
        extern "C" {
            fn signal(signum: c_int, handler: Handler) -> isize;
        }
        unsafe {
            signal(2, on_signal); // SIGINT
            signal(15, on_signal); // SIGTERM
        }
    }

    /// Non-unix fallback: ctrl-c handling is unavailable; the flag is
    /// simply never set by a signal.
    #[cfg(not(unix))]
    pub fn install(_flag: Arc<AtomicBool>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read, Write};

    fn start_test_server(test_endpoints: bool) -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 4,
            store_dir: None,
            test_endpoints,
            summary_every: None,
        })
        .expect("server starts")
    }

    fn raw_request(addr: SocketAddr, req: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(req.as_bytes()).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        (status, buf)
    }

    #[test]
    fn healthz_answers_over_tcp() {
        let server = start_test_server(false);
        let (status, body) = raw_request(
            server.addr,
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "body: {body}");
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn keep_alive_serves_two_requests_on_one_connection() {
        let server = start_test_server(false);
        let mut s = TcpStream::connect(server.addr).unwrap();
        for i in 0..2 {
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert!(line.contains("200"), "request {i}: {line}");
            // Drain headers + body using Content-Length.
            let mut clen = 0usize;
            loop {
                let mut h = String::new();
                r.read_line(&mut h).unwrap();
                if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                    clen = v.trim().parse().unwrap();
                }
                if h == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; clen];
            r.read_exact(&mut body).unwrap();
        }
        drop(s);
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn unknown_route_is_404_and_bad_json_is_400() {
        let server = start_test_server(false);
        let (status, _) = raw_request(
            server.addr,
            "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 404);
        let (status, body) = raw_request(
            server.addr,
            "POST /v1/predict HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 9\r\n\r\nnot json!",
        );
        assert_eq!(status, 400);
        assert!(body.contains("invalid JSON"), "body: {body}");
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn oversized_json_body_is_413_with_max_body_bytes_hint() {
        let server = start_test_server(false);
        let (status, body) = raw_request(
            server.addr,
            &format!(
                "POST /v1/predict HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
                crate::http::MAX_BODY_BYTES + 1
            ),
        );
        assert_eq!(status, 413);
        assert!(
            body.contains(&format!(
                "\"max_body_bytes\":{}",
                crate::http::MAX_BODY_BYTES
            )),
            "413 must hint the cap: {body}"
        );
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn sleep_endpoint_is_gated_behind_test_flag() {
        let server = start_test_server(false);
        let (status, _) = raw_request(
            server.addr,
            "POST /v1/sleep HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 11\r\n\r\n{\"ms\": 1.0}",
        );
        // Without --test-endpoints the path resolves but the method match
        // falls through to 405 (the route exists only when gated in).
        assert_eq!(status, 405);
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn failed_simulation_answers_500_and_worker_keeps_draining() {
        let server = start_test_server(true);
        // A deliberately deadlocked simulation must come back as a 500
        // carrying the simulator's diagnostic...
        let (status, body) = raw_request(
            server.addr,
            "POST /v1/sleep HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 18\r\n\r\n{\"deadlock\": true}",
        );
        assert_eq!(status, 500, "body: {body}");
        assert!(body.contains("deadlock"), "body: {body}");
        // ...without killing the (single) worker: the next job still runs.
        let (status, _) = raw_request(
            server.addr,
            "POST /v1/sleep HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 9\r\n\r\n{\"ms\": 1}",
        );
        assert_eq!(status, 200);
        // The failed run still shows up in the simulator counters.
        let (status, metrics) = raw_request(
            server.addr,
            "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(
            metrics.contains("pskel_sim_script_runs_total"),
            "metrics: {metrics}"
        );
        assert!(
            metrics.contains("pskel_sim_events_total"),
            "metrics: {metrics}"
        );
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn shutdown_drains_and_reports_clean() {
        let server = start_test_server(true);
        let (status, _) = raw_request(
            server.addr,
            "POST /v1/sleep HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 10\r\n\r\n{\"ms\": 10}",
        );
        assert_eq!(status, 200);
        assert!(server.shutdown(Duration::from_secs(5)));
    }
}
