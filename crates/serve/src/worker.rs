//! The worker pool: long-lived threads that pop jobs off the bounded
//! queue and execute them against reusable, store-backed
//! [`EvalContext`]s.
//!
//! Each worker owns one `EvalContext` per problem class, created lazily
//! and kept for the life of the server — so a warm request is answered
//! from the in-process memo or the shared [`Store`] without simulating.
//! All contexts across all workers share one [`EvalCounters`] set, which
//! is what `/metrics` (and the coalescing integration test) observe.

use crate::json::Json;
use crate::queue::Bounded;
use pskel_apps::{Class, NasBenchmark};
use pskel_predict::{error_pct, EvalContext, EvalCounters, EvalError, Scenario, ScenarioSpec};
use pskel_sim::{ClusterSpec, Placement, RankScript, ScriptNode, ScriptOp, ScriptTag, Simulation};
use pskel_store::Store;
use pskel_trace::TraceSummary;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on skeleton target sizes accepted over the API; keeps a
/// typo like `"target_secs": 1e9` from wedging a worker.
const MAX_TARGET_SECS: f64 = 3600.0;

/// How a request failed. `Clone` because coalesced followers receive a
/// copy of the leader's outcome.
#[derive(Clone, Debug)]
pub enum ApiError {
    /// The request was malformed or named an unknown entity (400).
    Bad(String),
    /// The job queue is full; retry later (429).
    Busy,
    /// The server is draining and no longer accepts work (503).
    ShuttingDown,
    /// The pipeline failed internally (500).
    Internal(String),
}

impl ApiError {
    pub fn status(&self) -> u16 {
        match self {
            ApiError::Bad(_) => 400,
            ApiError::Busy => 429,
            ApiError::ShuttingDown => 503,
            ApiError::Internal(_) => 500,
        }
    }

    pub fn message(&self) -> String {
        match self {
            ApiError::Bad(m) | ApiError::Internal(m) => m.clone(),
            ApiError::Busy => "job queue is full; retry shortly".into(),
            ApiError::ShuttingDown => "server is shutting down".into(),
        }
    }
}

/// The prediction methodologies exposed by `POST /v1/predict`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictMethod {
    /// The paper's skeleton-based prediction (needs `target_secs`).
    Skeleton,
    /// Suite-average slowdown baseline.
    Average,
    /// Class-S-as-manual-skeleton baseline.
    ClassS,
}

impl PredictMethod {
    pub fn parse(s: &str) -> Result<PredictMethod, ApiError> {
        match s {
            "skeleton" => Ok(PredictMethod::Skeleton),
            "average" => Ok(PredictMethod::Average),
            "class-s" => Ok(PredictMethod::ClassS),
            other => Err(ApiError::Bad(format!(
                "unknown method {other:?}; expected skeleton, average or class-s"
            ))),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PredictMethod::Skeleton => "skeleton",
            PredictMethod::Average => "average",
            PredictMethod::ClassS => "class-s",
        }
    }
}

/// One unit of work for the pool.
#[derive(Clone, Debug)]
pub enum ApiJob {
    Trace {
        bench: NasBenchmark,
        class: Class,
    },
    Build {
        bench: NasBenchmark,
        class: Class,
        target_secs: f64,
    },
    Predict {
        bench: NasBenchmark,
        class: Class,
        target_secs: Option<f64>,
        /// A builtin scenario named in the request, or an inline scenario
        /// program compiled from the request body.
        scenario: ScenarioSpec,
        method: PredictMethod,
        verify: bool,
        /// Monte-Carlo ensemble size; `Some(k)` adds a percentile
        /// `distribution` to the response, `None` keeps the legacy body.
        samples: Option<u32>,
        /// Base seed of the Monte-Carlo ensemble (ignored without
        /// `samples`; the parser rejects that combination).
        seed: u64,
    },
    /// A vectorized pass: N predicts that differ only in scenario,
    /// executed back-to-back on one worker against one shared context, so
    /// the skeleton, trace and dedicated baselines are computed (or
    /// fetched) once and every point reuses them. Each point's document
    /// is produced by exactly the same code path as a single
    /// [`ApiJob::Predict`], so the per-point bodies are bit-identical to
    /// individually issued requests.
    PredictBatch {
        bench: NasBenchmark,
        class: Class,
        target_secs: Option<f64>,
        scenarios: Vec<ScenarioSpec>,
        method: PredictMethod,
        verify: bool,
        samples: Option<u32>,
        seed: u64,
    },
    /// Test-endpoint job: occupy a worker for a fixed time. Lets the
    /// integration tests and CI exercise backpressure deterministically.
    Sleep {
        ms: u64,
    },
    /// Test-endpoint job: run a deliberately deadlocked two-rank script.
    /// Proves that a failed simulation surfaces as a diagnostic 500 while
    /// the worker survives to serve the next request.
    Deadlock,
}

pub type JobOutcome = Result<Json, ApiError>;

/// A queued job plus the channel its requester is blocked on.
pub struct Job {
    pub api: ApiJob,
    pub reply: mpsc::Sender<JobOutcome>,
}

/// Validate an API-supplied skeleton target size before it reaches the
/// builder.
fn check_target(target_secs: f64) -> Result<f64, ApiError> {
    if !target_secs.is_finite() || target_secs <= 0.0 || target_secs > MAX_TARGET_SECS {
        return Err(ApiError::Bad(format!(
            "target_secs must be in (0, {MAX_TARGET_SECS}], got {target_secs}"
        )));
    }
    Ok(target_secs)
}

/// A failed simulation ([`EvalError::Sim`]) is a server-side fault (500
/// with the simulator's diagnostic); everything else the evaluator
/// rejects — including a scenario program that does not fit the testbed
/// ([`EvalError::Scenario`]) — is a client problem (400).
fn eval_err(e: EvalError) -> ApiError {
    match e {
        EvalError::Sim { .. } => ApiError::Internal(e.to_string()),
        EvalError::Scenario { .. } => ApiError::Bad(e.to_string()),
        _ => ApiError::Bad(e.to_string()),
    }
}

/// Per-worker state: one lazily-created context per problem class, all
/// feeding the shared store and counter set.
struct WorkerState {
    store: Option<Arc<Store>>,
    counters: Arc<EvalCounters>,
    contexts: HashMap<Class, EvalContext>,
    /// Simulator threads for this worker's contexts (see
    /// [`serve_sim_threads`]).
    sim_threads: usize,
}

/// Simulator threads for worker-owned evaluation contexts. The pool
/// already runs one OS thread per worker, so the default stays the serial
/// engine (1); operators can opt the workers into the time-sliced
/// parallel engine with `PSKEL_SIM_THREADS` (reports are bit-identical
/// either way, so cached artifacts are unaffected).
fn serve_sim_threads() -> usize {
    if std::env::var_os("PSKEL_SIM_THREADS").is_none() {
        return 1;
    }
    pskel_sim::resolve_sim_threads(None).unwrap_or_else(|e| {
        eprintln!("pskel-serve: {e}; falling back to the serial simulator");
        1
    })
}

impl WorkerState {
    fn context(&mut self, class: Class) -> &mut EvalContext {
        let store = self.store.clone();
        let counters = Arc::clone(&self.counters);
        let sim_threads = self.sim_threads;
        self.contexts.entry(class).or_insert_with(|| {
            let mut ctx = EvalContext::new(class, &[]);
            ctx.testbed.sim_threads = sim_threads;
            if let Some(s) = store {
                ctx.set_store(s);
            }
            ctx.set_counters(counters);
            ctx
        })
    }

    fn execute(&mut self, job: &ApiJob) -> JobOutcome {
        match *job {
            ApiJob::Trace { bench, class } => {
                let ctx = self.context(class);
                let summary = TraceSummary::of(ctx.trace(bench));
                Ok(Json::obj([
                    ("app", Json::str(summary.app)),
                    ("ranks", Json::from(summary.nranks)),
                    ("dedicated_secs", Json::from(summary.total_time_secs)),
                    (
                        "events",
                        Json::from(summary.events_per_rank.iter().sum::<usize>()),
                    ),
                    (
                        "events_per_rank",
                        Json::Arr(
                            summary
                                .events_per_rank
                                .iter()
                                .map(|&n| Json::from(n))
                                .collect(),
                        ),
                    ),
                    ("mpi_fraction", Json::from(summary.mpi_fraction)),
                ]))
            }
            ApiJob::Build {
                bench,
                class,
                target_secs,
            } => {
                let target_secs = check_target(target_secs)?;
                let ctx = self.context(class);
                let built = ctx.skeleton(bench, target_secs).map_err(eval_err)?;
                let meta = &built.skeleton.meta;
                Ok(Json::obj([
                    ("app", Json::str(built.skeleton.app.clone())),
                    ("ranks", Json::from(built.skeleton.nranks())),
                    ("scale_k", Json::from(meta.scale_k)),
                    ("target_secs", Json::from(meta.target_secs)),
                    ("app_secs", Json::from(meta.app_secs)),
                    ("target_q", Json::from(meta.target_q)),
                    ("max_threshold", Json::from(meta.max_threshold)),
                    ("good", Json::from(meta.good)),
                    (
                        "static_ops_per_rank",
                        Json::Arr(
                            built
                                .skeleton
                                .ranks
                                .iter()
                                .map(|r| Json::from(r.static_ops()))
                                .collect(),
                        ),
                    ),
                    (
                        "warnings",
                        Json::Arr(built.warnings.iter().map(Json::str).collect()),
                    ),
                ]))
            }
            ApiJob::Predict {
                bench,
                class,
                target_secs,
                ref scenario,
                method,
                verify,
                samples,
                seed,
            } => self.predict_doc(
                bench,
                class,
                target_secs,
                scenario,
                method,
                verify,
                samples,
                seed,
            ),
            ApiJob::PredictBatch {
                bench,
                class,
                target_secs,
                ref scenarios,
                method,
                verify,
                samples,
                seed,
            } => {
                // Skeleton batches first prewarm the per-scenario skeleton
                // times through the forked sweep executor: timeline
                // prefixes shared between points simulate once and
                // behavior-identical points dedup. The per-point documents
                // below still come from the single-predict pipeline —
                // answered from the memo — so batched bodies stay
                // bit-identical to individually issued requests.
                if method == PredictMethod::Skeleton {
                    if let Some(target) = target_secs {
                        let target = check_target(target)?;
                        self.context(class)
                            .prewarm_skeleton_sweep(bench, target, scenarios)
                            .map_err(eval_err)?;
                    }
                }
                // One pass over a shared context: the first point pays for
                // the trace/skeleton/dedicated baselines, the rest reuse
                // them from the memo. A per-point failure fails the whole
                // batch (the caller falls back to individual requests, so
                // only the offending scenario sees the error).
                let points = scenarios
                    .iter()
                    .map(|s| {
                        self.predict_doc(
                            bench,
                            class,
                            target_secs,
                            s,
                            method,
                            verify,
                            samples,
                            seed,
                        )
                    })
                    .collect::<Result<Vec<Json>, ApiError>>()?;
                Ok(Json::obj([
                    ("bench", Json::str(bench.name())),
                    ("class", Json::str(class.to_string())),
                    ("method", Json::str(method.name())),
                    ("count", Json::from(points.len())),
                    ("points", Json::Arr(points)),
                ]))
            }
            ApiJob::Sleep { ms } => {
                std::thread::sleep(Duration::from_millis(ms.min(60_000)));
                Ok(Json::obj([("slept_ms", Json::from(ms.min(60_000)))]))
            }
            ApiJob::Deadlock => Err(deliberate_deadlock(self.sim_threads)),
        }
    }

    /// The single-predict pipeline; also the per-point body of a
    /// [`ApiJob::PredictBatch`] (batched answers must be bit-identical to
    /// individual ones, so there is exactly one implementation).
    #[allow(clippy::too_many_arguments)]
    fn predict_doc(
        &mut self,
        bench: NasBenchmark,
        class: Class,
        target_secs: Option<f64>,
        scenario: &ScenarioSpec,
        method: PredictMethod,
        verify: bool,
        samples: Option<u32>,
        seed: u64,
    ) -> JobOutcome {
        let ctx = self.context(class);
        let mut body: Vec<(&'static str, Json)> = vec![
            ("bench", Json::str(bench.name())),
            ("class", Json::str(class.to_string())),
            ("scenario", Json::str(scenario.provenance_token())),
            ("method", Json::str(method.name())),
        ];
        let predicted = match method {
            PredictMethod::Skeleton => {
                let target = check_target(target_secs.ok_or_else(|| {
                    ApiError::Bad("method \"skeleton\" requires target_secs".into())
                })?)?;
                let app_ded = ctx.app_time(bench, Scenario::Dedicated);
                let skel_ded = ctx
                    .skeleton_time(bench, target, Scenario::Dedicated)
                    .map_err(eval_err)?;
                let skel_scen = ctx
                    .skeleton_time_spec(bench, target, scenario)
                    .map_err(eval_err)?;
                let ratio = app_ded / skel_ded;
                body.push(("target_secs", Json::from(target)));
                body.push(("ratio", Json::from(ratio)));
                body.push(("skeleton_dedicated_secs", Json::from(skel_ded)));
                body.push(("skeleton_scenario_secs", Json::from(skel_scen)));
                skel_scen * ratio
            }
            PredictMethod::Average => {
                pskel_predict::average_prediction_spec(ctx, bench, scenario).map_err(eval_err)?
            }
            PredictMethod::ClassS => {
                pskel_predict::class_s_prediction_spec(ctx, bench, scenario).map_err(eval_err)?
            }
        };
        body.push(("predicted_secs", Json::from(predicted)));
        if verify {
            let actual = ctx
                .app_time_spec(bench, class, scenario)
                .map_err(eval_err)?;
            body.push(("actual_secs", Json::from(actual)));
            body.push(("error_pct", Json::from(error_pct(predicted, actual))));
        }
        // Monte-Carlo extension: `samples` adds a percentile distribution
        // after the legacy fields, so responses without it stay
        // byte-identical to earlier servers.
        if let Some(samples) = samples {
            if method != PredictMethod::Skeleton {
                return Err(ApiError::Bad(format!(
                    "\"samples\" requires method \"skeleton\", got \"{}\"",
                    method.name()
                )));
            }
            let target = check_target(target_secs.ok_or_else(|| {
                ApiError::Bad("method \"skeleton\" requires target_secs".into())
            })?)?;
            let mc = ctx
                .predict_distribution(bench, target, scenario, samples, seed)
                .map_err(eval_err)?;
            body.push(("distribution", distribution_doc(&mc.distribution)));
        }
        Ok(Json::obj(body))
    }
}

/// The JSON rendering of a Monte-Carlo distribution: same fields and
/// order as [`Distribution::to_json`], as a [`Json`] value.
///
/// [`Distribution::to_json`]: pskel_predict::Distribution::to_json
fn distribution_doc(d: &pskel_predict::Distribution) -> Json {
    let pct = |p: &pskel_predict::Percentile| {
        Json::obj([
            ("value", Json::from(p.value)),
            ("ci_lo", Json::from(p.ci_lo)),
            ("ci_hi", Json::from(p.ci_hi)),
        ])
    };
    Json::obj([
        ("samples", Json::from(d.samples)),
        ("seed", Json::from(d.seed)),
        ("mean", Json::from(d.mean)),
        ("std_dev", Json::from(d.std_dev)),
        ("min", Json::from(d.min)),
        ("max", Json::from(d.max)),
        ("p50", pct(&d.p50)),
        ("p90", pct(&d.p90)),
        ("p99", pct(&d.p99)),
    ])
}

/// Simulate two ranks each blocked receiving from the other. The fast
/// path's typed [`pskel_sim::SimError`] comes back as an `Internal` error
/// carrying the simulator's diagnostic; the worker thread itself is
/// untouched (no panic, no poisoned context). Runs through the same
/// engine selection as real jobs, so with `PSKEL_SIM_THREADS` set this
/// also proves the parallel driver surfaces deadlock diagnostics.
fn deliberate_deadlock(sim_threads: usize) -> ApiError {
    let n = 2;
    let scripts: Vec<RankScript> = (0..n)
        .map(|rank| RankScript {
            nodes: vec![ScriptNode::Op(ScriptOp::Recv {
                src: Some((rank + 1) % n),
                tag: Some(ScriptTag::Lit(0)),
            })],
            ..RankScript::default()
        })
        .collect();
    let sim = Simulation::new(ClusterSpec::homogeneous(n), Placement::round_robin(n, n));
    match sim.try_run_scripts_auto(&scripts, sim_threads) {
        Ok(_) => ApiError::Internal("deliberate deadlock unexpectedly completed".into()),
        Err(e) => ApiError::Internal(format!("deliberate deadlock job: {e}")),
    }
}

/// Best-effort extraction of a panic payload's message (panics carry a
/// `String` or `&str` in practice; anything else reports its opacity).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Spawn `n` workers draining `queue`. The pool exits when the queue is
/// closed and empty; every queued job is still answered (drain-on-
/// shutdown).
pub fn spawn_pool(
    n: usize,
    queue: Arc<Bounded<Job>>,
    store: Option<Arc<Store>>,
    counters: Arc<EvalCounters>,
) -> Vec<JoinHandle<()>> {
    let sim_threads = serve_sim_threads();
    (0..n.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let store = store.clone();
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name(format!("pskel-serve-worker-{i}"))
                .spawn(move || {
                    let mut state = WorkerState {
                        store,
                        counters,
                        contexts: HashMap::new(),
                        sim_threads,
                    };
                    while let Some(job) = queue.pop() {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                state.execute(&job.api)
                            }))
                            .unwrap_or_else(|payload| {
                                // A panicking pipeline may have left a context
                                // half-updated; drop them all and rebuild lazily.
                                state.contexts.clear();
                                Err(ApiError::Internal(format!(
                                    "job panicked in the pipeline: {}",
                                    panic_message(payload.as_ref())
                                )))
                            });
                        // The requester may have gone away (client hangup);
                        // a dead channel is not a worker error.
                        let _ = job.reply.send(outcome);
                    }
                })
                .expect("spawning worker thread")
        })
        .collect()
}
