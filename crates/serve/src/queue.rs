//! A bounded MPMC job queue with explicit backpressure.
//!
//! Connection threads `try_push` — a full queue is an immediate
//! [`PushError::Full`] (the router turns that into `429 Retry-After`)
//! rather than a blocked thread, which is the service's backpressure
//! contract. Workers block in `pop`; closing the queue wakes them all and
//! lets them drain whatever is still queued before exiting, which is what
//! graceful shutdown leans on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue. Pushes never block; pops block until an item
/// arrives or the queue is closed *and* drained.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Bounded<T> {
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking; `Full` once `capacity` jobs are waiting.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        st.items.push_back(item);
        drop(st);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an item is available. Returns `None` only after the
    /// queue has been closed and every queued item was handed out.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Refuse new pushes and wake every blocked popper. Already-queued
    /// items are still handed out (drain-on-shutdown).
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_releases_poppers() {
        let q = Arc::new(Bounded::new(8));
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "queued item survives close");
        assert_eq!(q.pop(), None, "drained+closed pops None");
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(Bounded::<u32>::new(8));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = Arc::new(Bounded::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        q.try_push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }
}
