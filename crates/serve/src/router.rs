//! Request routing: map parsed HTTP requests onto jobs, coalesce
//! identical in-flight work, and translate outcomes back to responses.
//!
//! The router is where the three pillars of the service meet:
//!
//! 1. **Backpressure** — jobs enter through [`Bounded::try_push`]; a full
//!    queue is answered immediately with 429 + `Retry-After` instead of
//!    queueing unbounded work.
//! 2. **Coalescing** — POST bodies are canonicalised into the same
//!    content-addressed key space the store uses ([`KeyBuilder`]), and
//!    identical concurrent requests collapse onto one queued job via
//!    [`SingleFlight`]; followers receive a clone of the leader's result.
//! 3. **Observability** — every request is timed into the per-endpoint
//!    [`Metrics`], which `GET /metrics` renders.

use crate::http::{Request, Response, MAX_UPLOAD_BYTES};
use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use crate::queue::{Bounded, PushError};
use crate::upload::{self, HashingReader, IngestCounters};
use crate::worker::{ApiError, ApiJob, Job, JobOutcome, PredictMethod};
use pskel_apps::{Class, NasBenchmark};
use pskel_ingest::{ingest_reader, IngestOptions};
use pskel_predict::{EvalCounters, Scenario, ScenarioSpec};
use pskel_scenario::ScenarioSource;
use pskel_store::{KeyBuilder, SingleFlight, Store, StoreKey};
use std::cell::Cell;
use std::io::{self, BufRead, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Shared routing state: one per server, shared by every connection
/// thread.
pub struct Router {
    queue: Arc<Bounded<Job>>,
    flights: SingleFlight<StoreKey, JobOutcome>,
    /// Coalesces concurrent provenance-keyed trace uploads: followers
    /// receive the leader's rendered response without re-ingesting.
    ingest_flights: SingleFlight<StoreKey, Result<String, ApiError>>,
    pub metrics: Arc<Metrics>,
    pub ingest: IngestCounters,
    counters: Arc<EvalCounters>,
    store: Option<Arc<Store>>,
    draining: Arc<AtomicBool>,
    test_endpoints: bool,
}

impl Router {
    pub fn new(
        queue: Arc<Bounded<Job>>,
        metrics: Arc<Metrics>,
        counters: Arc<EvalCounters>,
        store: Option<Arc<Store>>,
        draining: Arc<AtomicBool>,
        test_endpoints: bool,
    ) -> Router {
        Router {
            queue,
            flights: SingleFlight::new(),
            ingest_flights: SingleFlight::new(),
            metrics,
            ingest: IngestCounters::default(),
            counters,
            store,
            draining,
            test_endpoints,
        }
    }

    /// Route one request to a response, recording metrics.
    pub fn handle(&self, req: &Request) -> Response {
        let ep = endpoint_of(&req.path);
        let started = self.metrics.begin(ep);
        let resp = self.route(ep, req);
        self.metrics.end(ep, started, resp.status);
        resp
    }

    fn route(&self, ep: Endpoint, req: &Request) -> Response {
        match (req.method.as_str(), ep) {
            ("GET", Endpoint::Healthz) => self.healthz(),
            ("GET", Endpoint::Metrics) => self.metrics_text(),
            ("GET", Endpoint::Scenarios) => scenarios(),
            ("POST", Endpoint::Trace) => self.job_endpoint(ep, req, parse_trace),
            ("POST", Endpoint::Build) => self.job_endpoint(ep, req, parse_build),
            ("POST", Endpoint::Predict) => self.job_endpoint(ep, req, parse_predict),
            ("POST", Endpoint::Sweep) => self.sweep(req),
            ("POST", Endpoint::Sleep) if self.test_endpoints => self.sleep(req),
            (_, Endpoint::Other) => error_response(404, format!("no route for {}", req.path)),
            (m, _) => error_response(405, format!("method {m} not allowed for {}", req.path)),
        }
    }

    fn healthz(&self) -> Response {
        Response::json(
            200,
            Json::obj([
                ("status", Json::str("ok")),
                ("queue_depth", Json::from(self.queue.len())),
                ("queue_capacity", Json::from(self.queue.capacity())),
                ("draining", Json::from(self.draining.load(Ordering::SeqCst))),
            ])
            .render(),
        )
    }

    fn metrics_text(&self) -> Response {
        let c = self.counters.snapshot();
        let s = pskel_sim::counters::snapshot();
        // Fraction of evaluations answered from the store/memo instead of
        // simulating, as an integer percentage (Prometheus-friendly u64).
        let sims = c.app_sims + c.trace_sims + c.skeleton_sims;
        let memo_hit_pct = (c.store_hits * 100)
            .checked_div(c.store_hits + sims)
            .unwrap_or(0);
        let mut extras: Vec<(&str, u64)> = vec![
            ("pskel_queue_depth", self.queue.len() as u64),
            ("pskel_queue_capacity", self.queue.capacity() as u64),
            ("pskel_eval_app_sims_total", c.app_sims),
            ("pskel_eval_trace_sims_total", c.trace_sims),
            ("pskel_eval_skeleton_sims_total", c.skeleton_sims),
            ("pskel_eval_skeleton_builds_total", c.skeleton_builds),
            ("pskel_eval_store_hits_total", c.store_hits),
            ("pskel_eval_memo_hit_rate_percent", memo_hit_pct),
            ("pskel_mc_samples_total", c.mc_samples_run),
            ("pskel_mc_prefix_events_saved_total", c.mc_prefix_saved),
            ("pskel_mc_cache_hits_total", c.mc_cache_hits),
            ("pskel_sim_runs_total", s.total_runs()),
            ("pskel_sim_script_runs_total", s.script_runs),
            ("pskel_sim_threaded_runs_total", s.threaded_runs),
            ("pskel_sim_events_total", s.total_events()),
            (
                "pskel_sim_script_events_per_sec",
                s.script_events_per_sec() as u64,
            ),
            (
                "pskel_sim_threaded_events_per_sec",
                s.threaded_events_per_sec() as u64,
            ),
            ("pskel_sim_parallel_runs_total", s.parallel_runs),
            ("pskel_sim_parallel_events_total", s.parallel_events),
            (
                "pskel_sim_parallel_events_per_sec",
                s.parallel_events_per_sec() as u64,
            ),
            ("pskel_sim_parallel_slices_total", s.parallel_slices),
            (
                "pskel_sim_parallel_merge_events_total",
                s.parallel_merge_events,
            ),
            (
                "pskel_sim_parallel_worker_utilization_percent",
                (s.parallel_worker_utilization() * 100.0) as u64,
            ),
            ("pskel_sweep_fork_runs_total", s.sweep_runs),
            ("pskel_sweep_fork_points_total", s.sweep_points),
            ("pskel_sweep_fork_forks_total", s.sweep_forks),
            ("pskel_sweep_fork_dedup_hits_total", s.sweep_dedup_hits),
            (
                "pskel_sweep_fork_executed_events_total",
                s.sweep_executed_events,
            ),
            (
                "pskel_sweep_fork_serial_events_total",
                s.sweep_serial_events,
            ),
            (
                "pskel_sweep_fork_reuse_percent",
                (s.sweep_reuse_fraction() * 100.0) as u64,
            ),
            (
                "pskel_scenario_programs_compiled_total",
                pskel_scenario::counters::snapshot().programs_compiled,
            ),
            (
                "pskel_scenario_sweeps_expanded_total",
                pskel_scenario::counters::snapshot().sweeps_expanded,
            ),
            (
                "pskel_scenario_sweep_points_deduped_total",
                pskel_scenario::counters::snapshot().sweep_points_deduped,
            ),
            ("pskel_sim_timeline_events_total", s.timeline_events),
            ("pskel_sim_faults_injected_total", s.faults_injected),
        ];
        extras.extend(self.ingest.extras());
        Response::text(200, self.metrics.render(&extras))
    }

    /// Parse, key, coalesce, enqueue, respond — the common path for every
    /// deterministic job endpoint.
    fn job_endpoint(
        &self,
        ep: Endpoint,
        req: &Request,
        parse: fn(&Json) -> Result<ApiJob, ApiError>,
    ) -> Response {
        let job = match parse_body(req).and_then(|body| parse(&body)) {
            Ok(job) => job,
            Err(e) => return api_error_response(&e),
        };
        if self.draining.load(Ordering::SeqCst) {
            return api_error_response(&ApiError::ShuttingDown);
        }
        let key = job_key(&job);
        let shared = self.flights.run(key, || self.enqueue(job));
        if shared.was_coalesced() {
            self.metrics.coalesced(ep);
        }
        match shared.into_value() {
            Some(Ok(v)) => Response::json(200, v.render()),
            Some(Err(e)) => api_error_response(&e),
            None => api_error_response(&ApiError::Internal(
                "coalesced leader failed before producing a result".into(),
            )),
        }
    }

    /// Push a job onto the bounded queue and block until a worker answers.
    fn enqueue(&self, api: ApiJob) -> JobOutcome {
        let (reply, outcome) = mpsc::channel();
        match self.queue.try_push(Job { api, reply }) {
            Ok(()) => outcome.recv().unwrap_or_else(|_| {
                Err(ApiError::Internal(
                    "worker dropped the job without answering".into(),
                ))
            }),
            Err(PushError::Full) => Err(ApiError::Busy),
            Err(PushError::Closed) => Err(ApiError::ShuttingDown),
        }
    }

    /// `POST /v1/sweep`: N predicts that share everything but the
    /// scenario, executed as one vectorized pass on a single worker (the
    /// skeleton and dedicated baselines are paid for once). Same
    /// coalescing and backpressure as the other job endpoints; on success
    /// the sweep batch/point counters record the pass.
    fn sweep(&self, req: &Request) -> Response {
        let job = match parse_body(req).and_then(|body| parse_sweep(&body)) {
            Ok(job) => job,
            Err(e) => return api_error_response(&e),
        };
        if self.draining.load(Ordering::SeqCst) {
            return api_error_response(&ApiError::ShuttingDown);
        }
        let points = match &job {
            ApiJob::PredictBatch { scenarios, .. } => scenarios.len() as u64,
            _ => 0,
        };
        let key = job_key(&job);
        let shared = self.flights.run(key, || self.enqueue(job));
        let coalesced = shared.was_coalesced();
        if coalesced {
            self.metrics.coalesced(Endpoint::Sweep);
        }
        match shared.into_value() {
            Some(Ok(v)) => {
                if !coalesced {
                    self.metrics.sweep_executed(points);
                }
                Response::json(200, v.render())
            }
            Some(Err(e)) => api_error_response(&e),
            None => api_error_response(&ApiError::Internal(
                "coalesced leader failed before producing a result".into(),
            )),
        }
    }

    /// `POST /v1/sleep` (only with `--test-endpoints`): occupies a worker
    /// without coalescing, so tests can fill the queue deterministically.
    /// With `{"deadlock": true}` it instead runs a deliberately deadlocked
    /// simulation, exercising the typed-`SimError` → 500 path.
    fn sleep(&self, req: &Request) -> Response {
        let job = match parse_body(req).and_then(|body| parse_sleep(&body)) {
            Ok(job) => job,
            Err(e) => return api_error_response(&e),
        };
        match self.enqueue(job) {
            Ok(v) => Response::json(200, v.render()),
            Err(e) => api_error_response(&e),
        }
    }

    /// `POST /v1/trace` with a binary body: stream the upload straight
    /// into the incremental ingest engine, building the signature while
    /// the bytes arrive. Returns the response plus whether the connection
    /// is still framed for keep-alive (an error can leave the body only
    /// partially consumed, after which the stream cannot be trusted).
    pub fn handle_upload(
        &self,
        req: &Request,
        body: &mut dyn BufRead,
        len: u64,
    ) -> (Response, bool) {
        let ep = Endpoint::Trace;
        let started = self.metrics.begin(ep);
        let (resp, reusable) = self.upload(req, body, len);
        self.metrics.end(ep, started, resp.status);
        (resp, reusable)
    }

    fn upload(&self, req: &Request, body: &mut dyn BufRead, len: u64) -> (Response, bool) {
        if self.draining.load(Ordering::SeqCst) {
            return (api_error_response(&ApiError::ShuttingDown), false);
        }
        if len == 0 {
            return (
                error_response(
                    400,
                    "binary trace upload requires a non-empty Content-Length body".into(),
                ),
                true,
            );
        }
        if len > MAX_UPLOAD_BYTES {
            let hint = Json::obj([
                (
                    "error",
                    Json::from(format!("upload of {len} bytes exceeds {MAX_UPLOAD_BYTES}")),
                ),
                ("max_body_bytes", Json::from(MAX_UPLOAD_BYTES)),
            ]);
            return (Response::json(413, hint.render()), false);
        }
        let q = match target_q_of(req) {
            Ok(q) => q,
            Err(e) => return (api_error_response(&e), false),
        };
        // Uploads run on connection threads (they own the socket), so the
        // bounded job queue cannot backpressure them; this gate plays
        // that role with the same capacity and the same 429 answer.
        let _active = match ActiveIngest::begin(&self.ingest, self.queue.capacity()) {
            Some(guard) => guard,
            None => return (api_error_response(&ApiError::Busy), false),
        };
        match req.header("x-provenance") {
            Some(p) => self.keyed_upload(p, body, len, q),
            None => match self.stream_ingest(body, len, q, None) {
                Ok(json) => (Response::json(200, json), true),
                Err(e) => (api_error_response(&e), false),
            },
        }
    }

    /// An upload with a client-declared `x-provenance` identity: serve
    /// repeats from the store, and collapse concurrent identical uploads
    /// onto one ingest — followers drain their copy of the body and
    /// receive the leader's rendered response.
    fn keyed_upload(
        &self,
        provenance: &str,
        body: &mut dyn BufRead,
        len: u64,
        q: f64,
    ) -> (Response, bool) {
        let key = KeyBuilder::new("serve-v1")
            .field("endpoint", "ingest")
            .field("provenance", provenance)
            .field_f64("q", q)
            .finish();
        if let Some(cached) = self.store.as_ref().and_then(|s| s.get_bytes("ingest", key)) {
            if let Ok(json) = String::from_utf8(cached) {
                self.ingest.cache_hit();
                let framed = upload::drain(body, len).is_ok();
                return (Response::json(200, json), framed);
            }
        }
        let ran_here = Cell::new(false);
        let shared = self.ingest_flights.run(key, || {
            ran_here.set(true);
            self.stream_ingest(body, len, q, Some(key))
        });
        if shared.was_coalesced() {
            self.metrics.coalesced(Endpoint::Trace);
        }
        match (shared.into_value(), ran_here.get()) {
            // The leader verified it consumed the body exactly.
            (Some(Ok(json)), true) => (Response::json(200, json), true),
            // A follower still owns an unread body on its own socket.
            (Some(Ok(json)), false) => {
                let framed = upload::drain(body, len).is_ok();
                (Response::json(200, json), framed)
            }
            (Some(Err(e)), _) => (api_error_response(&e), false),
            (None, _) => (
                api_error_response(&ApiError::Internal(
                    "coalesced leader failed before producing a result".into(),
                )),
                false,
            ),
        }
    }

    /// Stream `len` body bytes through the ingest engine. On success the
    /// body has been consumed exactly; the result is the rendered response
    /// document, provenance-keyed into the store when one is configured
    /// (`declared` from the client's header, else the body's content hash
    /// computed during the same pass).
    fn stream_ingest(
        &self,
        body: &mut dyn BufRead,
        len: u64,
        q: f64,
        declared: Option<StoreKey>,
    ) -> Result<String, ApiError> {
        let opts = IngestOptions {
            target_q: q,
            ..IngestOptions::default()
        };
        let mut src = HashingReader::new((&mut *body).take(len));
        let report = ingest_reader(&mut src, &opts, Some(len), &mut |_| {}).map_err(|e| {
            match e.kind() {
                // Corrupt or truncated upload: the client's problem, and
                // the message names the failing frame and byte offset.
                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                    ApiError::Bad(format!("invalid trace upload: {e}"))
                }
                _ => ApiError::Internal(format!("trace upload failed: {e}")),
            }
        })?;
        if src.count() != len {
            return Err(ApiError::Bad(format!(
                "trace stream ended after {} of {len} declared body bytes",
                src.count()
            )));
        }
        let key = declared.unwrap_or_else(|| {
            KeyBuilder::new("serve-v1")
                .field("endpoint", "ingest")
                .field_u64("fnv", src.hash())
                .field_u64("len", len)
                .field_f64("q", q)
                .finish()
        });
        self.ingest.record(&report);
        let doc = upload::report_json(&report, q);
        if let Some(store) = &self.store {
            let rendered = upload::with_provenance(doc.clone(), &key, true).render();
            if store.put_bytes("ingest", key, rendered.as_bytes()).is_ok() {
                return Ok(rendered);
            }
        }
        Ok(upload::with_provenance(doc, &key, false).render())
    }
}

/// Does this request head select the streaming-ingest mode of
/// `POST /v1/trace`? Binary content types stream; JSON bodies keep the
/// buffered summary endpoint.
pub fn is_trace_upload(req: &Request) -> bool {
    req.method == "POST"
        && req.path == "/v1/trace"
        && req.header("content-type").is_some_and(|ct| {
            let ct = ct.to_ascii_lowercase();
            ct.starts_with("application/octet-stream")
                || ct.starts_with("application/x-pskel-trace")
        })
}

/// Per-upload compression-ratio target from the `x-target-q` header.
fn target_q_of(req: &Request) -> Result<f64, ApiError> {
    match req.header("x-target-q") {
        None => Ok(IngestOptions::default().target_q),
        Some(v) => {
            let q: f64 = v
                .parse()
                .map_err(|_| ApiError::Bad(format!("bad x-target-q header {v:?}")))?;
            if !q.is_finite() || !(1.0..=1e6).contains(&q) {
                return Err(ApiError::Bad(format!(
                    "x-target-q must be in [1, 1e6], got {v}"
                )));
            }
            Ok(q)
        }
    }
}

/// RAII guard for the concurrent-ingest gate.
struct ActiveIngest<'a>(&'a IngestCounters);

impl<'a> ActiveIngest<'a> {
    fn begin(counters: &'a IngestCounters, cap: usize) -> Option<ActiveIngest<'a>> {
        if counters.begin_active() >= cap as u64 {
            counters.end_active();
            return None;
        }
        Some(ActiveIngest(counters))
    }
}

impl Drop for ActiveIngest<'_> {
    fn drop(&mut self) {
        self.0.end_active();
    }
}

fn endpoint_of(path: &str) -> Endpoint {
    match path {
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        "/v1/scenarios" => Endpoint::Scenarios,
        "/v1/trace" => Endpoint::Trace,
        "/v1/build" => Endpoint::Build,
        "/v1/predict" => Endpoint::Predict,
        "/v1/sweep" => Endpoint::Sweep,
        "/v1/sleep" => Endpoint::Sleep,
        _ => Endpoint::Other,
    }
}

fn scenarios() -> Response {
    let list: Vec<Json> = Scenario::ALL
        .iter()
        .map(|s| {
            Json::obj([
                ("name", Json::str(s.cli_name())),
                ("label", Json::str(s.label())),
                ("shares_cpu", Json::from(s.shares_cpu())),
                ("shares_network", Json::from(s.shares_network())),
            ])
        })
        .collect();
    Response::json(
        200,
        Json::obj([
            ("scenarios", Json::Arr(list)),
            (
                "custom_programs",
                Json::str(
                    "POST /v1/predict also accepts an inline scenario program \
                     object in the \"scenario\" field",
                ),
            ),
        ])
        .render(),
    )
}

fn error_response(status: u16, message: String) -> Response {
    Response::json(status, Json::obj([("error", Json::from(message))]).render())
}

fn api_error_response(e: &ApiError) -> Response {
    let resp = error_response(e.status(), e.message());
    if matches!(e, ApiError::Busy) {
        resp.with_header("Retry-After", "1".into())
    } else {
        resp
    }
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    if req.body.is_empty() {
        return Err(ApiError::Bad("request body must be a JSON object".into()));
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::Bad("invalid JSON body: not UTF-8".into()))?;
    let v = Json::parse(text).map_err(|e| ApiError::Bad(format!("invalid JSON body: {e}")))?;
    if v.is_object() {
        Ok(v)
    } else {
        Err(ApiError::Bad("request body must be a JSON object".into()))
    }
}

fn field_str<'a>(body: &'a Json, name: &str) -> Result<Option<&'a str>, ApiError> {
    match body.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(other) => Err(ApiError::Bad(format!(
            "field {name:?} must be a string, got {}",
            other.render()
        ))),
    }
}

fn require_str<'a>(body: &'a Json, name: &str) -> Result<&'a str, ApiError> {
    field_str(body, name)?.ok_or_else(|| ApiError::Bad(format!("missing required field {name:?}")))
}

fn field_f64(body: &Json, name: &str) -> Result<Option<f64>, ApiError> {
    match body.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(other) => Err(ApiError::Bad(format!(
            "field {name:?} must be a number, got {}",
            other.render()
        ))),
    }
}

fn field_bool(body: &Json, name: &str) -> Result<bool, ApiError> {
    match body.get(name) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(other) => Err(ApiError::Bad(format!(
            "field {name:?} must be a boolean, got {}",
            other.render()
        ))),
    }
}

fn parse_bench(body: &Json) -> Result<NasBenchmark, ApiError> {
    require_str(body, "bench")?.parse().map_err(ApiError::Bad)
}

/// `class` defaults to S — the paper's smallest size and the only one a
/// cold request can answer quickly.
fn parse_class(body: &Json) -> Result<Class, ApiError> {
    match field_str(body, "class")? {
        None => Ok(Class::S),
        Some(s) => s.parse().map_err(ApiError::Bad),
    }
}

fn parse_trace(body: &Json) -> Result<ApiJob, ApiError> {
    Ok(ApiJob::Trace {
        bench: parse_bench(body)?,
        class: parse_class(body)?,
    })
}

fn parse_build(body: &Json) -> Result<ApiJob, ApiError> {
    Ok(ApiJob::Build {
        bench: parse_bench(body)?,
        class: parse_class(body)?,
        target_secs: field_f64(body, "target_secs")?
            .ok_or_else(|| ApiError::Bad("missing required field \"target_secs\"".into()))?,
    })
}

/// A scenario value: a builtin scenario name (string) or an inline
/// scenario program (object, same shape as the JSON spec format
/// `pskel scenario lint` accepts).
fn scenario_spec_of(v: &Json) -> Result<ScenarioSpec, ApiError> {
    match v {
        Json::Str(s) => s
            .parse::<Scenario>()
            .map(ScenarioSpec::from)
            .map_err(ApiError::Bad),
        obj @ Json::Obj(_) => {
            let program = ScenarioSource::from_json(&obj.render())
                .and_then(|src| src.compile())
                .map_err(|e| ApiError::Bad(format!("invalid scenario program: {e}")))?;
            Ok(ScenarioSpec::custom(program))
        }
        other => Err(ApiError::Bad(format!(
            "scenario must be a builtin name or a program object, got {}",
            other.render()
        ))),
    }
}

/// The `scenario` field of `POST /v1/predict`.
fn parse_scenario(body: &Json) -> Result<ScenarioSpec, ApiError> {
    match body.get("scenario") {
        None | Some(Json::Null) => Err(ApiError::Bad("missing required field \"scenario\"".into())),
        Some(v) => scenario_spec_of(v),
    }
}

/// Cap on Monte-Carlo ensemble sizes accepted over the API; keeps one
/// request from monopolising a worker indefinitely.
pub const MAX_MC_SAMPLES: u32 = 1024;

/// The optional Monte-Carlo fields shared by `/v1/predict` and
/// `/v1/sweep`: an ensemble size (`samples`) and a base `seed`. `seed`
/// without `samples` is rejected rather than silently ignored.
fn parse_mc(body: &Json) -> Result<(Option<u32>, u64), ApiError> {
    let samples = match field_f64(body, "samples")? {
        None => None,
        Some(k) if k.fract() == 0.0 && k >= 1.0 && k <= MAX_MC_SAMPLES as f64 => Some(k as u32),
        Some(k) => {
            return Err(ApiError::Bad(format!(
                "samples must be an integer in [1, {MAX_MC_SAMPLES}], got {k}"
            )))
        }
    };
    let seed = match field_f64(body, "seed")? {
        None => 0,
        Some(_) if samples.is_none() => {
            return Err(ApiError::Bad(
                "field \"seed\" requires \"samples\" (a Monte-Carlo ensemble)".into(),
            ))
        }
        // f64 holds integers exactly up to 2^53; larger seeds would be
        // silently rounded by JSON parsing, so reject them.
        Some(s) if s.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&s) => s as u64,
        Some(s) => {
            return Err(ApiError::Bad(format!(
                "seed must be an integer in [0, 2^53], got {s}"
            )))
        }
    };
    Ok((samples, seed))
}

fn parse_predict(body: &Json) -> Result<ApiJob, ApiError> {
    let method = match field_str(body, "method")? {
        None => PredictMethod::Skeleton,
        Some(s) => PredictMethod::parse(s)?,
    };
    let scenario = parse_scenario(body)?;
    let (samples, seed) = parse_mc(body)?;
    Ok(ApiJob::Predict {
        bench: parse_bench(body)?,
        class: parse_class(body)?,
        target_secs: field_f64(body, "target_secs")?,
        scenario,
        method,
        verify: field_bool(body, "verify")?,
        samples,
        seed,
    })
}

/// Cap on scenarios per `POST /v1/sweep` batch; keeps one request from
/// monopolising a worker indefinitely.
pub const MAX_SWEEP_POINTS: usize = 256;

/// The `POST /v1/sweep` body: the shared predict fields plus either an
/// explicit `"scenarios"` array (builtin names and/or inline programs)
/// or a `"sweep"` scenario spec carrying a `[[sweep]]` declaration,
/// expanded into its points by the scenario crate's deterministic sweep
/// expansion.
fn parse_sweep(body: &Json) -> Result<ApiJob, ApiError> {
    let method = match field_str(body, "method")? {
        None => PredictMethod::Skeleton,
        Some(s) => PredictMethod::parse(s)?,
    };
    let scenarios: Vec<ScenarioSpec> = match (body.get("scenarios"), body.get("sweep")) {
        (Some(_), Some(_)) => {
            return Err(ApiError::Bad(
                "provide either \"scenarios\" or \"sweep\", not both".into(),
            ))
        }
        (Some(Json::Arr(items)), None) => items
            .iter()
            .map(scenario_spec_of)
            .collect::<Result<Vec<_>, _>>()?,
        (Some(other), None) => {
            return Err(ApiError::Bad(format!(
                "field \"scenarios\" must be an array, got {}",
                other.render()
            )))
        }
        (None, Some(spec @ Json::Obj(_))) => ScenarioSource::from_json(&spec.render())
            .and_then(|src| src.expand())
            .map_err(|e| ApiError::Bad(format!("invalid sweep spec: {e}")))?
            .into_iter()
            .map(|p| ScenarioSpec::custom(p.program))
            .collect(),
        (None, Some(other)) => {
            return Err(ApiError::Bad(format!(
                "field \"sweep\" must be a scenario spec object, got {}",
                other.render()
            )))
        }
        (None, None) => {
            return Err(ApiError::Bad(
                "missing required field \"scenarios\" (or a \"sweep\" spec)".into(),
            ))
        }
    };
    if scenarios.is_empty() {
        return Err(ApiError::Bad("sweep needs at least one scenario".into()));
    }
    if scenarios.len() > MAX_SWEEP_POINTS {
        return Err(ApiError::Bad(format!(
            "sweep of {} points exceeds the {MAX_SWEEP_POINTS}-point cap",
            scenarios.len()
        )));
    }
    let (samples, seed) = parse_mc(body)?;
    Ok(ApiJob::PredictBatch {
        bench: parse_bench(body)?,
        class: parse_class(body)?,
        target_secs: field_f64(body, "target_secs")?,
        scenarios,
        method,
        verify: field_bool(body, "verify")?,
        samples,
        seed,
    })
}

fn parse_sleep(body: &Json) -> Result<ApiJob, ApiError> {
    if field_bool(body, "deadlock")? {
        return Ok(ApiJob::Deadlock);
    }
    let ms = field_f64(body, "ms")?.unwrap_or(50.0);
    if !(0.0..=60_000.0).contains(&ms) {
        return Err(ApiError::Bad(format!("ms must be in [0, 60000], got {ms}")));
    }
    Ok(ApiJob::Sleep { ms: ms as u64 })
}

/// The coalescing key: same canonical fields, same key — so two requests
/// that differ only in JSON whitespace or field order still collapse.
fn job_key(job: &ApiJob) -> StoreKey {
    match *job {
        ApiJob::Trace { bench, class } => KeyBuilder::new("serve-v1")
            .field("endpoint", "trace")
            .field("bench", bench.name())
            .field("class", &class.to_string())
            .finish(),
        ApiJob::Build {
            bench,
            class,
            target_secs,
        } => KeyBuilder::new("serve-v1")
            .field("endpoint", "build")
            .field("bench", bench.name())
            .field("class", &class.to_string())
            .field_f64("target", target_secs)
            .finish(),
        ApiJob::Predict {
            bench,
            class,
            target_secs,
            ref scenario,
            method,
            verify,
            samples,
            seed,
        } => {
            let mut kb = KeyBuilder::new("serve-v1")
                .field("endpoint", "predict")
                .field("bench", bench.name())
                .field("class", &class.to_string())
                .field_f64("target", target_secs.unwrap_or(f64::NAN))
                .field("scenario", &scenario.provenance_token())
                .field("method", method.name())
                .field_u64("verify", verify as u64);
            // Monte-Carlo fields enter the key only when present, so
            // legacy requests keep their pre-mc coalescing keys.
            if let Some(k) = samples {
                kb = kb.field_u64("samples", k as u64).field_u64("seed", seed);
            }
            kb.finish()
        }
        ApiJob::PredictBatch {
            bench,
            class,
            target_secs,
            ref scenarios,
            method,
            verify,
            samples,
            seed,
        } => {
            let mut kb = KeyBuilder::new("serve-v1")
                .field("endpoint", "sweep")
                .field("bench", bench.name())
                .field("class", &class.to_string())
                .field_f64("target", target_secs.unwrap_or(f64::NAN))
                .field("method", method.name())
                .field_u64("verify", verify as u64)
                .field_u64("points", scenarios.len() as u64);
            if let Some(k) = samples {
                kb = kb.field_u64("samples", k as u64).field_u64("seed", seed);
            }
            for s in scenarios {
                kb = kb.field("scenario", &s.provenance_token());
            }
            kb.finish()
        }
        // Sleep/deadlock jobs never reach job_endpoint(), but give them
        // distinct keys anyway so an accidental reroute cannot coalesce
        // them.
        ApiJob::Sleep { ms } => KeyBuilder::new("serve-v1")
            .field("endpoint", "sleep")
            .field_u64("ms", ms)
            .finish(),
        ApiJob::Deadlock => KeyBuilder::new("serve-v1")
            .field("endpoint", "deadlock")
            .finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predict_job(target: f64) -> ApiJob {
        ApiJob::Predict {
            bench: NasBenchmark::Cg,
            class: Class::S,
            target_secs: Some(target),
            scenario: Scenario::CpuOneNode.into(),
            method: PredictMethod::Skeleton,
            verify: false,
            samples: None,
            seed: 0,
        }
    }

    #[test]
    fn mc_fields_extend_the_key_only_when_present() {
        let plain = predict_job(0.004);
        let mc = |samples, seed| {
            let mut job = predict_job(0.004);
            if let ApiJob::Predict {
                samples: s,
                seed: sd,
                ..
            } = &mut job
            {
                *s = samples;
                *sd = seed;
            }
            job
        };
        assert_eq!(job_key(&plain), job_key(&mc(None, 0)));
        assert_ne!(job_key(&plain), job_key(&mc(Some(8), 0)));
        assert_ne!(job_key(&mc(Some(8), 0)), job_key(&mc(Some(8), 1)));
        assert_ne!(job_key(&mc(Some(8), 0)), job_key(&mc(Some(16), 0)));
    }

    #[test]
    fn mc_parser_validates_samples_and_seed() {
        let p = |s: &str| parse_predict(&Json::parse(s).unwrap());
        let ok = p(r#"{"bench":"CG","scenario":"dedicated","target_secs":0.004,
                      "samples":16,"seed":7}"#)
        .unwrap();
        match ok {
            ApiJob::Predict { samples, seed, .. } => {
                assert_eq!(samples, Some(16));
                assert_eq!(seed, 7);
            }
            other => panic!("unexpected job {other:?}"),
        }
        for bad in [
            r#"{"bench":"CG","scenario":"dedicated","samples":0}"#,
            r#"{"bench":"CG","scenario":"dedicated","samples":1.5}"#,
            r#"{"bench":"CG","scenario":"dedicated","samples":100000}"#,
            r#"{"bench":"CG","scenario":"dedicated","seed":7}"#,
            r#"{"bench":"CG","scenario":"dedicated","samples":4,"seed":-1}"#,
        ] {
            assert!(matches!(p(bad), Err(ApiError::Bad(_))), "accepted: {bad}");
        }
    }

    #[test]
    fn identical_jobs_share_a_key_distinct_jobs_do_not() {
        assert_eq!(job_key(&predict_job(0.004)), job_key(&predict_job(0.004)));
        assert_ne!(job_key(&predict_job(0.004)), job_key(&predict_job(0.008)));
    }

    #[test]
    fn whitespace_and_field_order_do_not_change_the_key() {
        let a =
            Json::parse(r#"{"bench":"CG","scenario":"cpu-one-node","target_secs":0.004}"#).unwrap();
        let b =
            Json::parse(r#"{ "target_secs": 4e-3, "scenario": "cpu-one-node", "bench": "CG" }"#)
                .unwrap();
        let ja = parse_predict(&a).unwrap();
        let jb = parse_predict(&b).unwrap();
        assert_eq!(job_key(&ja), job_key(&jb));
    }

    #[test]
    fn predict_parser_rejects_bad_fields() {
        let missing = Json::parse(r#"{"bench":"CG"}"#).unwrap();
        assert!(matches!(parse_predict(&missing), Err(ApiError::Bad(_))));
        let bad_scenario = Json::parse(r#"{"bench":"CG","scenario":"mystery"}"#).unwrap();
        assert!(matches!(
            parse_predict(&bad_scenario),
            Err(ApiError::Bad(_))
        ));
        let bad_bench = Json::parse(r#"{"bench":"ZZ","scenario":"dedicated"}"#).unwrap();
        assert!(matches!(parse_predict(&bad_bench), Err(ApiError::Bad(_))));
    }

    #[test]
    fn inline_scenario_programs_parse_and_key_by_content() {
        let spec = r#"{"bench":"CG","target_secs":0.004,"scenario":
            {"name":"ramp","cpu":[{"node":"all","at":0.0,"procs":2}]}}"#;
        let job = parse_predict(&Json::parse(spec).unwrap()).unwrap();
        match &job {
            ApiJob::Predict { scenario, .. } => {
                assert!(scenario.as_builtin().is_none(), "must be a custom spec");
                assert!(scenario.provenance_token().starts_with("custom:ramp:"));
            }
            other => panic!("unexpected job {other:?}"),
        }
        // Structurally equal inline programs coalesce onto one key, even
        // with fields in a different order...
        let reordered = r#"{"scenario":
            {"cpu":[{"procs":2,"at":0.0,"node":"all"}],"name":"ramp"},
            "target_secs":0.004,"bench":"CG"}"#;
        let same = parse_predict(&Json::parse(reordered).unwrap()).unwrap();
        assert_eq!(job_key(&job), job_key(&same));
        // ...and a semantic edit moves to a different key.
        let edited = spec.replace("\"procs\":2", "\"procs\":3");
        let other = parse_predict(&Json::parse(&edited).unwrap()).unwrap();
        assert_ne!(job_key(&job), job_key(&other));
    }

    #[test]
    fn bad_inline_programs_are_rejected_with_the_field_name() {
        let bad = r#"{"bench":"CG","scenario":
            {"name":"x","cpu":[{"node":0,"at":-1.0,"procs":2}]}}"#;
        match parse_predict(&Json::parse(bad).unwrap()) {
            Err(ApiError::Bad(msg)) => {
                assert!(
                    msg.contains("cpu[0].at"),
                    "message must name the field: {msg}"
                );
            }
            other => panic!("expected Bad, got {other:?}"),
        }
        let not_obj = Json::parse(r#"{"bench":"CG","scenario":7}"#).unwrap();
        assert!(matches!(parse_predict(&not_obj), Err(ApiError::Bad(_))));
    }

    #[test]
    fn sweep_parser_accepts_scenarios_and_sweep_specs() {
        let explicit = Json::parse(
            r#"{"bench":"CG","target_secs":0.004,
                "scenarios":["cpu-one-node",
                    {"name":"r","cpu":[{"node":"all","at":0.0,"procs":2}]}]}"#,
        )
        .unwrap();
        match parse_sweep(&explicit).unwrap() {
            ApiJob::PredictBatch { scenarios, .. } => assert_eq!(scenarios.len(), 2),
            other => panic!("unexpected job {other:?}"),
        }
        // A `"sweep"` spec goes through the scenario crate's deterministic
        // sweep expansion: p = 1..=3 makes three points.
        let spec = Json::parse(
            r#"{"bench":"CG","target_secs":0.004,
                "sweep":{"name":"s","sweep":[{"var":"p","from":1,"to":3}],
                         "cpu":[{"node":"all","at":0.0,"procs":"$p"}]}}"#,
        )
        .unwrap();
        match parse_sweep(&spec).unwrap() {
            ApiJob::PredictBatch { scenarios, .. } => assert_eq!(scenarios.len(), 3),
            other => panic!("unexpected job {other:?}"),
        }
    }

    #[test]
    fn sweep_parser_rejects_bad_shapes() {
        for (body, needle) in [
            (
                r#"{"bench":"CG","scenarios":["dedicated"],"sweep":{"name":"s"}}"#,
                "not both",
            ),
            (r#"{"bench":"CG","scenarios":[]}"#, "at least one"),
            (
                r#"{"bench":"CG","scenarios":"dedicated"}"#,
                "must be an array",
            ),
            (r#"{"bench":"CG"}"#, "missing required field"),
        ] {
            match parse_sweep(&Json::parse(body).unwrap()) {
                Err(ApiError::Bad(msg)) => {
                    assert!(msg.contains(needle), "{body} → {msg}")
                }
                other => panic!("{body} must be rejected, got {other:?}"),
            }
        }
        // The point cap names itself in the error.
        let many: Vec<String> = (0..MAX_SWEEP_POINTS + 1)
            .map(|_| "\"dedicated\"".to_string())
            .collect();
        let over = format!(r#"{{"bench":"CG","scenarios":[{}]}}"#, many.join(","));
        match parse_sweep(&Json::parse(&over).unwrap()) {
            Err(ApiError::Bad(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("over-cap sweep must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn class_defaults_to_s() {
        let v = Json::parse(r#"{"bench":"CG"}"#).unwrap();
        match parse_trace(&v).unwrap() {
            ApiJob::Trace { class, .. } => assert_eq!(class, Class::S),
            other => panic!("unexpected job {other:?}"),
        }
    }

    #[test]
    fn endpoint_routing_table() {
        assert_eq!(endpoint_of("/healthz"), Endpoint::Healthz);
        assert_eq!(endpoint_of("/v1/predict"), Endpoint::Predict);
        assert_eq!(endpoint_of("/nope"), Endpoint::Other);
    }
}
