//! Streaming trace-upload support: counters, content hashing and response
//! rendering for the `POST /v1/trace` octet-stream ingest mode.
//!
//! Uploads stream straight off the connection's reader into
//! [`pskel_ingest`]'s incremental engine — signatures and time-resolved
//! phase metrics are built *while the trace uploads*, and peak memory
//! stays O(largest rank), never O(body). The router provenance-keys each
//! result into the artifact store; this module owns the pieces that are
//! mechanism rather than policy: the `/metrics` counter block, the
//! count-and-hash reader that lets an unnamed upload be content-keyed in
//! one pass, and the report → JSON rendering.

use crate::json::Json;
use pskel_ingest::{IngestReport, PhaseMetrics};
use pskel_store::StoreKey;
use std::io::{self, BufRead, Read};
use std::sync::atomic::{AtomicU64, Ordering};

/// Upload-side counters surfaced through `GET /metrics`. Totals
/// accumulate over the server's life; `last_*` gauges snapshot the most
/// recent successful ingest's phase metrics (percentages, so they render
/// as Prometheus-friendly integers).
#[derive(Default)]
pub struct IngestCounters {
    active: AtomicU64,
    uploads: AtomicU64,
    bytes: AtomicU64,
    events: AtomicU64,
    ranks: AtomicU64,
    phases: AtomicU64,
    cache_hits: AtomicU64,
    last_phases: AtomicU64,
    last_max_load_imbalance_pct: AtomicU64,
    last_mean_transfer_pct: AtomicU64,
    last_mean_serialization_pct: AtomicU64,
}

impl IngestCounters {
    /// Enter the concurrent-ingest gate; returns the previous count.
    pub(crate) fn begin_active(&self) -> u64 {
        self.active.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn end_active(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one successful ingest into the totals and last-run gauges.
    pub(crate) fn record(&self, report: &IngestReport) {
        let pct = |f: f64| (f * 100.0).round().clamp(0.0, 100.0) as u64;
        self.uploads.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(report.stats.bytes_read, Ordering::Relaxed);
        self.events
            .fetch_add(report.stats.events, Ordering::Relaxed);
        self.ranks
            .fetch_add(report.stats.ranks as u64, Ordering::Relaxed);
        self.phases
            .fetch_add(report.phases.nphases() as u64, Ordering::Relaxed);
        self.last_phases
            .store(report.phases.nphases() as u64, Ordering::Relaxed);
        self.last_max_load_imbalance_pct
            .store(pct(report.phases.max_load_imbalance()), Ordering::Relaxed);
        self.last_mean_transfer_pct.store(
            pct(report.phases.mean_transfer_fraction()),
            Ordering::Relaxed,
        );
        self.last_mean_serialization_pct.store(
            pct(report.phases.mean_serialization_fraction()),
            Ordering::Relaxed,
        );
    }

    /// `(metric name, value)` pairs for the `/metrics` exposition.
    pub(crate) fn extras(&self) -> Vec<(&'static str, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("pskel_ingest_uploads_total", g(&self.uploads)),
            ("pskel_ingest_bytes_total", g(&self.bytes)),
            ("pskel_ingest_events_total", g(&self.events)),
            ("pskel_ingest_ranks_total", g(&self.ranks)),
            ("pskel_ingest_phases_total", g(&self.phases)),
            ("pskel_ingest_cache_hits_total", g(&self.cache_hits)),
            ("pskel_ingest_active", g(&self.active)),
            ("pskel_ingest_last_phases", g(&self.last_phases)),
            (
                "pskel_ingest_last_max_load_imbalance_percent",
                g(&self.last_max_load_imbalance_pct),
            ),
            (
                "pskel_ingest_last_mean_transfer_percent",
                g(&self.last_mean_transfer_pct),
            ),
            (
                "pskel_ingest_last_mean_serialization_percent",
                g(&self.last_mean_serialization_pct),
            ),
        ]
    }
}

/// Counts and FNV-1a-hashes bytes as they stream through, so an unnamed
/// upload can be provenance-keyed by content without a second pass over
/// the body.
pub(crate) struct HashingReader<R> {
    inner: R,
    count: u64,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    pub(crate) fn new(inner: R) -> HashingReader<R> {
        HashingReader {
            inner,
            count: 0,
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a 64 offset basis
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    pub(crate) fn hash(&self) -> u64 {
        self.hash
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        for &b in &buf[..n] {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(n)
    }
}

/// Discard exactly `len` body bytes. Coalesced followers and cache hits
/// still own an unread upload on their socket; consuming it keeps the
/// connection's keep-alive framing intact.
pub(crate) fn drain(body: &mut dyn BufRead, len: u64) -> io::Result<()> {
    let n = io::copy(&mut (&mut *body).take(len), &mut io::sink())?;
    if n == len {
        Ok(())
    } else {
        Err(io::ErrorKind::UnexpectedEof.into())
    }
}

/// Render an ingest report as a JSON document. This is the canonical
/// rendering shared by the `POST /v1/trace` upload response and
/// `pskel ingest --json` — the router appends its `key`/`stored`
/// provenance fields with `with_provenance`.
pub fn report_json(report: &IngestReport, target_q: f64) -> Json {
    let sig = &report.signature;
    Json::obj([
        ("app", Json::str(sig.app.clone())),
        ("ranks", Json::from(report.stats.ranks)),
        ("app_secs", Json::from(sig.app_time_secs)),
        ("events", Json::from(report.stats.events)),
        ("frames", Json::from(report.stats.frames)),
        ("bytes", Json::from(report.stats.bytes_read)),
        (
            "peak_rank_events",
            Json::from(report.stats.peak_rank_events),
        ),
        ("target_q", Json::from(target_q)),
        (
            "tokens_per_rank",
            Json::Arr(
                sig.sigs
                    .iter()
                    .map(|s| Json::from(s.tokens.len()))
                    .collect(),
            ),
        ),
        (
            "compression_ratio_per_rank",
            Json::Arr(
                sig.sigs
                    .iter()
                    .map(|s| Json::from(s.compression_ratio()))
                    .collect(),
            ),
        ),
        (
            "saturated_ranks",
            Json::Arr(
                report
                    .saturated
                    .iter()
                    .map(|s| Json::from(s.rank))
                    .collect(),
            ),
        ),
        ("nphases", Json::from(report.phases.nphases())),
        (
            "max_load_imbalance",
            Json::from(report.phases.max_load_imbalance()),
        ),
        (
            "mean_transfer_fraction",
            Json::from(report.phases.mean_transfer_fraction()),
        ),
        (
            "mean_serialization_fraction",
            Json::from(report.phases.mean_serialization_fraction()),
        ),
        (
            "phases",
            Json::Arr(report.phases.phases.iter().map(phase_json).collect()),
        ),
    ])
}

/// Append the store-provenance fields to a rendered report document.
pub(crate) fn with_provenance(doc: Json, key: &StoreKey, stored: bool) -> Json {
    match doc {
        Json::Obj(mut pairs) => {
            pairs.push(("key".to_string(), Json::str(key.hex())));
            pairs.push(("stored".to_string(), Json::from(stored)));
            Json::Obj(pairs)
        }
        other => other,
    }
}

fn phase_json(p: &PhaseMetrics) -> Json {
    Json::obj([
        ("index", Json::from(p.index)),
        (
            "boundary",
            p.boundary.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        ("ranks", Json::from(p.ranks)),
        ("start_secs", Json::from(p.start_secs)),
        ("end_secs", Json::from(p.end_secs)),
        ("compute_secs", Json::from(p.compute_secs)),
        ("p2p_secs", Json::from(p.p2p_secs)),
        ("wait_secs", Json::from(p.wait_secs)),
        ("collective_secs", Json::from(p.collective_secs)),
        ("load_imbalance", Json::from(p.load_imbalance)),
        ("transfer_fraction", Json::from(p.transfer_fraction)),
        (
            "serialization_fraction",
            Json::from(p.serialization_fraction),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_reader_counts_and_matches_fnv64() {
        let data = b"pskel streaming ingest";
        let mut r = HashingReader::new(&data[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.count(), data.len() as u64);
        assert_eq!(r.hash(), pskel_store::fnv64(data));
    }

    #[test]
    fn hash_is_chunking_independent() {
        let data: Vec<u8> = (0..=255).collect();
        let mut whole = HashingReader::new(&data[..]);
        io::copy(&mut whole, &mut io::sink()).unwrap();
        let mut chunked = HashingReader::new(&data[..]);
        let mut buf = [0u8; 7];
        while chunked.read(&mut buf).unwrap() > 0 {}
        assert_eq!(whole.hash(), chunked.hash());
    }

    #[test]
    fn drain_rejects_short_bodies() {
        let mut short = io::BufReader::new(&b"abc"[..]);
        assert!(drain(&mut short, 5).is_err());
        let mut exact = io::BufReader::new(&b"abcde"[..]);
        assert!(drain(&mut exact, 5).is_ok());
    }

    #[test]
    fn counters_render_percent_gauges() {
        let c = IngestCounters::default();
        let extras = c.extras();
        assert!(extras
            .iter()
            .any(|(n, _)| *n == "pskel_ingest_uploads_total"));
        assert!(extras
            .iter()
            .any(|(n, _)| *n == "pskel_ingest_last_max_load_imbalance_percent"));
    }
}
