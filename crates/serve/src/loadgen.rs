//! A closed-loop load driver for `pskel serve --selftest`.
//!
//! Each client thread owns one keep-alive connection and issues its next
//! request only after the previous response lands (closed loop), so the
//! offered load adapts to the service rate instead of overrunning it.
//! The request mix exercises the cheap inline endpoints and the full
//! predict pipeline (cold once, then memoized/coalesced).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a self-test run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    pub clients: usize,
    pub requests: usize,
    pub ok: usize,
    pub errors: usize,
    pub elapsed: Duration,
    /// Sorted per-request latencies in microseconds.
    latencies_micros: Vec<u64>,
}

impl LoadReport {
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.requests as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// Exact latency quantile (the driver keeps every sample).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.latencies_micros.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_micros.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_micros[idx]
    }
}

/// One HTTP exchange over an established keep-alive connection. Returns
/// the status code; the body is read fully (to keep framing) and dropped.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<u16> {
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: selftest\r\nContent-Length: {}\r\n{}\r\n{body}",
        body.len(),
        if body.is_empty() {
            ""
        } else {
            "Content-Type: application/json\r\n"
        },
    )?;
    writer.flush()?;

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line == "\r\n" || line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

/// The deterministic request mix for step `i` of a client.
fn request_for(i: usize) -> (&'static str, &'static str, Option<&'static str>) {
    match i % 4 {
        0 => ("GET", "/healthz", None),
        1 => ("GET", "/v1/scenarios", None),
        2 => (
            "POST",
            "/v1/predict",
            Some(r#"{"bench":"CG","class":"S","target_secs":0.004,"scenario":"cpu-one-node"}"#),
        ),
        _ => (
            "POST",
            "/v1/predict",
            Some(r#"{"bench":"CG","class":"S","target_secs":0.004,"scenario":"net-one-link"}"#),
        ),
    }
}

/// Run `clients` closed-loop clients, `per_client` requests each, against
/// a server at `addr`. Returns the merged latency/throughput report.
pub fn run(addr: SocketAddr, clients: usize, per_client: usize) -> io::Result<LoadReport> {
    run_with_mix(addr, clients, per_client, request_for)
}

/// Like [`run`], but with a caller-supplied request mix — step `i` of a
/// client maps to a (method, path, body) triple.
pub fn run_with_mix(
    addr: SocketAddr,
    clients: usize,
    per_client: usize,
    mix: fn(usize) -> (&'static str, &'static str, Option<&'static str>),
) -> io::Result<LoadReport> {
    run_with_schedule(
        addr,
        clients,
        per_client,
        Arc::new(move |c, i| {
            // Offset the mix per client so concurrent clients overlap on
            // identical predicts (exercising coalescing) without being in
            // lockstep.
            let (method, path, body) = mix(i + c);
            (method.into(), path.into(), body.map(Into::into))
        }),
    )
}

/// A dynamic request schedule: maps (client index, step index) to a
/// (method, path, body) triple. Lets callers drive generated bodies —
/// e.g. the fleet selftest's distinct-scenario predict sweeps — that a
/// `fn`-pointer mix of static strings cannot express.
pub type Schedule = Arc<dyn Fn(usize, usize) -> (String, String, Option<String>) + Send + Sync>;

/// The general driver: `clients` closed-loop clients, each running
/// `per_client` steps of `schedule`.
pub fn run_with_schedule(
    addr: SocketAddr,
    clients: usize,
    per_client: usize,
    schedule: Schedule,
) -> io::Result<LoadReport> {
    let clients = clients.max(1);
    let per_client = per_client.max(1);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let schedule = Arc::clone(&schedule);
            std::thread::Builder::new()
                .name(format!("pskel-loadgen-{c}"))
                .spawn(move || -> io::Result<(Vec<u64>, usize)> {
                    let mut writer = TcpStream::connect(addr)?;
                    writer.set_nodelay(true).ok();
                    let mut reader = BufReader::new(writer.try_clone()?);
                    let mut lat = Vec::with_capacity(per_client);
                    let mut errors = 0usize;
                    for i in 0..per_client {
                        let (method, path, body) = schedule(c, i);
                        let start = Instant::now();
                        let status =
                            exchange(&mut writer, &mut reader, &method, &path, body.as_deref())?;
                        lat.push(start.elapsed().as_micros() as u64);
                        if status >= 400 {
                            errors += 1;
                        }
                    }
                    Ok((lat, errors))
                })
                .expect("spawning load client")
        })
        .collect();

    let mut latencies = Vec::with_capacity(clients * per_client);
    let mut errors = 0usize;
    for h in handles {
        let (lat, errs) = h
            .join()
            .map_err(|_| io::Error::other("load client panicked"))??;
        latencies.extend(lat);
        errors += errs;
    }
    let elapsed = t0.elapsed();
    latencies.sort_unstable();
    let requests = latencies.len();
    Ok(LoadReport {
        clients,
        requests,
        ok: requests - errors,
        errors,
        elapsed,
        latencies_micros: latencies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_samples() {
        let report = LoadReport {
            clients: 1,
            requests: 5,
            ok: 5,
            errors: 0,
            elapsed: Duration::from_secs(1),
            latencies_micros: vec![10, 20, 30, 40, 100],
        };
        assert_eq!(report.quantile_micros(0.0), 10);
        assert_eq!(report.quantile_micros(0.5), 30);
        assert_eq!(report.quantile_micros(1.0), 100);
        assert!((report.throughput_rps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mix_cycles_through_all_endpoints() {
        let paths: Vec<&str> = (0..4).map(|i| request_for(i).1).collect();
        assert!(paths.contains(&"/healthz"));
        assert!(paths.contains(&"/v1/scenarios"));
        assert!(paths.contains(&"/v1/predict"));
    }

    #[test]
    fn selftest_against_live_server_reports_sane_numbers() {
        let server = crate::server::Server::start(crate::server::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 16,
            store_dir: None,
            test_endpoints: false,
            summary_every: None,
        })
        .expect("server starts");
        // Inline-only mix: the unit test validates the driver plumbing
        // (threads, latency merge, quantiles), not the simulation
        // pipeline, so it stays runnable where the NAS deps are stubbed.
        fn inline_mix(i: usize) -> (&'static str, &'static str, Option<&'static str>) {
            match i % 2 {
                0 => ("GET", "/healthz", None),
                _ => ("GET", "/v1/scenarios", None),
            }
        }
        let report = run_with_mix(server.addr, 2, 8, inline_mix).expect("load run succeeds");
        assert_eq!(report.requests, 16);
        assert_eq!(report.errors, 0, "no request in the mix should fail");
        assert!(report.quantile_micros(0.5) > 0);
        assert!(report.throughput_rps() > 0.0);
        assert!(server.shutdown(Duration::from_secs(5)));
    }
}
