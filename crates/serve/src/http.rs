//! A minimal, defensive HTTP/1.1 request parser and response writer.
//!
//! The service speaks just enough HTTP for `curl`, browsers and the
//! loadgen client: request line + headers + `Content-Length` bodies,
//! with keep-alive. Everything is bounded — header bytes, header count,
//! body size — and every malformed, truncated or oversized input maps to
//! a [`ParseError`] (and from there to a 4xx response). Parsing never
//! panics on any byte sequence; the property test in
//! `tests/http_prop.rs` hammers exactly that guarantee.

use std::io::{self, BufRead, Write};

/// Hard cap on the request line plus all header lines.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on a buffered request body (JSON API endpoints).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Hard cap on a streamed binary trace upload (`POST /v1/trace` with an
/// octet-stream body). Streamed bodies are never buffered whole, so this
/// can be far larger than [`MAX_BODY_BYTES`].
pub const MAX_UPLOAD_BYTES: u64 = 256 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Header names are lowercased; values are trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// True if the client asked to reuse the connection.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. `status()` is the response code the
/// server sends back before closing the connection.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line, header or length field.
    Bad(String),
    /// Head or body exceeds the configured limits. For body-size
    /// rejections `max_body_bytes` carries the applicable cap so the 413
    /// response can tell the client how much it may send.
    TooLarge {
        message: String,
        max_body_bytes: Option<u64>,
    },
    /// Not HTTP/1.0 or HTTP/1.1.
    Version(String),
    /// The peer closed or timed out mid-request.
    Io(io::Error),
}

impl ParseError {
    /// An oversized-body rejection carrying the cap as a hint.
    pub fn too_large_body(message: String, max_body_bytes: u64) -> ParseError {
        ParseError::TooLarge {
            message,
            max_body_bytes: Some(max_body_bytes),
        }
    }

    fn too_large_head(message: String) -> ParseError {
        ParseError::TooLarge {
            message,
            max_body_bytes: None,
        }
    }

    pub fn status(&self) -> u16 {
        match self {
            ParseError::Bad(_) => 400,
            ParseError::TooLarge { .. } => 413,
            ParseError::Version(_) => 505,
            ParseError::Io(_) => 400,
        }
    }

    pub fn message(&self) -> String {
        match self {
            ParseError::Bad(m) | ParseError::Version(m) => m.clone(),
            ParseError::TooLarge { message, .. } => message.clone(),
            ParseError::Io(e) => format!("read error: {e}"),
        }
    }

    /// The body-size cap this rejection hints at, if it is one.
    pub fn body_limit(&self) -> Option<u64> {
        match self {
            ParseError::TooLarge { max_body_bytes, .. } => *max_body_bytes,
            _ => None,
        }
    }
}

/// Read one line (terminated by `\n`, with an optional `\r`) without ever
/// buffering more than `budget` bytes. Returns `Ok(None)` on clean EOF
/// before the first byte.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Bad("truncated line".into()));
            }
            Ok(_) => {}
            Err(e) => return Err(ParseError::Io(e)),
        }
        if *budget == 0 {
            return Err(ParseError::too_large_head(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(ParseError::Bad("non-UTF-8 header bytes".into())),
            };
        }
        line.push(byte[0]);
    }
}

/// A parsed request head: everything before the body, plus the declared
/// body length, which the caller decides how to consume — buffered for
/// the JSON API ([`read_request_body`]) or streamed for trace uploads.
#[derive(Debug)]
pub struct RequestHead {
    /// The request with an empty body.
    pub req: Request,
    /// The declared `Content-Length`, unvalidated against any size cap.
    pub content_length: u64,
}

/// Parse one request head (request line + headers) from the stream,
/// leaving the body unread. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive teardown).
pub fn read_request_head(r: &mut impl BufRead) -> Result<Option<RequestHead>, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };

    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || parts.next().is_some() {
        return Err(ParseError::Bad(format!(
            "malformed request line {request_line:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::Bad(format!("malformed method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Version(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Bad(format!(
            "malformed request path {target:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r, &mut budget)? else {
            return Err(ParseError::Bad("truncated headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(ParseError::too_large_head(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Bad(format!("malformed header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0u64,
        Some((_, v)) => v
            .parse::<u64>()
            .map_err(|_| ParseError::Bad(format!("bad Content-Length {v:?}")))?,
    };

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let conn = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match conn.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    Ok(Some(RequestHead {
        req: Request {
            method,
            path,
            headers,
            body: Vec::new(),
            keep_alive,
        },
        content_length,
    }))
}

/// Buffer the body declared by `head`, enforcing [`MAX_BODY_BYTES`].
pub fn read_request_body(r: &mut impl BufRead, head: RequestHead) -> Result<Request, ParseError> {
    let RequestHead {
        mut req,
        content_length,
    } = head;
    if content_length > MAX_BODY_BYTES as u64 {
        return Err(ParseError::too_large_body(
            format!("body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
            MAX_BODY_BYTES as u64,
        ));
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length as usize];
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ParseError::Bad("truncated body".into())
            } else {
                ParseError::Io(e)
            }
        })?;
        req.body = body;
    }
    Ok(req)
}

/// Parse one complete request — head plus buffered body. `Ok(None)` means
/// the peer closed the connection cleanly between requests.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, ParseError> {
    match read_request_head(r)? {
        None => Ok(None),
        Some(head) => read_request_body(r, head).map(Some),
    }
}

/// An HTTP response ready to be written to a stream.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After` on 429.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialize the response. `keep_alive` controls the Connection header;
    /// the body always carries an exact Content-Length.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut io::BufReader::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(b"POST /v1/predict?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let req = parse(b"GET / HTTP/1.1\nHost: y\n\n").unwrap().unwrap();
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn connection_close_honored() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/9.9\r\n\r\n",
            b"G=T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET /x HTTP/1.1\r\nHost",
            b"\xff\xfe\xfd",
        ] {
            assert!(parse(bad).is_err(), "{:?} must fail", bad);
        }
    }

    #[test]
    fn oversized_body_is_rejected() {
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(head.as_bytes()) {
            Err(e) => {
                assert_eq!(e.status(), 413);
                assert_eq!(e.body_limit(), Some(MAX_BODY_BYTES as u64));
            }
            Ok(_) => panic!("oversized body must be rejected"),
        }
    }

    #[test]
    fn head_parsing_leaves_the_body_unread() {
        use std::io::Read as _;
        let bytes = b"POST /v1/trace HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut r = io::BufReader::new(&bytes[..]);
        let head = read_request_head(&mut r).unwrap().unwrap();
        assert_eq!(head.req.path, "/v1/trace");
        assert_eq!(head.content_length, 5);
        assert!(head.req.body.is_empty());
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"hello");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        req.extend_from_slice(format!("X: {}\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        req.extend_from_slice(b"\r\n");
        match parse(&req) {
            Err(e) => assert_eq!(e.status(), 413),
            Ok(_) => panic!("oversized head must be rejected"),
        }
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            req.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        req.extend_from_slice(b"\r\n");
        match parse(&req) {
            Err(e) => assert_eq!(e.status(), 413),
            Ok(_) => panic!("header count cap must apply"),
        }
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("Retry-After", "1".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
