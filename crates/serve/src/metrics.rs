//! Live service metrics: per-endpoint request/error/reject/coalesce
//! counters, in-flight gauges and log-bucketed latency histograms,
//! rendered as Prometheus-style text for `GET /metrics` and as a one-line
//! stderr summary.
//!
//! Everything is lock-free atomics so the hot path costs a handful of
//! `fetch_add`s; rendering reads whatever is current without stopping the
//! world (quantiles are therefore approximate under concurrent updates,
//! which is fine for monitoring).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The fixed endpoint set; `Other` absorbs 404s and stray paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    Healthz,
    Metrics,
    Scenarios,
    Trace,
    Build,
    Predict,
    Sweep,
    Sleep,
    Other,
}

impl Endpoint {
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Scenarios,
        Endpoint::Trace,
        Endpoint::Build,
        Endpoint::Predict,
        Endpoint::Sweep,
        Endpoint::Sleep,
        Endpoint::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Scenarios => "scenarios",
            Endpoint::Trace => "trace",
            Endpoint::Build => "build",
            Endpoint::Predict => "predict",
            Endpoint::Sweep => "sweep",
            Endpoint::Sleep => "sleep",
            Endpoint::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Scenarios => 2,
            Endpoint::Trace => 3,
            Endpoint::Build => 4,
            Endpoint::Predict => 5,
            Endpoint::Sweep => 6,
            Endpoint::Sleep => 7,
            Endpoint::Other => 8,
        }
    }
}

/// Latency bucket upper bounds in microseconds (plus an overflow bucket).
const BOUNDS_MICROS: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

#[derive(Default)]
struct Histogram {
    counts: [AtomicU64; BOUNDS_MICROS.len() + 1],
    total: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = BOUNDS_MICROS.partition_point(|&b| b < micros);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Approximate quantile in seconds: the upper bound of the bucket the
    /// rank lands in (the overflow bucket reports 2× the largest bound).
    fn quantile(&self, q: f64) -> f64 {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let micros = BOUNDS_MICROS
                    .get(i)
                    .copied()
                    .unwrap_or(BOUNDS_MICROS[BOUNDS_MICROS.len() - 1] * 2);
                return micros as f64 / 1e6;
            }
        }
        BOUNDS_MICROS[BOUNDS_MICROS.len() - 1] as f64 * 2.0 / 1e6
    }
}

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    coalesced: AtomicU64,
    in_flight: AtomicU64,
    latency: Histogram,
}

/// Aggregate totals across endpoints, for summaries and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    pub requests: u64,
    pub errors: u64,
    pub rejected: u64,
    pub coalesced: u64,
    pub in_flight: u64,
}

/// The service-wide metrics registry.
pub struct Metrics {
    start: Instant,
    endpoints: [EndpointStats; Endpoint::ALL.len()],
    /// Vectorized sweep passes executed (one per `POST /v1/sweep` batch).
    sweep_batches: AtomicU64,
    /// Individual sweep points evaluated inside those passes.
    sweep_points: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            endpoints: Default::default(),
            sweep_batches: AtomicU64::new(0),
            sweep_points: AtomicU64::new(0),
        }
    }

    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Mark a request as started; pair with [`Metrics::end`].
    pub fn begin(&self, ep: Endpoint) -> Instant {
        self.endpoints[ep.idx()]
            .in_flight
            .fetch_add(1, Ordering::Relaxed);
        Instant::now()
    }

    /// Record the outcome of a request started at `started`.
    pub fn end(&self, ep: Endpoint, started: Instant, status: u16) {
        let s = &self.endpoints[ep.idx()];
        s.in_flight.fetch_sub(1, Ordering::Relaxed);
        s.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        if status == 429 {
            s.rejected.fetch_add(1, Ordering::Relaxed);
        }
        s.latency.observe(started.elapsed());
    }

    /// Record that a request was answered by another request's in-flight
    /// computation (single-flight fan-out).
    pub fn coalesced(&self, ep: Endpoint) {
        self.endpoints[ep.idx()]
            .coalesced
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn totals(&self) -> Totals {
        let mut t = Totals::default();
        for s in &self.endpoints {
            t.requests += s.requests.load(Ordering::Relaxed);
            t.errors += s.errors.load(Ordering::Relaxed);
            t.rejected += s.rejected.load(Ordering::Relaxed);
            t.coalesced += s.coalesced.load(Ordering::Relaxed);
            t.in_flight += s.in_flight.load(Ordering::Relaxed);
        }
        t
    }

    /// Requests recorded for one endpoint (used by tests).
    pub fn requests(&self, ep: Endpoint) -> u64 {
        self.endpoints[ep.idx()].requests.load(Ordering::Relaxed)
    }

    /// Record one executed sweep batch covering `points` scenario points.
    pub fn sweep_executed(&self, points: u64) {
        self.sweep_batches.fetch_add(1, Ordering::Relaxed);
        self.sweep_points.fetch_add(points, Ordering::Relaxed);
    }

    /// (batches, points) executed through `POST /v1/sweep` so far.
    pub fn sweep_totals(&self) -> (u64, u64) {
        (
            self.sweep_batches.load(Ordering::Relaxed),
            self.sweep_points.load(Ordering::Relaxed),
        )
    }

    /// Prometheus-style text exposition. `extra` carries gauges the
    /// registry does not own (queue depth, simulator counters) as
    /// `(metric_name, value)` pairs.
    pub fn render(&self, extra: &[(&str, u64)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# pskel-serve metrics\n");
        out.push_str(&format!(
            "pskel_uptime_seconds {:.3}\n",
            self.uptime().as_secs_f64()
        ));
        for ep in Endpoint::ALL {
            let s = &self.endpoints[ep.idx()];
            let label = ep.label();
            let requests = s.requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "pskel_requests_total{{endpoint=\"{label}\"}} {requests}\n"
            ));
            out.push_str(&format!(
                "pskel_request_errors_total{{endpoint=\"{label}\"}} {}\n",
                s.errors.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "pskel_requests_rejected_total{{endpoint=\"{label}\"}} {}\n",
                s.rejected.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "pskel_requests_coalesced_total{{endpoint=\"{label}\"}} {}\n",
                s.coalesced.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "pskel_in_flight{{endpoint=\"{label}\"}} {}\n",
                s.in_flight.load(Ordering::Relaxed)
            ));
            if requests > 0 {
                for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "pskel_request_latency_seconds{{endpoint=\"{label}\",quantile=\"{qs}\"}} {:.6}\n",
                        s.latency.quantile(q)
                    ));
                }
                out.push_str(&format!(
                    "pskel_request_latency_seconds_sum{{endpoint=\"{label}\"}} {:.6}\n",
                    s.latency.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
                ));
                out.push_str(&format!(
                    "pskel_request_latency_seconds_count{{endpoint=\"{label}\"}} {}\n",
                    s.latency.total.load(Ordering::Relaxed)
                ));
            }
        }
        let (batches, points) = self.sweep_totals();
        out.push_str(&format!("pskel_sweep_batches_total {batches}\n"));
        out.push_str(&format!("pskel_sweep_points_total {points}\n"));
        for (name, value) in extra {
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }

    /// One-line traffic summary for the periodic stderr report.
    pub fn summary_line(&self, queue_depth: usize) -> String {
        let t = self.totals();
        let predict = &self.endpoints[Endpoint::Predict.idx()];
        format!(
            "served {} requests ({} errors, {} rejected, {} coalesced), {} in flight, queue depth {}, predict p50 {:.1} ms p99 {:.1} ms",
            t.requests,
            t.errors,
            t.rejected,
            t.coalesced,
            t.in_flight,
            queue_depth,
            predict.latency.quantile(0.5) * 1e3,
            predict.latency.quantile(0.99) * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_errors_accumulate() {
        let m = Metrics::new();
        let t = m.begin(Endpoint::Predict);
        m.end(Endpoint::Predict, t, 200);
        let t = m.begin(Endpoint::Predict);
        m.end(Endpoint::Predict, t, 429);
        let totals = m.totals();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.errors, 1);
        assert_eq!(totals.rejected, 1);
        assert_eq!(totals.in_flight, 0);
        assert_eq!(m.requests(Endpoint::Predict), 2);
    }

    #[test]
    fn in_flight_tracks_begin_end() {
        let m = Metrics::new();
        let t1 = m.begin(Endpoint::Trace);
        let t2 = m.begin(Endpoint::Trace);
        assert_eq!(m.totals().in_flight, 2);
        m.end(Endpoint::Trace, t1, 200);
        m.end(Endpoint::Trace, t2, 200);
        assert_eq!(m.totals().in_flight, 0);
    }

    #[test]
    fn histogram_quantiles_bucket_correctly() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(Duration::from_micros(80)); // -> 100µs bucket
        }
        h.observe(Duration::from_millis(400)); // -> 500ms bucket
        assert_eq!(h.quantile(0.5), 100e-6);
        assert_eq!(h.quantile(0.99), 100e-6);
        assert_eq!(h.quantile(1.0), 0.5);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().quantile(0.99), 0.0);
    }

    #[test]
    fn overflow_bucket_reports_double_top_bound() {
        let h = Histogram::default();
        h.observe(Duration::from_secs(30));
        assert_eq!(h.quantile(0.5), 2.0);
    }

    #[test]
    fn render_exposes_every_endpoint_and_extras() {
        let m = Metrics::new();
        let t = m.begin(Endpoint::Healthz);
        m.end(Endpoint::Healthz, t, 200);
        m.coalesced(Endpoint::Predict);
        let text = m.render(&[("pskel_queue_depth", 3), ("pskel_eval_app_sims_total", 7)]);
        assert!(text.contains("pskel_requests_total{endpoint=\"healthz\"} 1"));
        assert!(text.contains("pskel_requests_coalesced_total{endpoint=\"predict\"} 1"));
        assert!(
            text.contains("pskel_request_latency_seconds{endpoint=\"healthz\",quantile=\"0.5\"}")
        );
        assert!(text.contains("pskel_queue_depth 3"));
        assert!(text.contains("pskel_eval_app_sims_total 7"));
        assert!(text.contains("pskel_uptime_seconds"));
    }

    #[test]
    fn summary_line_mentions_traffic() {
        let m = Metrics::new();
        let t = m.begin(Endpoint::Predict);
        m.end(Endpoint::Predict, t, 200);
        let line = m.summary_line(2);
        assert!(line.contains("served 1 requests"), "{line}");
        assert!(line.contains("queue depth 2"), "{line}");
    }
}
