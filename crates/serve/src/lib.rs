//! # pskel-serve — the skeleton-prediction service
//!
//! A small, dependency-light HTTP/1.1 JSON service that exposes the
//! trace → skeleton → prediction pipeline over a network API:
//!
//! - `GET  /healthz` — liveness plus queue depth.
//! - `GET  /metrics` — Prometheus-style text: per-endpoint request /
//!   error / rejection / coalescing counters, latency quantiles, and the
//!   shared simulation counters.
//! - `GET  /v1/scenarios` — the paper's resource-sharing scenarios.
//! - `POST /v1/trace` — with a JSON body: trace summary for a benchmark
//!   × class. With an `application/octet-stream` body: streaming ingest
//!   of a binary PSKT trace — the signature and time-resolved phase
//!   metrics are built *while the trace uploads* (never buffering the
//!   body), provenance-keyed into the store, and concurrent identical
//!   uploads (same `x-provenance` header) coalesce onto one ingest.
//! - `POST /v1/build` — build a skeleton and report its metadata.
//! - `POST /v1/predict` — predict shared-scenario runtime by the
//!   `skeleton`, `average`, or `class-s` method, optionally verifying
//!   against the simulated ground truth.
//! - `POST /v1/sweep` — N predicts that differ only in scenario, executed
//!   as one vectorized pass over a shared skeleton (an explicit
//!   `"scenarios"` array or a `"sweep"` spec expanded by the scenario
//!   crate); per-point documents are bit-identical to individual
//!   `/v1/predict` answers. This is the substrate the fleet router's
//!   batch planner lowers coalesced predicts onto.
//!
//! ## Architecture
//!
//! ```text
//! conns ─▶ parse ─▶ router ─▶ single-flight ─▶ bounded queue ─▶ workers
//!                     │            │                │             │
//!                  metrics    coalesce dups     429 if full   EvalContext
//!                                                             + Store
//! ```
//!
//! Connection threads parse and route; deterministic jobs are keyed by
//! the same content-addressed provenance scheme the store uses, so
//! identical concurrent requests collapse onto one computation
//! ([`pskel_store::SingleFlight`]). Jobs pass through a bounded queue —
//! full means an immediate 429 with `Retry-After`, never unbounded
//! buffering — into a worker pool of reusable, store-backed
//! [`pskel_predict::EvalContext`]s. Shutdown (SIGINT/SIGTERM) stops the
//! accept loop, drains queued work, and exits cleanly.

pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod router;
pub mod server;
pub mod upload;
pub mod worker;

pub use json::Json;
pub use loadgen::LoadReport;
pub use metrics::{Endpoint, Metrics};
pub use router::MAX_SWEEP_POINTS;
pub use server::{default_workers, signal, ServeConfig, Server};
pub use worker::{ApiError, ApiJob, PredictMethod};

/// The build profile of this binary, as recorded in selftest and bench
/// reports (CI asserts `"release"` on its smoke jobs). One shared
/// definition — `pskel-bench` owns the vocabulary.
pub use pskel_bench::build_profile;
