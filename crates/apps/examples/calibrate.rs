//! Calibration check: dedicated runtimes and MPI fractions per benchmark.
use pskel_apps::{Class, NasBenchmark};
use pskel_mpi::{run_mpi, TraceConfig};
use pskel_sim::{ClusterSpec, Placement};

fn main() {
    let classes = [Class::S, Class::B];
    for b in NasBenchmark::ALL {
        for class in classes {
            let out = run_mpi(
                ClusterSpec::paper_testbed(),
                Placement::round_robin(4, 4),
                &b.full_name(class),
                TraceConfig::on(),
                b.program(class),
            );
            let trace = out.trace.as_ref().unwrap();
            println!(
                "{:6} total={:9.3}s mpi%={:5.1} events/rank={:?}",
                b.full_name(class),
                out.total_secs(),
                100.0 * trace.mpi_fraction(),
                trace.procs.iter().map(|p| p.n_events()).collect::<Vec<_>>()
            );
        }
    }
}
