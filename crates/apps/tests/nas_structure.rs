//! Structural tests of the NAS-like workloads: each benchmark must show
//! the communication pattern its real counterpart is known for (per Tabe &
//! Stout, cited by the paper), plus determinism and class scaling.

use pskel_apps::{Class, NasBenchmark};
use pskel_mpi::{run_mpi, TraceConfig};
use pskel_sim::{ClusterSpec, Placement};
use pskel_trace::{AppTrace, CommMatrix, MessageSizeStats, OpKind};

fn traced(bench: NasBenchmark, class: Class) -> AppTrace {
    run_mpi(
        ClusterSpec::paper_testbed(),
        Placement::round_robin(4, 4),
        &bench.full_name(class),
        TraceConfig::on(),
        bench.program(class),
    )
    .trace
    .unwrap()
}

fn count_kind(trace: &AppTrace, rank: usize, kind: OpKind) -> usize {
    trace.procs[rank]
        .mpi_events()
        .filter(|e| e.kind == kind)
        .count()
}

#[test]
fn bt_exchanges_faces_with_both_grid_partners() {
    let t = traced(NasBenchmark::Bt, Class::S);
    let m = CommMatrix::of(&t);
    assert!(m.is_symmetric(), "ADI exchanges are symmetric");
    // On the 2x2 grid, rank 0 talks to 1 (x) and 2 (y), never 3.
    assert_eq!(m.neighbours(0), vec![1, 2]);
    assert_eq!(m.bytes[0][3], 0, "no diagonal traffic");
}

#[test]
fn sp_has_more_steps_and_smaller_messages_than_bt() {
    let bt = traced(NasBenchmark::Bt, Class::S);
    let sp = traced(NasBenchmark::Sp, Class::S);
    assert!(
        sp.procs[0].n_events() > bt.procs[0].n_events(),
        "SP runs twice the timesteps"
    );
    let bt_sizes = MessageSizeStats::of(&bt);
    let sp_sizes = MessageSizeStats::of(&sp);
    assert!(
        sp_sizes.max < bt_sizes.max,
        "SP faces are smaller than BT faces"
    );
}

#[test]
fn cg_alternates_transpose_exchange_and_dot_products() {
    let t = traced(NasBenchmark::Cg, Class::S);
    // Two allreduces per inner iteration dominate the collective count.
    let allreds = count_kind(&t, 0, OpKind::Allreduce);
    let isends = count_kind(&t, 0, OpKind::Isend);
    assert!(
        allreds > isends,
        "CG is allreduce-heavy: {allreds} vs {isends}"
    );
    // The exchange partner is the XOR neighbour only.
    let m = CommMatrix::of(&t);
    assert_eq!(m.neighbours(0), vec![1]);
    assert_eq!(m.neighbours(2), vec![3]);
}

#[test]
fn is_moves_almost_everything_through_alltoallv() {
    let t = traced(NasBenchmark::Is, Class::S);
    assert!(count_kind(&t, 0, OpKind::Alltoallv) >= 1);
    // IS has no point-to-point traffic at all — it is collective-only.
    assert_eq!(CommMatrix::of(&t).total_bytes(), 0);
    // Few, fat iterations: far fewer events than any other benchmark.
    let lu = traced(NasBenchmark::Lu, Class::S);
    assert!(t.procs[0].n_events() * 10 < lu.procs[0].n_events());
}

#[test]
fn lu_wavefront_uses_many_small_blocking_messages() {
    let t = traced(NasBenchmark::Lu, Class::S);
    // Blocking sends/recvs, no nonblocking ops.
    assert_eq!(count_kind(&t, 0, OpKind::Isend), 0);
    assert!(
        count_kind(&t, 0, OpKind::Send) > 100,
        "pipelined block messages"
    );
    // Interior flow: corner rank 0 sends only east+south (to 1 and 2).
    let m = CommMatrix::of(&t);
    assert_eq!(m.neighbours(0), vec![1, 2]);
    // Small messages: class S blocks are tiny.
    let sizes = MessageSizeStats::of(&t);
    assert!(
        sizes.max <= 1024,
        "LU.S messages should be small, max {}",
        sizes.max
    );
}

#[test]
fn mg_ghost_sizes_shrink_geometrically_with_level() {
    let t = traced(NasBenchmark::Mg, Class::B);
    let sizes: Vec<u64> = t.procs[0]
        .mpi_events()
        .filter(|e| e.kind == OpKind::Isend)
        .map(|e| e.bytes)
        .collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        max / min.max(1) >= 256,
        "V-cycle spans >= 4 size octaves: {min}..{max}"
    );
}

#[test]
fn ep_is_compute_only_until_the_final_reductions() {
    let t = traced(NasBenchmark::Ep, Class::S);
    assert_eq!(CommMatrix::of(&t).total_bytes(), 0);
    let p = &t.procs[0];
    assert!(p.mpi_fraction() < 0.6, "EP.S is still mostly compute");
    // Collectives: bcast + 2 barriers + 2 allreduce + reduce.
    assert!(
        p.n_events() <= 8,
        "EP has almost no MPI events: {}",
        p.n_events()
    );
}

#[test]
fn ft_alternates_fft_compute_with_global_transpose() {
    let t = traced(NasBenchmark::Ft, Class::S);
    let alltoalls = count_kind(&t, 0, OpKind::Alltoall);
    let steps = 2; // class S step count
    assert_eq!(alltoalls, steps, "one transpose per timestep");
    assert_eq!(count_kind(&t, 0, OpKind::Allreduce), steps);
}

#[test]
fn traces_are_deterministic_per_benchmark() {
    for b in [NasBenchmark::Cg, NasBenchmark::Lu, NasBenchmark::Ft] {
        let a = traced(b, Class::S);
        let c = traced(b, Class::S);
        assert_eq!(a, c, "{b} trace must be bit-identical across runs");
    }
}

#[test]
fn class_scaling_orders_runtimes() {
    for b in [NasBenchmark::Cg, NasBenchmark::Mg] {
        let ts: Vec<f64> = [Class::S, Class::W, Class::A]
            .iter()
            .map(|&c| traced(b, c).total_time.as_secs_f64())
            .collect();
        assert!(ts[0] < ts[1] && ts[1] < ts[2], "{b}: {ts:?}");
    }
}

#[test]
fn every_benchmark_has_an_initialization_phase() {
    // The first window of the run must be more compute-dominated than the
    // run's own steady state is communication-free — concretely: a bcast
    // arrives before any repeated pattern, and some setup compute exists.
    for b in NasBenchmark::EXTENDED {
        let t = traced(b, Class::W);
        let first = t.procs[0].mpi_events().next().unwrap();
        assert_eq!(
            first.kind,
            OpKind::Bcast,
            "{b} starts with a parameter bcast"
        );
    }
}

#[test]
fn rank_imbalance_is_present_but_small() {
    // The per-rank compute totals must differ (deterministic imbalance)
    // but stay within a few percent.
    let t = traced(NasBenchmark::Sp, Class::W);
    let totals: Vec<f64> = t
        .procs
        .iter()
        .map(|p| p.compute_time().as_secs_f64())
        .collect();
    let min = totals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = totals.iter().copied().fold(0.0, f64::max);
    assert!(
        max > min,
        "ranks must not be perfectly balanced: {totals:?}"
    );
    assert!(max / min < 1.15, "imbalance too large: {totals:?}");
}
