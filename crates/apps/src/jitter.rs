//! Deterministic execution-time variability for the synthetic benchmarks.
//!
//! Real applications never repeat an iteration exactly: compute durations
//! drift with data-dependent branches and cache state, ranks are slightly
//! imbalanced, and data-dependent message sizes (IS's bucket sizes) vary
//! per iteration. This variability is what makes skeleton construction
//! non-trivial — clustering has to average it (τ > 0) and the paper traces
//! the resulting prediction error back to exactly this averaging (§4.4).
//!
//! All randomness is drawn from ChaCha streams seeded by (app, class,
//! rank), so every run of the same workload performs the identical demand
//! sequence: traces, dedicated runs and scenario runs stay comparable.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-rank deterministic variability source.
#[derive(Clone, Debug)]
pub struct Jitter {
    rng: ChaCha8Rng,
    /// Relative standard deviation of compute durations.
    sigma: f64,
    /// Fixed multiplicative imbalance of this rank.
    rank_factor: f64,
}

impl Jitter {
    /// `imbalance` is the +/- relative spread of fixed per-rank speed
    /// differences; `sigma` the per-call relative jitter.
    pub fn new(seed: u64, rank: usize, sigma: f64, imbalance: f64) -> Jitter {
        assert!(
            (0.0..1.0).contains(&sigma),
            "sigma must be in [0,1), got {sigma}"
        );
        assert!(
            (0.0..1.0).contains(&imbalance),
            "imbalance must be in [0,1)"
        );
        // A fixed, deterministic per-rank factor in [1-imb, 1+imb].
        let h = (rank as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let rank_factor = 1.0 + imbalance * (2.0 * unit - 1.0);
        let rng = ChaCha8Rng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x517c_c1b7));
        Jitter {
            rng,
            sigma,
            rank_factor,
        }
    }

    /// A jittered compute duration around `base` seconds.
    pub fn compute_secs(&mut self, base: f64) -> f64 {
        let z = self.standard_normal();
        (base * self.rank_factor * (1.0 + self.sigma * z)).max(0.0)
    }

    /// A jittered byte count around `base` with relative spread `rel`.
    pub fn bytes(&mut self, base: u64, rel: f64) -> u64 {
        let z = self.standard_normal();
        ((base as f64 * (1.0 + rel * z)).round() as i64).max(1) as u64
    }

    /// The fixed imbalance factor of this rank.
    pub fn rank_factor(&self) -> f64 {
        self.rank_factor
    }

    fn standard_normal(&mut self) -> f64 {
        // Box-Muller.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_rank() {
        let mut a = Jitter::new(7, 2, 0.05, 0.03);
        let mut b = Jitter::new(7, 2, 0.05, 0.03);
        for _ in 0..10 {
            assert_eq!(a.compute_secs(1.0), b.compute_secs(1.0));
        }
        let mut c = Jitter::new(7, 3, 0.05, 0.03);
        assert_ne!(a.compute_secs(1.0), c.compute_secs(1.0));
    }

    #[test]
    fn zero_sigma_is_rank_factor_only() {
        let mut j = Jitter::new(1, 0, 0.0, 0.0);
        assert_eq!(j.compute_secs(2.0), 2.0);
        assert_eq!(j.rank_factor(), 1.0);
    }

    #[test]
    fn jitter_stays_near_base() {
        let mut j = Jitter::new(42, 1, 0.02, 0.0);
        let n = 1000;
        let mean: f64 = (0..n).map(|_| j.compute_secs(1.0)).sum::<f64>() / n as f64;
        assert!((mean - j.rank_factor()).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rank_factors_spread_within_bounds() {
        for r in 0..16 {
            let j = Jitter::new(0, r, 0.0, 0.05);
            let f = j.rank_factor();
            assert!((0.95..=1.05).contains(&f), "rank {r} factor {f}");
        }
        // Not all equal.
        let f0 = Jitter::new(0, 0, 0.0, 0.05).rank_factor();
        let f1 = Jitter::new(0, 1, 0.0, 0.05).rank_factor();
        assert_ne!(f0, f1);
    }

    #[test]
    fn byte_jitter_never_hits_zero() {
        let mut j = Jitter::new(5, 0, 0.0, 0.0);
        for _ in 0..100 {
            assert!(j.bytes(2, 0.9) >= 1);
        }
    }

    #[test]
    fn compute_never_negative() {
        let mut j = Jitter::new(5, 0, 0.5, 0.0);
        for _ in 0..1000 {
            assert!(j.compute_secs(0.001) >= 0.0);
        }
    }
}
