//! Small synthetic applications used by examples and tests (outside the
//! NAS suite): quick to run, with clean periodic structure.

use crate::jitter::Jitter;
use pskel_mpi::Comm;

/// A ring pipeline: each rank computes then forwards a block to its right
/// neighbour for `rounds` rounds. Works with any rank count ≥ 2.
pub fn ring(comm: &mut Comm, rounds: u64, compute_secs: f64, bytes: u64) {
    let n = comm.size();
    assert!(n >= 2, "ring needs at least 2 ranks");
    let me = comm.rank();
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    let mut jit = Jitter::new(0x41_6e67, me, 0.02, 0.02);

    comm.barrier();
    for _ in 0..rounds {
        comm.compute(jit.compute_secs(compute_secs));
        let s = comm.isend(right, 1, bytes);
        let r = comm.irecv(Some(left), Some(1), bytes);
        comm.waitall(vec![s, r]);
    }
    comm.barrier();
}

/// A 1-D halo-exchange stencil: interior ranks exchange with both
/// neighbours each step. Any rank count ≥ 2.
pub fn stencil_1d(comm: &mut Comm, steps: u64, compute_secs: f64, halo_bytes: u64) {
    let n = comm.size();
    assert!(n >= 2, "stencil needs at least 2 ranks");
    let me = comm.rank();
    let mut jit = Jitter::new(0x57_656e, me, 0.02, 0.02);

    comm.barrier();
    for _ in 0..steps {
        let mut reqs = Vec::new();
        if me > 0 {
            reqs.push(comm.isend(me - 1, 2, halo_bytes));
            reqs.push(comm.irecv(Some(me - 1), Some(2), halo_bytes));
        }
        if me + 1 < n {
            reqs.push(comm.isend(me + 1, 2, halo_bytes));
            reqs.push(comm.irecv(Some(me + 1), Some(2), halo_bytes));
        }
        comm.compute(jit.compute_secs(compute_secs));
        comm.waitall(reqs);
        comm.allreduce(8);
    }
    comm.barrier();
}

/// A master/worker farm: rank 0 hands out `tasks` work units (any-source
/// result collection), workers compute. Any rank count ≥ 2.
pub fn master_worker(comm: &mut Comm, tasks: u64, task_secs: f64, payload: u64) {
    let n = comm.size();
    assert!(n >= 2, "master/worker needs at least 2 ranks");
    let me = comm.rank();
    let workers = n - 1;
    let mut jit = Jitter::new(0x6d_6173, me, 0.05, 0.0);

    if me == 0 {
        // Deal tasks round-robin, collect results from anyone.
        for t in 0..tasks {
            let w = 1 + (t as usize % workers);
            comm.send(w, 3, payload);
        }
        for _ in 0..tasks {
            comm.recv(None, Some(4));
        }
        // Poison pills.
        for w in 1..n {
            comm.send(w, 5, 8);
        }
    } else {
        let mine = tasks / workers as u64 + u64::from((me - 1) < (tasks % workers as u64) as usize);
        for _ in 0..mine {
            comm.recv(Some(0), Some(3));
            comm.compute(jit.compute_secs(task_secs));
            comm.send(0, 4, payload);
        }
        comm.recv(Some(0), Some(5));
    }
    comm.barrier();
}

#[cfg(test)]
mod tests {
    use pskel_mpi::{run_mpi, TraceConfig};
    use pskel_sim::{ClusterSpec, Placement};

    fn run(
        n: usize,
        f: impl Fn(&mut pskel_mpi::Comm) + Send + Sync + 'static,
    ) -> pskel_mpi::MpiRunOutcome {
        run_mpi(
            ClusterSpec::homogeneous(n),
            Placement::round_robin(n, n),
            "synthetic",
            TraceConfig::on(),
            f,
        )
    }

    #[test]
    fn ring_runs_and_is_periodic() {
        let out = run(4, |c| super::ring(c, 10, 0.01, 10_000));
        assert!(out.total_secs() > 0.1);
        let trace = out.trace.unwrap();
        // 10 rounds x (isend+irecv+waitall) + 2 barriers.
        assert_eq!(trace.procs[0].n_events(), 10 * 3 + 2);
    }

    #[test]
    fn stencil_runs_with_boundary_ranks() {
        let out = run(4, |c| super::stencil_1d(c, 5, 0.01, 50_000));
        assert!(out.total_secs() > 0.05);
        let trace = out.trace.unwrap();
        // Interior ranks have 4 requests per step, boundary ranks 2.
        let b = trace.procs[0].n_events();
        let i = trace.procs[1].n_events();
        assert!(i > b);
    }

    #[test]
    fn master_worker_completes_all_tasks() {
        let out = run(4, |c| super::master_worker(c, 10, 0.02, 1000));
        // 10 tasks across 3 workers, ~4 tasks critical path.
        let t = out.total_secs();
        assert!(t >= 0.06, "tasks did not run: {t}");
    }

    #[test]
    fn master_worker_uneven_division() {
        // 7 tasks across 3 workers: 3/2/2.
        let out = run(4, |c| super::master_worker(c, 7, 0.01, 100));
        assert!(out.total_secs() > 0.0);
    }
}
