//! EP — Embarrassingly Parallel (extension beyond the paper's six codes).
//!
//! Gaussian-pair generation with essentially no communication: a long
//! independent compute phase per rank, a handful of small allreduces to
//! combine counts at the end. The extreme compute-bound case: its skeleton
//! is almost pure busy loop, and any prediction method that captures CPU
//! availability alone should do well — a useful control workload.

use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0xE9_0001;

pub fn run(comm: &mut Comm, class: Class) {
    let me = comm.rank();
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    // EP splits the sample space evenly; blocks let the trace show a
    // (compute-only) loop structure.
    let blocks = class.steps(64);
    let comp_block = class.compute(2.5);

    comm.bcast(0, 64);
    comm.barrier();

    for _ in 0..blocks {
        comm.compute(jit.compute_secs(comp_block));
    }

    // Combine the ten Gaussian-annulus counts and the checksums.
    comm.allreduce(80);
    comm.allreduce(16);
    comm.reduce(0, 8);
    comm.barrier();
}
