//! MG — Multigrid.
//!
//! V-cycles over a grid hierarchy: the restriction descent and prolongation
//! ascent exchange ghost layers with both grid partners at every level,
//! with message sizes and computation shrinking geometrically toward the
//! coarse levels — so the fine levels are bandwidth-bound and the coarse
//! levels pure latency. Short cycles make MG's good skeletons small.

use super::exchange;
use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0x36_0001;
const TAG_GHOST: u64 = 50;

pub fn run(comm: &mut Comm, class: Class) {
    let n = comm.size();
    assert!(
        n.is_power_of_two() && n >= 2,
        "MG requires a power-of-two rank count"
    );
    let me = comm.rank();
    let p1 = me ^ 1;
    let p2 = if n >= 4 { me ^ 2 } else { me ^ 1 };
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let cycles = class.steps(100);
    let levels = 7u32;
    let finest_ghost = class.bytes(130_000);
    let finest_comp = class.compute(0.25);

    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(1.0)));
    comm.barrier();

    for _ in 0..cycles {
        // Restriction: fine -> coarse.
        for depth in 0..levels {
            let ghost = (finest_ghost >> (2 * depth)).max(8);
            let comp = finest_comp / 4f64.powi(depth as i32);
            exchange(comm, p1, TAG_GHOST + depth as u64, ghost);
            exchange(comm, p2, TAG_GHOST + 16 + depth as u64, ghost);
            comm.compute(jit.compute_secs(comp));
        }
        // Prolongation: coarse -> fine (interpolation is cheaper).
        for depth in (0..levels).rev() {
            let ghost = (finest_ghost >> (2 * depth)).max(8);
            let comp = finest_comp / (3.0 * 4f64.powi(depth as i32));
            exchange(comm, p1, TAG_GHOST + 32 + depth as u64, ghost);
            comm.compute(jit.compute_secs(comp));
        }
        // Residual norm.
        comm.allreduce(8);
    }

    comm.reduce(0, 8);
    comm.barrier();
}
