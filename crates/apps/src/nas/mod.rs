//! Pattern-faithful re-implementations of the six NAS Parallel Benchmarks
//! the paper evaluates (BT, CG, IS, LU, MG, SP), for 4 ranks (BT/SP/LU use
//! the 2×2 process grid; CG/IS/MG accept any power of two).
//!
//! The skeleton framework only observes the MPI interface, so what these
//! implementations reproduce is each code's *communication structure* (per
//! Tabe & Stout's characterization, cited by the paper) and its
//! compute/communication balance — not the numerics:
//!
//! * **BT/SP** — ADI on a square grid: face exchanges, then x/y/z line
//!   solves with forward/backward substitution messages per direction.
//! * **CG** — repeated inner solver iterations: transpose-partner exchange
//!   plus dot-product allreduces.
//! * **IS** — few iterations, each a cheap ranking step followed by a huge
//!   all-to-all key redistribution (data-dependent sizes).
//! * **LU** — SSOR wavefront: many small pipelined messages sweeping the
//!   grid diagonally, forward then backward.
//! * **MG** — V-cycles over a level hierarchy: ghost exchanges that shrink
//!   with each coarser level (latency-bound at the bottom).
//!
//! Compute durations carry deterministic per-iteration jitter and per-rank
//! imbalance (see [`crate::jitter`]); IS message sizes vary per iteration.
//! Every benchmark has a distinct initialization phase, so "just run the
//! start of the app" is *not* representative — the property the paper's
//! skeleton approach exploits.

mod bt;
mod cg;
mod ep;
mod ft;
mod is;
mod lu;
mod mg;
mod sp;

use crate::class::Class;
use pskel_mpi::Comm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A NAS benchmark. The paper evaluates the first six; EP and FT are
/// provided as extensions (see their module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NasBenchmark {
    Bt,
    Cg,
    Is,
    Lu,
    Mg,
    Sp,
    Ep,
    Ft,
}

impl NasBenchmark {
    /// The paper's evaluation suite (§4.1), in its order.
    pub const ALL: [NasBenchmark; 6] = [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Is,
        NasBenchmark::Lu,
        NasBenchmark::Mg,
        NasBenchmark::Sp,
    ];

    /// The paper's suite plus the EP and FT extensions.
    pub const EXTENDED: [NasBenchmark; 8] = [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Is,
        NasBenchmark::Lu,
        NasBenchmark::Mg,
        NasBenchmark::Sp,
        NasBenchmark::Ep,
        NasBenchmark::Ft,
    ];

    pub fn name(self) -> &'static str {
        match self {
            NasBenchmark::Bt => "BT",
            NasBenchmark::Cg => "CG",
            NasBenchmark::Is => "IS",
            NasBenchmark::Lu => "LU",
            NasBenchmark::Mg => "MG",
            NasBenchmark::Sp => "SP",
            NasBenchmark::Ep => "EP",
            NasBenchmark::Ft => "FT",
        }
    }

    /// "BT.B"-style display name.
    pub fn full_name(self, class: Class) -> String {
        format!("{}.{}", self.name(), class)
    }

    /// Run the benchmark on this rank's communicator.
    pub fn run(self, comm: &mut Comm, class: Class) {
        match self {
            NasBenchmark::Bt => bt::run(comm, class),
            NasBenchmark::Cg => cg::run(comm, class),
            NasBenchmark::Is => is::run(comm, class),
            NasBenchmark::Lu => lu::run(comm, class),
            NasBenchmark::Mg => mg::run(comm, class),
            NasBenchmark::Sp => sp::run(comm, class),
            NasBenchmark::Ep => ep::run(comm, class),
            NasBenchmark::Ft => ft::run(comm, class),
        }
    }

    /// An SPMD program closure suitable for [`pskel_mpi::run_mpi`].
    pub fn program(self, class: Class) -> impl Fn(&mut Comm) + Send + Sync + Clone + 'static {
        move |comm: &mut Comm| self.run(comm, class)
    }
}

impl std::str::FromStr for NasBenchmark {
    type Err = String;

    fn from_str(s: &str) -> Result<NasBenchmark, String> {
        NasBenchmark::EXTENDED
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!("unknown benchmark {s:?}; expected one of BT CG IS LU MG SP EP FT")
            })
    }
}

impl fmt::Display for NasBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Symmetric nonblocking exchange with a partner (both directions overlap),
/// the building block of the grid benchmarks.
pub(crate) fn exchange(comm: &mut Comm, partner: usize, tag: u64, bytes: u64) {
    let s = comm.isend(partner, tag, bytes);
    let r = comm.irecv(Some(partner), Some(tag), bytes);
    comm.waitall(vec![s, r]);
}

/// 2×2 grid coordinates for the ADI/wavefront codes.
pub(crate) struct Grid2x2 {
    pub col: usize,
    pub row: usize,
}

impl Grid2x2 {
    pub fn of(rank: usize, size: usize) -> Grid2x2 {
        assert_eq!(
            size, 4,
            "this benchmark requires a 2x2 process grid (4 ranks)"
        );
        Grid2x2 {
            col: rank & 1,
            row: (rank >> 1) & 1,
        }
    }

    pub fn north(&self, rank: usize) -> Option<usize> {
        (self.row > 0).then(|| rank - 2)
    }

    pub fn south(&self, rank: usize) -> Option<usize> {
        (self.row == 0).then(|| rank + 2)
    }

    pub fn west(&self, rank: usize) -> Option<usize> {
        (self.col > 0).then(|| rank - 1)
    }

    pub fn east(&self, rank: usize) -> Option<usize> {
        (self.col == 0).then(|| rank + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(NasBenchmark::Bt.name(), "BT");
        assert_eq!(NasBenchmark::Is.full_name(Class::B), "IS.B");
        assert_eq!(NasBenchmark::Lu.to_string(), "LU");
    }

    #[test]
    fn all_contains_six_distinct() {
        let mut v = NasBenchmark::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn grid_neighbours() {
        // Layout: 0 1 / 2 3.
        let g0 = Grid2x2::of(0, 4);
        assert_eq!(g0.east(0), Some(1));
        assert_eq!(g0.south(0), Some(2));
        assert_eq!(g0.west(0), None);
        assert_eq!(g0.north(0), None);
        let g3 = Grid2x2::of(3, 4);
        assert_eq!(g3.west(3), Some(2));
        assert_eq!(g3.north(3), Some(1));
        assert_eq!(g3.east(3), None);
        assert_eq!(g3.south(3), None);
    }

    #[test]
    #[should_panic(expected = "2x2 process grid")]
    fn grid_requires_four_ranks() {
        Grid2x2::of(0, 8);
    }
}
