//! BT — Block Tridiagonal solver.
//!
//! ADI scheme on a 2×2 process grid: each timestep exchanges cell faces
//! with both grid neighbours (`copy_faces`), computes the right-hand side,
//! then performs x/y/z line solves; the distributed x and y solves each
//! ship forward- and backward-substitution boundary data to the partner in
//! that direction. Compute-heavy (MPI fraction ~10%), moderate message
//! sizes, many timesteps.

use super::{exchange, Grid2x2};
use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0xB7_0001;
const TAG_FACE_X: u64 = 10;
const TAG_FACE_Y: u64 = 11;
const TAG_SOLVE_XF: u64 = 12;
const TAG_SOLVE_XB: u64 = 13;
const TAG_SOLVE_YF: u64 = 14;
const TAG_SOLVE_YB: u64 = 15;

pub fn run(comm: &mut Comm, class: Class) {
    let me = comm.rank();
    let grid = Grid2x2::of(me, comm.size());
    let _ = &grid; // neighbours are the XOR partners on the 2x2 torus
    let px = me ^ 1;
    let py = me ^ 2;
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let steps = class.steps(200);
    let face = class.bytes(2_000_000);
    let solve_fwd = class.bytes(400_000);
    let solve_bwd = class.bytes(400_000);
    let comp_rhs = class.compute(0.30);
    let comp_solve = class.compute(0.17);
    let comp_back = class.compute(0.085);
    let comp_z = class.compute(0.17);

    // Initialization: grid setup + parameter broadcast (distinct phase, not
    // representative of the iteration body).
    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(2.0)));
    comm.barrier();

    for step in 0..steps {
        // copy_faces: both directions.
        exchange(comm, px, TAG_FACE_X, face);
        exchange(comm, py, TAG_FACE_Y, face);
        comm.compute(jit.compute_secs(comp_rhs));

        // Distributed x and y solves: forward and backward substitution.
        for (p, tf, tb) in [
            (px, TAG_SOLVE_XF, TAG_SOLVE_XB),
            (py, TAG_SOLVE_YF, TAG_SOLVE_YB),
        ] {
            comm.compute(jit.compute_secs(comp_solve));
            exchange(comm, p, tf, solve_fwd);
            comm.compute(jit.compute_secs(comp_back));
            exchange(comm, p, tb, solve_bwd);
        }

        // z solve is node-local on this decomposition.
        comm.compute(jit.compute_secs(comp_z));

        // Periodic residual check.
        if step % 5 == 4 {
            comm.allreduce(40);
        }
    }

    // Verification phase.
    comm.reduce(0, 40);
    comm.barrier();
}
