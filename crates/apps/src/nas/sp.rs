//! SP — Scalar Pentadiagonal solver.
//!
//! Structurally BT's sibling: the same ADI sweep on the 2×2 grid, but with
//! roughly a third of the per-step computation, smaller messages and twice
//! the timesteps — so a noticeably higher communication fraction and a
//! shorter dominant iteration.

use super::{exchange, Grid2x2};
use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0x59_0001;
const TAG_FACE_X: u64 = 20;
const TAG_FACE_Y: u64 = 21;
const TAG_SOLVE_XF: u64 = 22;
const TAG_SOLVE_XB: u64 = 23;
const TAG_SOLVE_YF: u64 = 24;
const TAG_SOLVE_YB: u64 = 25;

pub fn run(comm: &mut Comm, class: Class) {
    let me = comm.rank();
    let _grid = Grid2x2::of(me, comm.size());
    let px = me ^ 1;
    let py = me ^ 2;
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let steps = class.steps(400);
    let face = class.bytes(1_000_000);
    let solve = class.bytes(250_000);
    let comp_rhs = class.compute(0.10);
    let comp_solve = class.compute(0.06);
    let comp_back = class.compute(0.03);
    let comp_z = class.compute(0.02);

    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(1.2)));
    comm.barrier();

    for step in 0..steps {
        exchange(comm, px, TAG_FACE_X, face);
        exchange(comm, py, TAG_FACE_Y, face);
        comm.compute(jit.compute_secs(comp_rhs));

        for (p, tf, tb) in [
            (px, TAG_SOLVE_XF, TAG_SOLVE_XB),
            (py, TAG_SOLVE_YF, TAG_SOLVE_YB),
        ] {
            comm.compute(jit.compute_secs(comp_solve));
            exchange(comm, p, tf, solve);
            comm.compute(jit.compute_secs(comp_back));
            exchange(comm, p, tb, solve);
        }

        comm.compute(jit.compute_secs(comp_z));

        if step % 10 == 9 {
            comm.allreduce(40);
        }
    }

    comm.reduce(0, 40);
    comm.barrier();
}
