//! FT — 3-D FFT (extension beyond the paper's six codes).
//!
//! Each timestep evolves the spectrum and performs a distributed 3-D FFT:
//! two local 1-D FFT passes and a global transpose, which on a slab
//! decomposition is one large all-to-all per step. Bandwidth-hungry like
//! IS, but with a much higher compute share — a stress case for skeletons
//! under network sharing.

use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0xF7_0001;

pub fn run(comm: &mut Comm, class: Class) {
    let n = comm.size();
    assert!(n >= 2, "FT requires at least 2 ranks");
    let me = comm.rank();
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let steps = class.steps(20);
    // Transpose block per (src,dst) pair: grid bytes / n^2; sized so the
    // Class-B all-to-all moves serious data (0.5 GB total per step on 4
    // ranks would be oversized for the testbed; 16 MB/pair ≈ 190 ms).
    let pair_bytes = class.bytes(16_000_000);
    let comp_ffts = class.compute(1.4);
    let comp_evolve = class.compute(0.4);

    // Initialization: index map + initial conditions.
    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(1.5)));
    comm.barrier();

    for _ in 0..steps {
        // Evolve in frequency space, then the local FFT passes.
        comm.compute(jit.compute_secs(comp_evolve));
        comm.compute(jit.compute_secs(comp_ffts));
        // Global transpose.
        comm.alltoall(pair_bytes);
        // Final local pass + checksum reduction.
        comm.compute(jit.compute_secs(comp_ffts * 0.4));
        comm.allreduce(16);
    }

    comm.reduce(0, 16);
    comm.barrier();
}
