//! LU — SSOR solver.
//!
//! The suite's distinctive communication pattern: a *pipelined wavefront*.
//! Each timestep sweeps the 2×2 grid diagonally, block by block — every
//! rank receives boundary data from its north/west neighbours, computes a
//! block, and forwards to south/east (then the sweep reverses). The result
//! is a large number of small eager messages whose cost is dominated by
//! latency and pipeline fill, making LU the most synchronization-sensitive
//! code of the suite.

use super::Grid2x2;
use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0x10_0001;
const TAG_LOWER: u64 = 40;
const TAG_UPPER: u64 = 41;

pub fn run(comm: &mut Comm, class: Class) {
    let me = comm.rank();
    let grid = Grid2x2::of(me, comm.size());
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let steps = class.steps(250);
    let blocks = 25u64;
    let msg = class.bytes(60_000);
    let comp_block = class.compute(0.0385);
    let comp_rhs = class.compute(0.04);

    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(1.8)));
    comm.barrier();

    let north = grid.north(me);
    let south = grid.south(me);
    let west = grid.west(me);
    let east = grid.east(me);

    for step in 0..steps {
        // Lower-triangular sweep: wavefront from the north-west corner.
        for _ in 0..blocks {
            if let Some(p) = north {
                comm.recv(Some(p), Some(TAG_LOWER));
            }
            if let Some(p) = west {
                comm.recv(Some(p), Some(TAG_LOWER));
            }
            comm.compute(jit.compute_secs(comp_block));
            if let Some(p) = south {
                comm.send(p, TAG_LOWER, msg);
            }
            if let Some(p) = east {
                comm.send(p, TAG_LOWER, msg);
            }
        }
        // Upper-triangular sweep: reversed wavefront from the south-east.
        for _ in 0..blocks {
            if let Some(p) = south {
                comm.recv(Some(p), Some(TAG_UPPER));
            }
            if let Some(p) = east {
                comm.recv(Some(p), Some(TAG_UPPER));
            }
            comm.compute(jit.compute_secs(comp_block));
            if let Some(p) = north {
                comm.send(p, TAG_UPPER, msg);
            }
            if let Some(p) = west {
                comm.send(p, TAG_UPPER, msg);
            }
        }
        // RHS update between sweeps.
        comm.compute(jit.compute_secs(comp_rhs));
        // Periodic residual norm.
        if step % 20 == 19 {
            comm.allreduce(40);
        }
    }

    comm.reduce(0, 40);
    comm.barrier();
}
