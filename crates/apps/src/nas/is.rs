//! IS — Integer Sort.
//!
//! Few iterations; each performs a cheap local ranking step, a bucket-size
//! allreduce, and then the benchmark's signature operation: a huge
//! all-to-all key redistribution (about half the execution time goes to
//! MPI). Key distributions are data dependent, so the per-destination
//! counts jitter from iteration to iteration — the clustering stage has to
//! raise its similarity threshold to fold these (paper §3.2).
//!
//! The single large transfer per iteration is why IS has the *largest*
//! minimum good skeleton of the suite (paper Figure 4: 3 s out of ~30 s):
//! a skeleton must include at least one full all-to-all.

use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0x15_0001;

pub fn run(comm: &mut Comm, class: Class) {
    let n = comm.size();
    assert!(n >= 2, "IS requires at least 2 ranks");
    let me = comm.rank();
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let iters = class.steps(10);
    let pair_bytes = class.bytes(48_000_000);
    let bucket_bytes = class.bytes(4096);
    let comp_rank = class.compute(1.4);

    // Initialization: key generation.
    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(0.8)));
    comm.barrier();

    for _ in 0..iters {
        // Local ranking.
        comm.compute(jit.compute_secs(comp_rank));
        // Bucket size exchange.
        comm.allreduce(bucket_bytes);
        // Key redistribution: data-dependent per-destination counts.
        let counts: Vec<u64> = (0..n).map(|_| jit.bytes(pair_bytes, 0.02)).collect();
        comm.alltoallv(&counts);
        // Partial verification.
        comm.allgather(64);
    }

    // Full verification.
    comm.reduce(0, 8);
    comm.barrier();
}
