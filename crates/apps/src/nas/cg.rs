//! CG — Conjugate Gradient.
//!
//! The dominant structure is the *inner* solver iteration, repeated
//! hundreds of times: a matrix-vector product whose halves are exchanged
//! with the transpose partner, followed by two dot-product allreduces.
//! Outer iterations add an extra norm reduction. Because the repeating unit
//! is so short, CG admits the smallest "good" skeletons of the suite
//! (paper Figure 4: 0.13 s).

use super::exchange;
use crate::class::Class;
use crate::jitter::Jitter;
use pskel_mpi::Comm;

const SEED: u64 = 0xC6_0001;
const TAG_TRANSPOSE: u64 = 30;

pub fn run(comm: &mut Comm, class: Class) {
    let n = comm.size();
    assert!(
        n.is_power_of_two() && n >= 2,
        "CG requires a power-of-two rank count"
    );
    let me = comm.rank();
    let partner = me ^ 1;
    let mut jit = Jitter::new(SEED, me, 0.02, 0.03);

    let outer = class.steps(25);
    let inner = 30u64;
    let vec_bytes = class.bytes(1_200_000);
    let comp_matvec = class.compute(0.115);
    let comp_outer = class.compute(0.05);

    // Initialization: sparse matrix generation.
    comm.bcast(0, 64);
    comm.compute(jit.compute_secs(class.compute(1.5)));
    comm.barrier();

    for _ in 0..outer {
        for _ in 0..inner {
            // Matrix-vector product with transpose exchange.
            comm.compute(jit.compute_secs(comp_matvec));
            exchange(comm, partner, TAG_TRANSPOSE, vec_bytes);
            // rho and alpha dot products.
            comm.allreduce(8);
            comm.allreduce(8);
        }
        // Residual norm at the end of each outer iteration.
        comm.compute(jit.compute_secs(comp_outer));
        comm.allreduce(8);
    }

    comm.reduce(0, 8);
    comm.barrier();
}
