//! # pskel-apps — workloads for the skeleton evaluation
//!
//! Pattern-faithful re-implementations of the six NAS Parallel Benchmarks
//! the paper evaluates (BT, CG, IS, LU, MG, SP) in classes S/W/A/B, plus
//! small synthetic applications for examples and tests.
//!
//! See `DESIGN.md` for the substitution argument: the skeleton pipeline
//! observes only the MPI interface, so these workloads reproduce each
//! benchmark's communication structure and compute/communication balance,
//! not its numerics.

pub mod class;
pub mod jitter;
pub mod nas;
pub mod synthetic;

pub use class::Class;
pub use jitter::Jitter;
pub use nas::NasBenchmark;
