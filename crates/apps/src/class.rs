//! NAS problem classes.
//!
//! Class B is the paper's measurement class (30–900 s on 4 nodes of the
//! testbed); Class S is the sub-second "sample" class the paper uses as a
//! manually-generated-skeleton baseline. W and A interpolate. The absolute
//! constants are calibrated to the simulated testbed, not the original
//! machines — the paper's evaluation depends on the *relative* structure
//! (see DESIGN.md).

use serde::{Deserialize, Serialize};
use std::fmt;

/// NAS problem class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Sample size: runs in well under a second; latency-dominated.
    S,
    /// Workstation size.
    W,
    /// Small production size.
    A,
    /// The paper's measurement size.
    B,
}

impl Class {
    pub const ALL: [Class; 4] = [Class::S, Class::W, Class::A, Class::B];

    /// Multiplier on per-iteration computation relative to Class B.
    pub fn compute_factor(self) -> f64 {
        match self {
            Class::S => 1.0 / 2000.0,
            Class::W => 1.0 / 64.0,
            Class::A => 1.0 / 4.0,
            Class::B => 1.0,
        }
    }

    /// Multiplier on message sizes relative to Class B.
    pub fn bytes_factor(self) -> f64 {
        match self {
            Class::S => 1.0 / 500.0,
            Class::W => 1.0 / 16.0,
            Class::A => 1.0 / 2.0,
            Class::B => 1.0,
        }
    }

    /// Multiplier on iteration counts relative to Class B. Real NAS classes
    /// mostly change data size, but the sample class also runs far fewer
    /// iterations.
    pub fn steps_factor(self) -> f64 {
        match self {
            Class::S => 0.1,
            Class::W => 0.25,
            Class::A => 0.5,
            Class::B => 1.0,
        }
    }

    /// Scale a Class-B byte count.
    pub fn bytes(self, class_b: u64) -> u64 {
        ((class_b as f64 * self.bytes_factor()).round() as u64).max(1)
    }

    /// Scale a Class-B compute duration.
    pub fn compute(self, class_b_secs: f64) -> f64 {
        class_b_secs * self.compute_factor()
    }

    /// Scale a Class-B iteration count.
    pub fn steps(self, class_b: u64) -> u64 {
        ((class_b as f64 * self.steps_factor()).round() as u64).max(1)
    }
}

impl std::str::FromStr for Class {
    type Err = String;

    fn from_str(s: &str) -> Result<Class, String> {
        match s {
            "S" | "s" => Ok(Class::S),
            "W" | "w" => Ok(Class::W),
            "A" | "a" => Ok(Class::A),
            "B" | "b" => Ok(Class::B),
            other => Err(format!("unknown class {other:?}; expected S, W, A or B")),
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_b_is_identity() {
        assert_eq!(Class::B.bytes(1000), 1000);
        assert_eq!(Class::B.compute(2.0), 2.0);
        assert_eq!(Class::B.steps(200), 200);
    }

    #[test]
    fn class_s_is_tiny_but_nonzero() {
        assert_eq!(Class::S.bytes(100), 1, "clamped at one byte");
        assert!(Class::S.compute(1.0) < 1e-3);
        assert_eq!(Class::S.steps(200), 20);
    }

    #[test]
    fn factors_are_monotone() {
        for pair in Class::ALL.windows(2) {
            assert!(pair[0].compute_factor() < pair[1].compute_factor());
            assert!(pair[0].bytes_factor() < pair[1].bytes_factor());
            assert!(pair[0].steps_factor() <= pair[1].steps_factor());
        }
    }

    #[test]
    fn display() {
        assert_eq!(Class::B.to_string(), "B");
        assert_eq!(Class::S.to_string(), "S");
    }
}
