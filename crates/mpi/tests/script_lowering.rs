//! The MPI-level lowering guarantee: a program written against [`MpiOps`]
//! produces bit-identical simulation reports whether it executes live
//! through `Comm` on the threaded path or is recorded by `ScriptBuilder`
//! and replayed on the single-threaded fast path.
//!
//! This is the contract the replay producers (trace replay, skeleton
//! execution, signature replay in `pskel-core`) build on.

use pskel_mpi::{
    run_mpi_fns, run_mpi_scripts, try_run_mpi_scripts, Comm, MpiOps, MpiProgram, ScriptBuilder,
    TraceConfig,
};
use pskel_sim::{ClusterSpec, Placement, RankScript, SimReport, THROTTLED_10MBPS};

/// A collective-heavy, mildly irregular program exercising every MpiOps
/// call: point-to-point (blocking + nonblocking), each collective family
/// (including non-power-of-two fold paths when n is odd), and unequal
/// per-rank compute.
fn exercise_all_ops<M: MpiOps>(m: &mut M) {
    let n = m.size();
    let me = m.rank();
    m.compute(1e-4 * (me + 1) as f64);
    m.barrier();
    m.bcast(0, 40_000);
    // Ring shift with nonblocking calls, rendezvous-sized.
    let s = m.isend((me + 1) % n, 7, 100_000);
    let r = m.irecv(Some((me + n - 1) % n), Some(7), 100_000);
    m.waitall(vec![s, r]);
    m.allreduce(2_048);
    m.compute(5e-4);
    m.reduce(n - 1, 8_192);
    m.allgather(3_000);
    m.alltoall(1_500);
    m.reduce_scatter(4_096);
    m.scan(512);
    m.gather(0, 2_000);
    m.scatter(0, 2_000);
    // Blocking p2p pair: even ranks send to the next odd rank.
    if me % 2 == 0 && me + 1 < n {
        m.send(me + 1, 9, 25_000);
    } else if me % 2 == 1 {
        m.recv(Some(me - 1), Some(9));
    }
    // A second collective round so tag sequencing past p2p is covered.
    m.barrier();
    let q = m.isend((me + 2) % n, 11, 600);
    m.recv(Some((me + n - 2) % n), Some(11));
    m.wait(q);
    m.allreduce(64);
}

fn cluster(n: usize, throttle_node0: bool) -> ClusterSpec {
    let mut c = ClusterSpec::homogeneous(n);
    if throttle_node0 {
        c = c.with_link_cap(0, THROTTLED_10MBPS);
    }
    c
}

fn run_threaded(n: usize, c: ClusterSpec) -> SimReport {
    let programs: Vec<MpiProgram> = (0..n)
        .map(|_| Box::new(|comm: &mut Comm| exercise_all_ops(comm)) as MpiProgram)
        .collect();
    let placement = Placement::round_robin(n, c.len());
    run_mpi_fns(c, placement, "lowering", TraceConfig::off(), programs).report
}

fn lower_scripts(n: usize, c: &ClusterSpec) -> Vec<RankScript> {
    let o = c.net.sw_overhead.as_secs_f64();
    (0..n)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, n, o);
            exercise_all_ops(&mut b);
            b.finish()
        })
        .collect()
}

fn assert_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.total_time, b.total_time, "{what}: total_time differs");
    assert_eq!(
        a.finish_times, b.finish_times,
        "{what}: finish_times differ"
    );
    assert_eq!(a.rank_stats, b.rank_stats, "{what}: rank_stats differ");
    assert_eq!(a.events, b.events, "{what}: event counts differ");
    assert_eq!(a, b, "{what}: reports differ");
}

#[test]
fn script_lowering_matches_live_comm_execution() {
    for &(n, throttle) in &[
        (2usize, false),
        (3, false),
        (4, false),
        (4, true),
        (5, false),
    ] {
        let c = cluster(n, throttle);
        let threaded = run_threaded(n, c.clone());
        let scripts = lower_scripts(n, &c);
        let placement = Placement::round_robin(n, c.len());
        let fast = run_mpi_scripts(c, placement, &scripts).report;
        assert_identical(&threaded, &fast, &format!("n={n} throttle={throttle}"));
    }
}

#[test]
fn script_lowering_of_loops_matches_unrolled_execution() {
    let n = 4;
    let iters = 6u64;
    let c = cluster(n, false);
    let o = c.net.sw_overhead.as_secs_f64();

    // Live execution: a plain Rust loop around the exchange body.
    let programs: Vec<MpiProgram> = (0..n)
        .map(|_| {
            Box::new(move |comm: &mut Comm| {
                let (n, me) = (comm.size(), comm.rank());
                for _ in 0..iters {
                    comm.compute(2e-4);
                    let s = comm.isend((me + 1) % n, 3, 48_000);
                    let r = comm.irecv(Some((me + n - 1) % n), Some(3), 48_000);
                    comm.waitall(vec![s, r]);
                    comm.allreduce(1_024);
                }
            }) as MpiProgram
        })
        .collect();
    let placement = Placement::round_robin(n, c.len());
    let threaded = run_mpi_fns(
        c.clone(),
        placement.clone(),
        "loop",
        TraceConfig::off(),
        programs,
    )
    .report;

    // Script form: the body recorded ONCE inside a counted loop node.
    let scripts: Vec<RankScript> = (0..n)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, n, o);
            b.begin_loop(iters);
            MpiOps::compute(&mut b, 2e-4);
            let s = MpiOps::isend(&mut b, (rank + 1) % n, 3, 48_000);
            let r = MpiOps::irecv(&mut b, Some((rank + n - 1) % n), Some(3), 48_000);
            MpiOps::waitall(&mut b, vec![s, r]);
            MpiOps::allreduce(&mut b, 1_024);
            b.end_loop();
            b.finish()
        })
        .collect();
    // The loop stays compressed in the script...
    assert!(scripts[0].unrolled_ops() > 6 * scripts[0].nodes.len() as u64);
    let fast = run_mpi_scripts(c, placement, &scripts).report;
    assert_identical(&threaded, &fast, "compressed loop vs unrolled execution");
}

#[test]
fn script_deadlock_surfaces_as_typed_error() {
    let n = 2;
    let c = cluster(n, false);
    let o = c.net.sw_overhead.as_secs_f64();
    let scripts: Vec<RankScript> = (0..n)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, n, o);
            // Both ranks block receiving from each other with nothing sent.
            MpiOps::recv(&mut b, Some((rank + 1) % n), Some(0));
            b.finish()
        })
        .collect();
    let placement = Placement::round_robin(n, c.len());
    let err = try_run_mpi_scripts(c, placement, &scripts).expect_err("mutual recv must deadlock");
    let msg = err.to_string();
    assert!(msg.contains("deadlock"), "unexpected error: {msg}");
}
