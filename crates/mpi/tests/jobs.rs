//! Tests of the co-scheduled multi-job harness: private communicator
//! groups, resource contention between jobs, and per-job tracing.

use pskel_mpi::{run_jobs, Comm, Job, TraceConfig};
use pskel_sim::ClusterSpec;
use pskel_trace::OpKind;

#[test]
fn jobs_see_private_rank_spaces() {
    let probe = |comm: &mut Comm| {
        assert_eq!(comm.size(), 2, "each job is a 2-rank world");
        assert!(comm.rank() < 2);
        let peer = 1 - comm.rank();
        let info = comm.sendrecv(peer, 0, 100, Some(peer), Some(0));
        assert_eq!(info.src, peer, "sources are group-relative");
        comm.barrier();
    };
    let outcomes = run_jobs(
        ClusterSpec::homogeneous(4),
        vec![
            Job::spmd("left", vec![0, 1], TraceConfig::off(), probe),
            Job::spmd("right", vec![2, 3], TraceConfig::off(), probe),
        ],
    );
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.total_secs > 0.0));
}

#[test]
fn co_located_jobs_contend_for_cpus() {
    // Two single-rank compute jobs. Alone on a dual-CPU node each takes
    // 1 s; with 3 co-located single-rank jobs (3 tasks on 2 CPUs) each
    // takes ~1.5 s.
    let compute = |comm: &mut Comm| comm.compute(1.0);
    let solo = run_jobs(
        ClusterSpec::homogeneous(1),
        vec![Job::spmd("a", vec![0], TraceConfig::off(), compute)],
    );
    assert!((solo[0].total_secs - 1.0).abs() < 1e-6);

    let crowded = run_jobs(
        ClusterSpec::homogeneous(1),
        vec![
            Job::spmd("a", vec![0], TraceConfig::off(), compute),
            Job::spmd("b", vec![0], TraceConfig::off(), compute),
            Job::spmd("c", vec![0], TraceConfig::off(), compute),
        ],
    );
    for o in &crowded {
        assert!(
            (o.total_secs - 1.5).abs() < 1e-6,
            "{}: expected 1.5 s under 3-way sharing, got {}",
            o.name,
            o.total_secs
        );
    }
}

#[test]
fn co_located_jobs_contend_for_links() {
    // Job A transfers 12.5 MB node0 -> node1 (0.1 s alone). Job B streams
    // the same route concurrently: both halve to ~0.2 s.
    let xfer = |comm: &mut Comm| {
        if comm.rank() == 0 {
            comm.send(1, 0, 12_500_000);
        } else {
            comm.recv(Some(0), Some(0));
        }
    };
    let alone = run_jobs(
        ClusterSpec::homogeneous(2),
        vec![Job::spmd("a", vec![0, 1], TraceConfig::off(), xfer)],
    );
    assert!(
        (alone[0].total_secs - 0.1).abs() < 0.01,
        "{}",
        alone[0].total_secs
    );

    let shared = run_jobs(
        ClusterSpec::homogeneous(2),
        vec![
            Job::spmd("a", vec![0, 1], TraceConfig::off(), xfer),
            Job::spmd("b", vec![0, 1], TraceConfig::off(), xfer),
        ],
    );
    for o in &shared {
        assert!(
            (o.total_secs - 0.2).abs() < 0.02,
            "{}: expected ~0.2 s sharing the link, got {}",
            o.name,
            o.total_secs
        );
    }
}

#[test]
fn collectives_stay_within_their_job() {
    // Both jobs run allreduces "simultaneously"; with shared groups this
    // would deadlock or cross-match. With private groups it completes and
    // each job's trace shows exactly its own collectives.
    let body = |comm: &mut Comm| {
        for _ in 0..5 {
            comm.allreduce(1024);
            comm.compute(0.001);
        }
        comm.barrier();
    };
    let outcomes = run_jobs(
        ClusterSpec::homogeneous(4),
        vec![
            Job::spmd("x", vec![0, 1], TraceConfig::on(), body),
            Job::spmd("y", vec![2, 3], TraceConfig::on(), body),
        ],
    );
    for o in &outcomes {
        let trace = o.trace.as_ref().unwrap();
        assert_eq!(trace.nranks(), 2);
        for p in &trace.procs {
            let allreds = p
                .mpi_events()
                .filter(|e| e.kind == OpKind::Allreduce)
                .count();
            assert_eq!(allreds, 5, "job {} rank {}", o.name, p.rank);
        }
    }
}

#[test]
fn traces_use_group_relative_ranks() {
    let outcomes = run_jobs(
        ClusterSpec::homogeneous(4),
        vec![
            Job::spmd("first", vec![0, 1], TraceConfig::off(), |c: &mut Comm| {
                c.compute(0.01);
            }),
            Job::spmd("second", vec![2, 3], TraceConfig::on(), |c: &mut Comm| {
                c.compute(0.02);
                if c.rank() == 0 {
                    c.send(1, 9, 64);
                } else {
                    c.recv(Some(0), Some(9));
                }
            }),
        ],
    );
    let trace = outcomes[1].trace.as_ref().unwrap();
    assert_eq!(trace.app, "second");
    assert_eq!(trace.procs[0].rank, 0);
    assert_eq!(trace.procs[1].rank, 1);
    let send = trace.procs[0].mpi_events().next().unwrap();
    assert_eq!(send.peer, Some(1), "peer recorded group-relative");
}

#[test]
fn jobs_of_different_lengths_release_resources() {
    // A short job and a long job co-located: the long job speeds up once
    // the short one exits, so it finishes well before 2x its solo time.
    let short = |comm: &mut Comm| comm.compute(0.5);
    let long = |comm: &mut Comm| comm.compute(4.0);
    // Single-CPU node makes contention total.
    let mut cluster = ClusterSpec::homogeneous(1);
    cluster.nodes[0].cpus = 1;
    let outcomes = run_jobs(
        cluster,
        vec![
            Job::spmd("short", vec![0], TraceConfig::off(), short),
            Job::spmd("long", vec![0], TraceConfig::off(), long),
        ],
    );
    // Short job: shares CPU until 1.0 s (0.5 work at half speed).
    assert!(
        (outcomes[0].total_secs - 1.0).abs() < 1e-6,
        "{}",
        outcomes[0].total_secs
    );
    // Long job: 0.5 work done by t=1.0, then full speed for the rest:
    // 1.0 + 3.5 = 4.5 s.
    assert!(
        (outcomes[1].total_secs - 4.5).abs() < 1e-6,
        "{}",
        outcomes[1].total_secs
    );
}

#[test]
#[should_panic(expected = "not a member of group")]
fn foreign_group_is_rejected() {
    use pskel_sim::{Placement, Simulation};
    let c = ClusterSpec::homogeneous(2);
    Simulation::new(c, Placement::round_robin(2, 2)).run(|ctx| {
        // Rank 1 claims a group it does not belong to.
        if ctx.rank() == 1 {
            let _comm = Comm::with_group(ctx, None, vec![0]);
        }
    });
}
