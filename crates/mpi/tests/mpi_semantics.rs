//! Integration tests for the MPI layer: collective algorithms, tracing
//! fidelity, and the run harness.

use pskel_mpi::{run_mpi, Comm, TraceConfig};
use pskel_sim::{ClusterSpec, Placement, THROTTLED_10MBPS};
use pskel_trace::OpKind;

fn run(
    n: usize,
    cluster: ClusterSpec,
    trace: TraceConfig,
    f: impl Fn(&mut Comm) + Send + Sync + 'static,
) -> pskel_mpi::MpiRunOutcome {
    let placement = Placement::round_robin(n, cluster.len());
    run_mpi(cluster, placement, "test", trace, f)
}

#[test]
fn barrier_synchronizes_unequal_ranks() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        comm.compute(0.1 * (comm.rank() + 1) as f64);
        comm.barrier();
        // After the barrier everyone has passed the slowest rank's 0.4s.
        assert!(comm.now().as_secs_f64() >= 0.4);
    });
    assert!(out.total_secs() >= 0.4 && out.total_secs() < 0.45);
}

#[test]
fn bcast_from_each_root() {
    for root in 0..4 {
        let out = run(
            4,
            ClusterSpec::homogeneous(4),
            TraceConfig::off(),
            move |comm| {
                comm.bcast(root, 10_000);
            },
        );
        let t = out.total_secs();
        // Binomial tree over 4 ranks: 2 sequential rounds of ~(55us + 80us).
        assert!(t > 1e-4 && t < 2e-3, "root {root}: bcast took {t}");
    }
}

#[test]
fn allreduce_scales_with_log_rounds() {
    let small = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        comm.allreduce(8);
    })
    .total_secs();
    // 2 recursive-doubling rounds of one small-message exchange each.
    assert!(small > 1e-4 && small < 1e-3, "allreduce(8B) took {small}");
}

#[test]
fn allreduce_works_for_non_power_of_two() {
    let out = run(3, ClusterSpec::homogeneous(3), TraceConfig::off(), |comm| {
        comm.allreduce(64);
        comm.compute(0.01);
        comm.allreduce(64);
    });
    assert!(out.total_secs() > 0.01);
}

#[test]
fn alltoall_moves_pairwise_blocks() {
    // 4 ranks, 1.25 MB per pair: each NIC must carry 3 blocks in and
    // 3 out; at 125 MB/s that is >= 30 ms.
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        comm.alltoall(1_250_000);
    });
    let t = out.total_secs();
    assert!((0.029..0.1).contains(&t), "alltoall took {t}");
}

#[test]
fn allgather_ring_time() {
    // Ring: 3 steps, each moving 1.25 MB per link -> ~3 * 10 ms.
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        comm.allgather(1_250_000);
    });
    let t = out.total_secs();
    assert!((0.029..0.08).contains(&t), "allgather took {t}");
}

#[test]
fn gather_and_scatter_complete() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        comm.gather(0, 1000);
        comm.scatter(0, 1000);
        comm.barrier();
    });
    assert!(out.total_secs() > 0.0);
}

#[test]
fn alltoallv_with_skewed_counts() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        let me = comm.rank() as u64;
        // Rank r sends (r+1)*1000 bytes to everyone.
        let counts = vec![(me + 1) * 1000; 4];
        comm.alltoallv(&counts);
    });
    assert!(out.total_secs() > 0.0);
}

#[test]
fn allgatherv_with_uneven_counts() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), |comm| {
        comm.allgatherv(&[1000, 2000, 3000, 4000]);
    });
    assert!(out.total_secs() > 0.0);
}

#[test]
fn throttled_link_dominates_collective_time() {
    // 1.25 MB alltoall with node 0's link at 10 Mb/s: node 0 must move
    // 3 blocks in and 3 out through a 1.25 MB/s pipe -> ~3+3 s lower bound
    // (in/out can overlap, so >= 3 s).
    let c = ClusterSpec::homogeneous(4).with_link_cap(0, THROTTLED_10MBPS);
    let out = run(4, c, TraceConfig::off(), |comm| {
        comm.alltoall(1_250_000);
    });
    let t = out.total_secs();
    assert!(t >= 3.0, "throttled alltoall took only {t}");
}

#[test]
fn trace_records_compute_gaps_and_events() {
    let out = run(2, ClusterSpec::homogeneous(2), TraceConfig::on(), |comm| {
        comm.compute(0.5);
        if comm.rank() == 0 {
            comm.send(1, 7, 4096);
        } else {
            comm.recv(Some(0), Some(7));
        }
        comm.compute(0.25);
        comm.barrier();
    });
    let trace = out.trace.expect("trace requested");
    assert_eq!(trace.nranks(), 2);

    let p0 = &trace.procs[0];
    let kinds: Vec<OpKind> = p0.mpi_events().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![OpKind::Send, OpKind::Barrier]);

    // Compute time on the dedicated testbed equals demanded CPU time.
    let compute = p0.compute_time().as_secs_f64();
    assert!((compute - 0.75).abs() < 1e-6, "rank 0 compute {compute}");

    let send = p0.mpi_events().next().unwrap();
    assert_eq!(send.peer, Some(1));
    assert_eq!(send.tag, Some(7));
    assert_eq!(send.bytes, 4096);
    assert!(send.end > send.start);
}

#[test]
fn trace_pairs_nonblocking_ops_with_waits_via_slots() {
    let out = run(2, ClusterSpec::homogeneous(2), TraceConfig::on(), |comm| {
        let peer = 1 - comm.rank();
        let s = comm.isend(peer, 0, 1000);
        let r = comm.irecv(Some(peer), Some(0), 1000);
        comm.compute(0.01);
        comm.wait(s);
        comm.wait(r);
    });
    let trace = out.trace.unwrap();
    let p = &trace.procs[0];
    let evs: Vec<_> = p.mpi_events().collect();
    assert_eq!(evs[0].kind, OpKind::Isend);
    assert_eq!(evs[1].kind, OpKind::Irecv);
    assert_eq!(evs[2].kind, OpKind::Wait);
    assert_eq!(evs[3].kind, OpKind::Wait);
    assert_eq!(evs[0].slots, evs[2].slots, "isend slot matches first wait");
    assert_eq!(evs[1].slots, evs[3].slots, "irecv slot matches second wait");
    assert_ne!(evs[0].slots, evs[1].slots);
}

#[test]
fn waitall_records_all_slots() {
    let out = run(2, ClusterSpec::homogeneous(2), TraceConfig::on(), |comm| {
        let peer = 1 - comm.rank();
        let s = comm.isend(peer, 0, 100);
        let r = comm.irecv(Some(peer), Some(0), 100);
        comm.waitall(vec![s, r]);
    });
    let trace = out.trace.unwrap();
    let p = &trace.procs[0];
    let wa = p.mpi_events().find(|e| e.kind == OpKind::Waitall).unwrap();
    assert_eq!(wa.slots.len(), 2);
}

#[test]
fn collectives_trace_as_single_events() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::on(), |comm| {
        comm.allreduce(8);
        comm.alltoall(1000);
        comm.bcast(2, 500);
    });
    let trace = out.trace.unwrap();
    for p in &trace.procs {
        let kinds: Vec<OpKind> = p.mpi_events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![OpKind::Allreduce, OpKind::Alltoall, OpKind::Bcast],
            "rank {} trace shows exactly the interface calls",
            p.rank
        );
        let bcast = p.mpi_events().find(|e| e.kind == OpKind::Bcast).unwrap();
        assert_eq!(bcast.peer, Some(2), "root recorded");
    }
}

#[test]
fn tracing_does_not_perturb_virtual_time() {
    let body = |comm: &mut Comm| {
        comm.compute(0.1);
        comm.allreduce(4096);
        if comm.rank() == 0 {
            comm.send(1, 0, 200_000);
        } else if comm.rank() == 1 {
            comm.recv(Some(0), Some(0));
        }
        comm.barrier();
    };
    let untraced = run(4, ClusterSpec::homogeneous(4), TraceConfig::off(), body);
    let traced = run(4, ClusterSpec::homogeneous(4), TraceConfig::on(), body);
    assert_eq!(
        untraced.report.total_time, traced.report.total_time,
        "zero-overhead tracing must not change timing"
    );
}

#[test]
fn tracing_overhead_knob_adds_time() {
    let body = |comm: &mut Comm| {
        for _ in 0..10 {
            comm.allreduce(8);
        }
    };
    let free = run(4, ClusterSpec::homogeneous(4), TraceConfig::on(), body);
    let costly = run(
        4,
        ClusterSpec::homogeneous(4),
        TraceConfig {
            enabled: true,
            overhead_secs: 1e-4,
        },
        body,
    );
    let a = free.total_secs();
    let b = costly.total_secs();
    assert!(b > a, "overhead {b} should exceed free {a}");
    // 10 events/rank at 100us, serialized rounds: at least 1 ms extra.
    assert!(b - a >= 1e-3);
}

#[test]
fn sendrecv_exchanges_in_one_step() {
    let out = run(2, ClusterSpec::homogeneous(2), TraceConfig::off(), |comm| {
        let peer = 1 - comm.rank();
        let info = comm.sendrecv(peer, 5, 10_000, Some(peer), Some(5));
        assert_eq!(info.bytes, 10_000);
        assert_eq!(info.src, peer);
    });
    // Full exchange in about one wire time, not two.
    assert!(out.total_secs() < 1e-3);
}

#[test]
fn trace_total_time_matches_report() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::on(), |comm| {
        comm.compute(0.2);
        comm.barrier();
    });
    let trace = out.trace.unwrap();
    assert_eq!(trace.total_time, out.report.total_time);
}

#[test]
#[should_panic(expected = "never waited on")]
fn leaked_nonblocking_request_is_detected() {
    run(2, ClusterSpec::homogeneous(2), TraceConfig::off(), |comm| {
        let peer = 1 - comm.rank();
        // isend is eager-buffered so it completes, but we never wait on it.
        let _leaked = comm.isend(peer, 0, 10);
        comm.recv(Some(peer), Some(0));
    });
}

#[test]
fn two_ranks_per_node_collectives_work() {
    // 8 ranks on 4 nodes exercises intra-node paths inside collectives.
    let c = ClusterSpec::homogeneous(4);
    let placement = Placement::blocked(8, 4);
    let out = run_mpi(c, placement, "packed", TraceConfig::off(), |comm| {
        comm.allreduce(4096);
        comm.alltoall(10_000);
        comm.barrier();
    });
    assert!(out.total_secs() > 0.0);
}

#[test]
fn reduce_scatter_completes_for_pow2_and_not() {
    for n in [2usize, 3, 4] {
        let out = run(n, ClusterSpec::homogeneous(n), TraceConfig::off(), |comm| {
            comm.reduce_scatter(100_000);
            comm.compute(0.001);
            comm.reduce_scatter(64);
        });
        assert!(out.total_secs() > 0.001, "n={n}");
    }
}

#[test]
fn scan_time_grows_linearly_with_ranks() {
    let t = |n: usize| {
        run(n, ClusterSpec::homogeneous(n), TraceConfig::off(), |comm| {
            comm.scan(64);
        })
        .total_secs()
    };
    let t2 = t(2);
    let t6 = t(6);
    // Linear chain: 5 hops vs 1 hop.
    assert!(t6 > 3.0 * t2, "scan(6)={t6} vs scan(2)={t2}");
}

#[test]
fn new_collectives_trace_with_their_kind() {
    let out = run(4, ClusterSpec::homogeneous(4), TraceConfig::on(), |comm| {
        comm.reduce_scatter(4096);
        comm.scan(8);
    });
    let trace = out.trace.unwrap();
    for p in &trace.procs {
        let kinds: Vec<OpKind> = p.mpi_events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![OpKind::ReduceScatter, OpKind::Scan]);
    }
}
