//! Logical request-slot allocation.
//!
//! Traces pair each nonblocking initiation (`MPI_Isend`/`MPI_Irecv`) with
//! its completion (`MPI_Wait`/`MPI_Waitall`) through a small integer *slot*:
//! the initiation takes the lowest free slot and the wait releases it. Slot
//! numbers are deterministic, survive clustering (they are part of the event
//! identity), and let the skeleton executor rebuild request handles.

/// Allocates the lowest free slot number.
#[derive(Clone, Debug, Default)]
pub struct SlotAllocator {
    in_use: Vec<bool>,
}

impl SlotAllocator {
    pub fn new() -> SlotAllocator {
        SlotAllocator::default()
    }

    /// Claim the lowest free slot.
    pub fn alloc(&mut self) -> u32 {
        for (i, used) in self.in_use.iter_mut().enumerate() {
            if !*used {
                *used = true;
                return i as u32;
            }
        }
        self.in_use.push(true);
        (self.in_use.len() - 1) as u32
    }

    /// Release a slot. Panics on double free or a never-allocated slot.
    pub fn free(&mut self, slot: u32) {
        let i = slot as usize;
        assert!(
            i < self.in_use.len() && self.in_use[i],
            "freeing slot {slot} which is not in use"
        );
        self.in_use[i] = false;
    }

    /// Number of slots currently claimed.
    pub fn active(&self) -> usize {
        self.in_use.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut s = SlotAllocator::new();
        assert_eq!(s.alloc(), 0);
        assert_eq!(s.alloc(), 1);
        assert_eq!(s.alloc(), 2);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut s = SlotAllocator::new();
        let a = s.alloc();
        let b = s.alloc();
        s.free(a);
        assert_eq!(s.alloc(), a, "lowest freed slot is recycled");
        s.free(b);
        assert_eq!(s.active(), 1);
    }

    #[test]
    #[should_panic(expected = "not in use")]
    fn double_free_panics() {
        let mut s = SlotAllocator::new();
        let a = s.alloc();
        s.free(a);
        s.free(a);
    }

    #[test]
    fn interleaved_pattern_is_deterministic() {
        let mut s = SlotAllocator::new();
        let a = s.alloc(); // 0
        let b = s.alloc(); // 1
        let c = s.alloc(); // 2
        s.free(b);
        let d = s.alloc(); // 1 again
        assert_eq!((a, b, c, d), (0, 1, 2, 1));
    }
}
