//! # pskel-mpi — MPI-like message passing with built-in tracing
//!
//! The subset of MPI the NAS benchmarks exercise, implemented on the
//! deterministic cluster simulator in `pskel-sim`:
//!
//! * blocking and nonblocking point-to-point ([`Comm::send`],
//!   [`Comm::isend`], [`Comm::recv`], [`Comm::irecv`], [`Comm::wait`],
//!   [`Comm::waitall`], [`Comm::sendrecv`]);
//! * collectives with MPICH-style algorithms (binomial bcast/reduce,
//!   recursive-doubling allreduce, ring allgather, pairwise alltoall);
//! * a PMPI-style profiling shim that records execution traces with no
//!   application changes, as in §3.1 of the paper.
//!
//! Run programs with [`run_mpi`] (SPMD) or [`run_mpi_fns`] (one program per
//! rank, used by the skeleton executor). Deterministic replays can instead
//! be lowered to [`pskel_sim::RankScript`]s through [`ScriptBuilder`] and
//! run on the simulator's single-threaded fast path with
//! [`run_mpi_scripts`]; the [`MpiOps`] trait lets one program drive either
//! path.

pub mod collectives;
pub mod comm;
pub mod harness;
pub mod script;
pub mod slots;

pub use comm::{Comm, CommReq, Tracer, COLL_TAG_BASE};
pub use harness::{
    run_jobs, run_mpi, run_mpi_fns, run_mpi_scripts, try_run_mpi_fns, try_run_mpi_scripts,
    try_run_mpi_scripts_threads, Job, JobOutcome, MpiProgram, MpiRunOutcome, TraceConfig,
};
pub use script::{MpiOps, ScriptBuilder, TMP_SLOT_BASE};
pub use slots::SlotAllocator;
