//! Lowering MPI-level programs to [`RankScript`]s for the simulator's
//! single-threaded fast path.
//!
//! Two pieces live here:
//!
//! * [`MpiOps`] — the abstract MPI call surface. A program written against
//!   it can *execute* through a live [`Comm`] (threaded path) or *record*
//!   into a script through [`ScriptBuilder`] (fast path). Because both
//!   implementations charge the identical software overhead and the
//!   collectives expand through the same channel-generic algorithms in
//!   `collectives.rs`, the two lowerings generate the same request stream
//!   and therefore bit-identical [`pskel_sim::SimReport`]s.
//!
//! * [`ScriptBuilder`] — the recorder itself, with a loop-building API
//!   (`begin_loop`/`end_loop`) so compressed signature loop nests stay
//!   compressed in the emitted script, plus explicit-slot variants of the
//!   nonblocking calls so skeleton programs keep their original request
//!   slot names.
//!
//! Scripts operate at world-rank level (the builder assumes the identity
//! communicator, as produced by [`Comm::new`]); group-split workloads
//! ([`crate::harness::run_jobs`]) stay on the threaded path.

use crate::collectives::{
    alg_allreduce, alg_alltoall, alg_barrier, alg_bcast, alg_gather, alg_reduce,
    alg_reduce_scatter, alg_ring_allgather, alg_scan, alg_scatter, CollChannel,
};
use crate::comm::{Comm, CommReq, COLL_TAG_BASE};
use pskel_sim::{RankScript, ScriptNode, ScriptOp, ScriptTag};

/// Request slots at or above this value are reserved for builder-generated
/// temporaries (collective internals, [`MpiOps::isend`]/[`MpiOps::irecv`]
/// handles); explicit slots passed to [`ScriptBuilder::isend_slot`] and
/// friends must stay below it.
pub const TMP_SLOT_BASE: u32 = 1 << 30;

/// The MPI call surface shared by live execution and script recording.
///
/// Mirrors the subset of [`Comm`] the replay producers need. Return
/// values carry no data (replays never branch on message contents), so
/// receive info is dropped at this level.
pub trait MpiOps {
    /// Handle to a pending nonblocking operation.
    type Req;

    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    fn compute(&mut self, secs: f64);
    fn send(&mut self, dst: usize, tag: u64, bytes: u64);
    fn recv(&mut self, src: Option<usize>, tag: Option<u64>);
    fn isend(&mut self, dst: usize, tag: u64, bytes: u64) -> Self::Req;
    fn irecv(&mut self, src: Option<usize>, tag: Option<u64>, bytes_hint: u64) -> Self::Req;
    fn wait(&mut self, req: Self::Req);
    fn waitall(&mut self, reqs: Vec<Self::Req>);
    fn barrier(&mut self);
    fn bcast(&mut self, root: usize, bytes: u64);
    fn reduce(&mut self, root: usize, bytes: u64);
    fn allreduce(&mut self, bytes: u64);
    fn allgather(&mut self, bytes: u64);
    fn alltoall(&mut self, bytes: u64);
    fn reduce_scatter(&mut self, bytes: u64);
    fn scan(&mut self, bytes: u64);
    fn gather(&mut self, root: usize, bytes: u64);
    fn scatter(&mut self, root: usize, bytes: u64);
}

impl MpiOps for Comm<'_> {
    type Req = CommReq;

    fn rank(&self) -> usize {
        Comm::rank(self)
    }

    fn size(&self) -> usize {
        Comm::size(self)
    }

    fn compute(&mut self, secs: f64) {
        Comm::compute(self, secs);
    }

    fn send(&mut self, dst: usize, tag: u64, bytes: u64) {
        Comm::send(self, dst, tag, bytes);
    }

    fn recv(&mut self, src: Option<usize>, tag: Option<u64>) {
        Comm::recv(self, src, tag);
    }

    fn isend(&mut self, dst: usize, tag: u64, bytes: u64) -> CommReq {
        Comm::isend(self, dst, tag, bytes)
    }

    fn irecv(&mut self, src: Option<usize>, tag: Option<u64>, bytes_hint: u64) -> CommReq {
        Comm::irecv(self, src, tag, bytes_hint)
    }

    fn wait(&mut self, req: CommReq) {
        Comm::wait(self, req);
    }

    fn waitall(&mut self, reqs: Vec<CommReq>) {
        Comm::waitall(self, reqs);
    }

    fn barrier(&mut self) {
        Comm::barrier(self);
    }

    fn bcast(&mut self, root: usize, bytes: u64) {
        Comm::bcast(self, root, bytes);
    }

    fn reduce(&mut self, root: usize, bytes: u64) {
        Comm::reduce(self, root, bytes);
    }

    fn allreduce(&mut self, bytes: u64) {
        Comm::allreduce(self, bytes);
    }

    fn allgather(&mut self, bytes: u64) {
        Comm::allgather(self, bytes);
    }

    fn alltoall(&mut self, bytes: u64) {
        Comm::alltoall(self, bytes);
    }

    fn reduce_scatter(&mut self, bytes: u64) {
        Comm::reduce_scatter(self, bytes);
    }

    fn scan(&mut self, bytes: u64) {
        Comm::scan(self, bytes);
    }

    fn gather(&mut self, root: usize, bytes: u64) {
        Comm::gather(self, root, bytes);
    }

    fn scatter(&mut self, root: usize, bytes: u64) {
        Comm::scatter(self, root, bytes);
    }
}

/// Records one rank's MPI-level behaviour as a [`RankScript`].
///
/// The emitted script reproduces exactly what the same calls would do
/// through a live [`Comm`]: every MPI call charges the per-call software
/// overhead first (as `Comm::begin`/`raw_*` do), an empty `waitall` emits
/// nothing (as [`Comm::waitall`] returns early), and collectives expand
/// through the identical channel-generic algorithms, tagged with
/// [`ScriptTag::Coll`] so the execution-time tag sequence matches
/// [`Comm::fresh_coll_tag`].
pub struct ScriptBuilder {
    rank: usize,
    size: usize,
    sw_overhead_secs: f64,
    jitter_seed: u64,
    /// Stack of node lists: the bottom frame is the script root, one
    /// frame per open `begin_loop`.
    frames: Vec<Vec<ScriptNode>>,
    /// Loop trip counts matching the open frames above the root.
    counts: Vec<u64>,
    next_tmp: u32,
}

impl ScriptBuilder {
    /// Start a script for `rank` of `size`. `sw_overhead_secs` must match
    /// the cluster's [`pskel_sim::NetSpec::sw_overhead`] for the lowering
    /// to be execution-equivalent.
    pub fn new(rank: usize, size: usize, sw_overhead_secs: f64) -> ScriptBuilder {
        assert!(
            rank < size,
            "rank {rank} outside communicator of size {size}"
        );
        ScriptBuilder {
            rank,
            size,
            sw_overhead_secs,
            jitter_seed: 0,
            frames: vec![Vec::new()],
            counts: Vec::new(),
            next_tmp: TMP_SLOT_BASE,
        }
    }

    /// Seed of the deterministic stream behind [`ScriptOp::ComputeJitter`].
    pub fn set_jitter_seed(&mut self, seed: u64) {
        self.jitter_seed = seed;
    }

    fn push(&mut self, op: ScriptOp) {
        self.frames
            .last_mut()
            .expect("builder frame stack empty")
            .push(ScriptNode::Op(op));
    }

    /// Charge the per-call software overhead, as `Comm::begin` and the
    /// `raw_*` helpers do inside every MPI call.
    fn charge(&mut self) {
        if self.sw_overhead_secs > 0.0 {
            self.push(ScriptOp::Compute {
                secs: self.sw_overhead_secs,
            });
        }
    }

    fn fresh_tmp(&mut self) -> u32 {
        let slot = self.next_tmp;
        self.next_tmp += 1;
        slot
    }

    fn check_explicit_slot(slot: u32) {
        assert!(
            slot < TMP_SLOT_BASE,
            "explicit request slot {slot} collides with builder temporaries"
        );
    }

    // ---- loop structure ---------------------------------------------------

    /// Open a counted loop; every op until the matching [`end_loop`] call
    /// is recorded once and replayed `count` times.
    ///
    /// [`end_loop`]: ScriptBuilder::end_loop
    pub fn begin_loop(&mut self, count: u64) {
        self.frames.push(Vec::new());
        self.counts.push(count);
    }

    /// Close the innermost open loop.
    pub fn end_loop(&mut self) {
        let body = self.frames.pop().expect("end_loop without begin_loop");
        let count = self.counts.pop().expect("end_loop without begin_loop");
        assert!(!self.frames.is_empty(), "end_loop closed the script root");
        self.frames
            .last_mut()
            .unwrap()
            .push(ScriptNode::Loop { count, body });
    }

    // ---- local time -------------------------------------------------------

    /// Compute with a normally-distributed duration (see
    /// [`ScriptOp::ComputeJitter`]); falls back to a plain compute when
    /// `std` is not positive.
    pub fn compute_jitter(&mut self, mean: f64, std: f64) {
        if std > 0.0 {
            self.push(ScriptOp::ComputeJitter { mean, std });
        } else {
            self.push(ScriptOp::Compute { secs: mean });
        }
    }

    /// Idle for `secs` of virtual wall time.
    pub fn sleep(&mut self, secs: f64) {
        self.push(ScriptOp::Sleep { secs });
    }

    // ---- explicit-slot nonblocking calls (skeleton programs) --------------

    /// Nonblocking send bound to the caller-chosen `slot` (a skeleton's
    /// own request slot name).
    pub fn isend_slot(&mut self, dst: usize, tag: u64, bytes: u64, slot: u32) {
        assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective tag space"
        );
        Self::check_explicit_slot(slot);
        self.charge();
        self.push(ScriptOp::Isend {
            dst,
            tag: ScriptTag::Lit(tag),
            bytes,
            slot,
        });
    }

    /// Nonblocking receive bound to the caller-chosen `slot`.
    pub fn irecv_slot(&mut self, src: Option<usize>, tag: Option<u64>, slot: u32) {
        Self::check_explicit_slot(slot);
        self.charge();
        self.push(ScriptOp::Irecv {
            src,
            tag: tag.map(ScriptTag::Lit),
            slot,
        });
    }

    /// Complete the operation in `slot`.
    pub fn wait_slot(&mut self, slot: u32) {
        self.charge();
        self.push(ScriptOp::Wait { slot });
    }

    /// Complete every listed operation. Emits nothing when empty, exactly
    /// as [`Comm::waitall`] returns before charging overhead.
    pub fn waitall_slots(&mut self, slots: Vec<u32>) {
        if slots.is_empty() {
            return;
        }
        self.charge();
        self.push(ScriptOp::WaitAll { slots });
    }

    /// Probe the operation in `slot` (MPI_Test). Scripts only support
    /// testing operations whose completion is statically known (eager
    /// sends), which is all the skeleton generator emits.
    pub fn test_slot(&mut self, slot: u32) {
        self.charge();
        self.push(ScriptOp::Test { slot });
    }

    /// Seal the script.
    pub fn finish(self) -> RankScript {
        assert!(
            self.counts.is_empty() && self.frames.len() == 1,
            "script finished with {} unclosed loops",
            self.counts.len()
        );
        let mut frames = self.frames;
        RankScript {
            nodes: frames.pop().unwrap(),
            coll_tag_base: COLL_TAG_BASE,
            jitter_seed: self.jitter_seed,
        }
    }
}

/// The recording [`CollChannel`]: emits the collective's messages as
/// script ops carrying [`ScriptTag::Coll`], matching what [`CommColl`]
/// executes through `raw_send`/`raw_recv`/`raw_sendrecv` leg for leg.
///
/// [`CommColl`]: crate::collectives
struct ScriptColl<'b> {
    b: &'b mut ScriptBuilder,
}

impl CollChannel for ScriptColl<'_> {
    fn size(&self) -> usize {
        self.b.size
    }

    fn rank(&self) -> usize {
        self.b.rank
    }

    fn cc_send(&mut self, dst: usize, bytes: u64) {
        self.b.charge();
        self.b.push(ScriptOp::Send {
            dst,
            tag: ScriptTag::Coll,
            bytes,
        });
    }

    fn cc_recv(&mut self, src: usize) {
        self.b.charge();
        self.b.push(ScriptOp::Recv {
            src: Some(src),
            tag: Some(ScriptTag::Coll),
        });
    }

    fn cc_sendrecv(&mut self, dst: usize, send_bytes: u64, src: usize) {
        // Mirrors Comm::raw_sendrecv: one overhead charge, then
        // isend + irecv + waitall as a single blocking exchange.
        self.b.charge();
        let s = self.b.fresh_tmp();
        let r = self.b.fresh_tmp();
        self.b.push(ScriptOp::Isend {
            dst,
            tag: ScriptTag::Coll,
            bytes: send_bytes,
            slot: s,
        });
        self.b.push(ScriptOp::Irecv {
            src: Some(src),
            tag: Some(ScriptTag::Coll),
            slot: r,
        });
        self.b.push(ScriptOp::WaitAll { slots: vec![s, r] });
    }
}

impl ScriptBuilder {
    /// Open a collective: charge the call overhead and advance the
    /// execution-time collective tag sequence, as
    /// [`Comm::begin_collective`] + `fresh_coll_tag` do.
    fn begin_collective(&mut self) -> ScriptColl<'_> {
        self.charge();
        self.push(ScriptOp::FreshCollTag);
        ScriptColl { b: self }
    }
}

impl MpiOps for ScriptBuilder {
    type Req = u32;

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn compute(&mut self, secs: f64) {
        self.push(ScriptOp::Compute { secs });
    }

    fn send(&mut self, dst: usize, tag: u64, bytes: u64) {
        assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective tag space"
        );
        self.charge();
        self.push(ScriptOp::Send {
            dst,
            tag: ScriptTag::Lit(tag),
            bytes,
        });
    }

    fn recv(&mut self, src: Option<usize>, tag: Option<u64>) {
        self.charge();
        self.push(ScriptOp::Recv {
            src,
            tag: tag.map(ScriptTag::Lit),
        });
    }

    fn isend(&mut self, dst: usize, tag: u64, bytes: u64) -> u32 {
        assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective tag space"
        );
        self.charge();
        let slot = self.fresh_tmp();
        self.push(ScriptOp::Isend {
            dst,
            tag: ScriptTag::Lit(tag),
            bytes,
            slot,
        });
        slot
    }

    fn irecv(&mut self, src: Option<usize>, tag: Option<u64>, _bytes_hint: u64) -> u32 {
        self.charge();
        let slot = self.fresh_tmp();
        self.push(ScriptOp::Irecv {
            src,
            tag: tag.map(ScriptTag::Lit),
            slot,
        });
        slot
    }

    fn wait(&mut self, req: u32) {
        self.charge();
        self.push(ScriptOp::Wait { slot: req });
    }

    fn waitall(&mut self, reqs: Vec<u32>) {
        self.waitall_slots(reqs);
    }

    fn barrier(&mut self) {
        alg_barrier(&mut self.begin_collective());
    }

    fn bcast(&mut self, root: usize, bytes: u64) {
        alg_bcast(&mut self.begin_collective(), root, bytes);
    }

    fn reduce(&mut self, root: usize, bytes: u64) {
        alg_reduce(&mut self.begin_collective(), root, bytes);
    }

    fn allreduce(&mut self, bytes: u64) {
        alg_allreduce(&mut self.begin_collective(), bytes);
    }

    fn allgather(&mut self, bytes: u64) {
        let counts = vec![bytes; self.size];
        alg_ring_allgather(&mut self.begin_collective(), &counts);
    }

    fn alltoall(&mut self, bytes: u64) {
        let counts = vec![bytes; self.size];
        alg_alltoall(&mut self.begin_collective(), &counts);
    }

    fn reduce_scatter(&mut self, bytes: u64) {
        alg_reduce_scatter(&mut self.begin_collective(), bytes);
    }

    fn scan(&mut self, bytes: u64) {
        alg_scan(&mut self.begin_collective(), bytes);
    }

    fn gather(&mut self, root: usize, bytes: u64) {
        alg_gather(&mut self.begin_collective(), root, bytes);
    }

    fn scatter(&mut self, root: usize, bytes: u64) {
        alg_scatter(&mut self.begin_collective(), root, bytes);
    }
}

/// Allgatherv and alltoallv take per-rank counts and so live outside
/// [`MpiOps`] (replays lower them to their balanced forms); the builder
/// still supports them for completeness.
impl ScriptBuilder {
    pub fn allgatherv(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.size,
            "allgatherv needs one count per rank"
        );
        alg_ring_allgather(&mut self.begin_collective(), counts);
    }

    pub fn alltoallv(&mut self, send_counts: &[u64]) {
        assert_eq!(
            send_counts.len(),
            self.size,
            "alltoallv needs one count per rank"
        );
        alg_alltoall(&mut self.begin_collective(), send_counts);
    }
}
