//! Entry points for running MPI-style applications on the simulator, with
//! or without tracing.

use crate::comm::{Comm, Tracer};
use parking_lot::Mutex;
use pskel_sim::engine::RankProgram;
use pskel_sim::{ClusterSpec, Placement, RankScript, SimCtx, SimError, SimReport, Simulation};

/// A boxed per-rank MPI program, as consumed by [`run_mpi_fns`].
pub type MpiProgram = Box<dyn FnOnce(&mut Comm) + Send>;
use pskel_trace::{AppTrace, ProcessTrace};
use std::sync::Arc;

/// Result of one application run.
#[derive(Clone, Debug)]
pub struct MpiRunOutcome {
    pub report: SimReport,
    /// Present when the run was traced.
    pub trace: Option<AppTrace>,
}

impl MpiRunOutcome {
    /// Total virtual execution time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.report.total_time.as_secs_f64()
    }
}

/// Tracing configuration for a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceConfig {
    pub enabled: bool,
    /// Artificial CPU cost charged per traced MPI event (to measure tracing
    /// overhead; the paper reports < 1% — see the `trace_overhead` bench).
    pub overhead_secs: f64,
}

impl TraceConfig {
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            overhead_secs: 0.0,
        }
    }

    pub fn off() -> TraceConfig {
        TraceConfig::default()
    }
}

/// Run the same MPI program on every rank (SPMD).
pub fn run_mpi<F>(
    cluster: ClusterSpec,
    placement: Placement,
    app_name: &str,
    trace: TraceConfig,
    f: F,
) -> MpiRunOutcome
where
    F: Fn(&mut Comm) + Send + Sync + 'static,
{
    let n = placement.n_ranks();
    let f = Arc::new(f);
    let programs: Vec<MpiProgram> = (0..n)
        .map(|_| {
            let f = f.clone();
            Box::new(move |comm: &mut Comm| f(comm)) as MpiProgram
        })
        .collect();
    run_mpi_fns(cluster, placement, app_name, trace, programs)
}

/// One application in a co-scheduled workload (see [`run_jobs`]).
pub struct Job {
    /// Display name (also the trace's app name if traced).
    pub name: String,
    /// Node assignment for each of this job's ranks.
    pub placement: Vec<usize>,
    /// One program per rank of this job.
    pub programs: Vec<MpiProgram>,
    pub trace: TraceConfig,
}

impl Job {
    /// An SPMD job: the same program on every rank.
    pub fn spmd<F>(name: &str, placement: Vec<usize>, trace: TraceConfig, f: F) -> Job
    where
        F: Fn(&mut Comm) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let programs = (0..placement.len())
            .map(|_| {
                let f = f.clone();
                Box::new(move |comm: &mut Comm| f(comm)) as MpiProgram
            })
            .collect();
        Job {
            name: name.into(),
            placement,
            programs,
            trace,
        }
    }
}

/// Result of one job in a co-scheduled run.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub name: String,
    /// Virtual time at which this job's last rank finished, seconds.
    pub total_secs: f64,
    pub trace: Option<AppTrace>,
}

/// Run several applications *concurrently* on one simulated cluster —
/// each with its own private communicator group, contending for the same
/// CPUs and links. This realizes the paper's motivating situation (grid
/// nodes shared between applications) with real applications as the
/// competing load, beyond the synthetic competing processes of §4.2.
pub fn run_jobs(cluster: ClusterSpec, jobs: Vec<Job>) -> Vec<JobOutcome> {
    assert!(!jobs.is_empty(), "need at least one job");
    // Assign contiguous world-rank ranges per job.
    let mut world_placement = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for job in &jobs {
        assert_eq!(
            job.programs.len(),
            job.placement.len(),
            "job {}: one program per rank required",
            job.name
        );
        let base = world_placement.len();
        groups.push((base..base + job.placement.len()).collect());
        world_placement.extend_from_slice(&job.placement);
    }
    let n_world = world_placement.len();

    let traces: Arc<Mutex<Vec<Option<ProcessTrace>>>> =
        Arc::new(Mutex::new((0..n_world).map(|_| None).collect()));
    let mut rank_programs: Vec<RankProgram> = Vec::with_capacity(n_world);
    let mut job_meta = Vec::new();
    for (job, group) in jobs.into_iter().zip(groups.clone()) {
        job_meta.push((job.name.clone(), job.trace.enabled, group.clone()));
        for program in job.programs {
            let group = group.clone();
            let trace = job.trace;
            let traces = traces.clone();
            rank_programs.push(Box::new(move |ctx: &mut SimCtx| {
                let tracer = trace.enabled.then(|| {
                    let mut t = Tracer::new();
                    t.overhead_secs = trace.overhead_secs;
                    t
                });
                let world_rank = ctx.rank();
                let mut comm = Comm::with_group(ctx, tracer, group);
                program(&mut comm);
                if let Some(pt) = comm.finish() {
                    traces.lock()[world_rank] = Some(pt);
                }
            }) as RankProgram);
        }
    }

    let report = Simulation::new(cluster, Placement(world_placement)).run_fns(rank_programs);
    let mut collected = Arc::try_unwrap(traces)
        .expect("trace collector still shared after run")
        .into_inner();

    job_meta
        .into_iter()
        .map(|(name, traced, group)| {
            let total = group
                .iter()
                .map(|&w| report.finish_times[w])
                .max()
                .unwrap()
                .as_secs_f64();
            let trace = if traced {
                let procs: Vec<ProcessTrace> = group
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| {
                        let mut pt = collected[w]
                            .take()
                            .unwrap_or_else(|| panic!("job {name}: rank {w} lost its trace"));
                        pt.rank = i; // group-relative in the job's trace
                        pt
                    })
                    .collect();
                Some(AppTrace::new(name.clone(), procs))
            } else {
                None
            };
            JobOutcome {
                name,
                total_secs: total,
                trace,
            }
        })
        .collect()
}

/// Run one program per rank (MPMD / generated skeletons).
///
/// Panics on simulation failure (deadlock, rank panic); use
/// [`try_run_mpi_fns`] to receive a typed [`SimError`] instead.
pub fn run_mpi_fns(
    cluster: ClusterSpec,
    placement: Placement,
    app_name: &str,
    trace: TraceConfig,
    programs: Vec<MpiProgram>,
) -> MpiRunOutcome {
    try_run_mpi_fns(cluster, placement, app_name, trace, programs).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_mpi_fns`]: simulation failures (deadlock, rank
/// panic) come back as a [`SimError`] rather than a panic.
pub fn try_run_mpi_fns(
    cluster: ClusterSpec,
    placement: Placement,
    app_name: &str,
    trace: TraceConfig,
    programs: Vec<MpiProgram>,
) -> Result<MpiRunOutcome, SimError> {
    let n = placement.n_ranks();
    assert_eq!(programs.len(), n, "need exactly one program per rank");
    let traces: Arc<Mutex<Vec<Option<ProcessTrace>>>> =
        Arc::new(Mutex::new((0..n).map(|_| None).collect()));

    let rank_programs: Vec<RankProgram> = programs
        .into_iter()
        .map(|program| {
            let traces = traces.clone();
            Box::new(move |ctx: &mut SimCtx| {
                let tracer = trace.enabled.then(|| {
                    let mut t = Tracer::new();
                    t.overhead_secs = trace.overhead_secs;
                    t
                });
                let rank = ctx.rank();
                let mut comm = Comm::new(ctx, tracer);
                program(&mut comm);
                if let Some(pt) = comm.finish() {
                    traces.lock()[rank] = Some(pt);
                }
            }) as RankProgram
        })
        .collect();

    let report = Simulation::new(cluster, placement).try_run_fns(rank_programs)?;

    let trace = if trace.enabled {
        let procs: Vec<ProcessTrace> = Arc::try_unwrap(traces)
            .expect("trace collector still shared after run")
            .into_inner()
            .into_iter()
            .enumerate()
            .map(|(r, t)| t.unwrap_or_else(|| panic!("rank {r} produced no trace")))
            .collect();
        Some(AppTrace::new(app_name, procs))
    } else {
        None
    };

    Ok(MpiRunOutcome { report, trace })
}

/// Run pre-lowered [`RankScript`]s on the simulator's single-threaded
/// fast path (see [`Simulation::run_scripts`]). Scripts never trace —
/// they *are* the replay of a trace or skeleton — so the outcome carries
/// no [`AppTrace`].
///
/// Panics on simulation failure; use [`try_run_mpi_scripts`] for a typed
/// [`SimError`].
pub fn run_mpi_scripts(
    cluster: ClusterSpec,
    placement: Placement,
    scripts: &[RankScript],
) -> MpiRunOutcome {
    try_run_mpi_scripts(cluster, placement, scripts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_mpi_scripts`]. Always the exact legacy serial
/// engine; callers that carry a resolved simulator thread count should
/// use [`try_run_mpi_scripts_threads`].
pub fn try_run_mpi_scripts(
    cluster: ClusterSpec,
    placement: Placement,
    scripts: &[RankScript],
) -> Result<MpiRunOutcome, SimError> {
    try_run_mpi_scripts_threads(cluster, placement, scripts, 1)
}

/// Like [`try_run_mpi_scripts`], but selects the engine by `threads`
/// (resolved via [`pskel_sim::resolve_sim_threads`]): 1 runs the serial
/// script fast path, more the time-sliced parallel driver. Reports are
/// bit-identical either way.
pub fn try_run_mpi_scripts_threads(
    cluster: ClusterSpec,
    placement: Placement,
    scripts: &[RankScript],
    threads: usize,
) -> Result<MpiRunOutcome, SimError> {
    assert_eq!(
        scripts.len(),
        placement.n_ranks(),
        "need exactly one script per rank"
    );
    let report = Simulation::new(cluster, placement).try_run_scripts_auto(scripts, threads)?;
    Ok(MpiRunOutcome {
        report,
        trace: None,
    })
}
