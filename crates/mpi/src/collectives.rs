//! Collective operations, implemented over point-to-point messages with the
//! algorithms MPICH of the paper's era used: binomial trees for rooted
//! collectives, recursive doubling for allreduce, ring for allgather and
//! pairwise exchange for alltoall.
//!
//! Building collectives from p2p (rather than magic constant-time models)
//! matters for the paper's evaluation: throttling *one* link must slow a
//! collective by exactly the traffic that crosses that link, which is what
//! produces the error structure of Figure 6.
//!
//! Each collective is traced as a single [`OpKind`] event — the trace
//! reflects the MPI interface, not the implementation, just as the paper's
//! PMPI shim sees it.

use crate::comm::Comm;
use pskel_trace::OpKind;

impl Comm<'_> {
    /// Synchronize all ranks (dissemination algorithm, ⌈log₂ n⌉ rounds).
    pub fn barrier(&mut self) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            let mut dist = 1;
            while dist < n {
                let to = (me + dist) % n;
                let from = (me + n - dist) % n;
                self.raw_sendrecv(to, tag, 0, from);
                dist *= 2;
            }
        }
        self.record_collective(start, OpKind::Barrier, None, 0);
    }

    /// Broadcast `bytes` from `root` (binomial tree).
    pub fn bcast(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            let vrank = (me + n - root) % n;
            // Find the parent: the first set bit of vrank.
            let mut mask = 1usize;
            while mask < n {
                if vrank & mask != 0 {
                    let parent = (vrank - mask + root) % n;
                    self.raw_recv(Some(parent), Some(tag));
                    break;
                }
                mask <<= 1;
            }
            // Forward to children with decreasing masks.
            mask >>= 1;
            while mask > 0 {
                if vrank & mask == 0 && vrank + mask < n {
                    let child = (vrank + mask + root) % n;
                    self.raw_send(child, tag, bytes);
                }
                mask >>= 1;
            }
        }
        self.record_collective(start, OpKind::Bcast, Some(root as u32), bytes);
    }

    /// Reduce `bytes` of data to `root` (binomial tree, reversed bcast).
    pub fn reduce(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            let vrank = (me + n - root) % n;
            let mut mask = 1usize;
            while mask < n {
                if vrank & mask != 0 {
                    let parent = (vrank - mask + root) % n;
                    self.raw_send(parent, tag, bytes);
                    break;
                } else if vrank + mask < n {
                    let child = (vrank + mask + root) % n;
                    self.raw_recv(Some(child), Some(tag));
                }
                mask <<= 1;
            }
        }
        self.record_collective(start, OpKind::Reduce, Some(root as u32), bytes);
    }

    /// Allreduce of `bytes` (recursive doubling; non-power-of-two ranks fold
    /// into the nearest power of two first, as in MPICH).
    pub fn allreduce(&mut self, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            let pow2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
            let rem = n - pow2;
            // Fold: ranks >= pow2 send their contribution to (rank - pow2).
            let participates = if me >= pow2 {
                self.raw_send(me - pow2, tag, bytes);
                false
            } else {
                if me < rem {
                    self.raw_recv(Some(me + pow2), Some(tag));
                }
                true
            };
            if participates {
                let mut mask = 1usize;
                while mask < pow2 {
                    let partner = me ^ mask;
                    self.raw_sendrecv(partner, tag, bytes, partner);
                    mask <<= 1;
                }
            }
            // Unfold: results go back to the folded ranks.
            if me >= pow2 {
                self.raw_recv(Some(me - pow2), Some(tag));
            } else if me < rem {
                self.raw_send(me + pow2, tag, bytes);
            }
        }
        self.record_collective(start, OpKind::Allreduce, None, bytes);
    }

    /// Allgather with `bytes` contributed per rank (ring algorithm:
    /// n−1 steps, each forwarding one block).
    pub fn allgather(&mut self, bytes: u64) {
        let start = self.begin_collective();
        self.ring_allgather_core(&vec![bytes; self.size()]);
        self.record_collective(start, OpKind::Allgather, None, bytes);
    }

    /// Allgather with per-rank contribution sizes.
    pub fn allgatherv(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.size(),
            "allgatherv needs one count per rank"
        );
        let start = self.begin_collective();
        self.ring_allgather_core(counts);
        let mine = counts[self.rank()];
        self.record_collective(start, OpKind::Allgatherv, None, mine);
    }

    fn ring_allgather_core(&mut self, counts: &[u64]) {
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n <= 1 {
            return;
        }
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        // Step i forwards the block that originated at (me - i) mod n.
        for i in 0..n - 1 {
            let outgoing = counts[(me + n - i) % n];
            self.raw_sendrecv(right, tag, outgoing, left);
        }
    }

    /// Alltoall with `bytes` per (source, destination) pair (pairwise
    /// exchange: n−1 balanced rounds).
    pub fn alltoall(&mut self, bytes: u64) {
        let start = self.begin_collective();
        let n = self.size();
        self.alltoall_core(&vec![bytes; n]);
        self.record_collective(start, OpKind::Alltoall, None, bytes);
    }

    /// Alltoallv: `send_counts[d]` bytes go from this rank to rank `d`.
    /// All ranks must pass mutually consistent matrices (as in MPI, where
    /// recv counts are supplied explicitly).
    pub fn alltoallv(&mut self, send_counts: &[u64]) {
        assert_eq!(
            send_counts.len(),
            self.size(),
            "alltoallv needs one count per rank"
        );
        let start = self.begin_collective();
        self.alltoall_core(send_counts);
        let total: u64 = send_counts.iter().sum();
        let avg = total / self.size().max(1) as u64;
        self.record_collective(start, OpKind::Alltoallv, None, avg);
    }

    fn alltoall_core(&mut self, send_counts: &[u64]) {
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        for i in 1..n {
            let dst = (me + i) % n;
            let src = (me + n - i) % n;
            self.raw_sendrecv(dst, tag, send_counts[dst], src);
        }
    }

    /// Reduce-scatter: combine a vector of `n × bytes` and leave each rank
    /// one `bytes`-sized block (recursive halving for powers of two, with
    /// a fold step otherwise — MPICH's algorithm family).
    pub fn reduce_scatter(&mut self, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            let pow2 = if n.is_power_of_two() {
                n
            } else {
                n.next_power_of_two() / 2
            };
            let rem = n - pow2;
            // Fold extra ranks into the power-of-two set.
            let participates = if me >= pow2 {
                self.raw_send(me - pow2, tag, bytes * n as u64);
                false
            } else {
                if me < rem {
                    self.raw_recv(Some(me + pow2), Some(tag));
                }
                true
            };
            if participates {
                // Recursive halving: each round exchanges half the
                // remaining vector with a partner at decreasing distance.
                let mut dist = pow2 / 2;
                let mut chunk = bytes * (pow2 as u64 / 2);
                while dist >= 1 {
                    let partner = me ^ dist;
                    self.raw_sendrecv(partner, tag, chunk, partner);
                    dist /= 2;
                    chunk = (chunk / 2).max(bytes);
                }
            }
            // Deliver the folded ranks their block.
            if me >= pow2 {
                self.raw_recv(Some(me - pow2), Some(tag));
            } else if me < rem {
                self.raw_send(me + pow2, tag, bytes);
            }
        }
        self.record_collective(start, OpKind::ReduceScatter, None, bytes);
    }

    /// Inclusive prefix reduction (linear chain, as in small-communicator
    /// MPICH): rank r receives from r-1, combines, forwards to r+1.
    pub fn scan(&mut self, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            if me > 0 {
                self.raw_recv(Some(me - 1), Some(tag));
            }
            if me + 1 < n {
                self.raw_send(me + 1, tag, bytes);
            }
        }
        self.record_collective(start, OpKind::Scan, None, bytes);
    }

    /// Gather `bytes` from every rank to `root` (linear; fine at the
    /// paper's scale of 4 ranks — MPICH's binomial gather differs only in
    /// constant factors here).
    pub fn gather(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            if me == root {
                for src in 0..n {
                    if src != root {
                        self.raw_recv(Some(src), Some(tag));
                    }
                }
            } else {
                self.raw_send(root, tag, bytes);
            }
        }
        self.record_collective(start, OpKind::Gather, Some(root as u32), bytes);
    }

    /// Scatter `bytes` to every rank from `root` (linear).
    pub fn scatter(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        let tag = self.fresh_coll_tag();
        let n = self.size();
        let me = self.rank();
        if n > 1 {
            if me == root {
                for dst in 0..n {
                    if dst != root {
                        self.raw_send(dst, tag, bytes);
                    }
                }
            } else {
                self.raw_recv(Some(root), Some(tag));
            }
        }
        self.record_collective(start, OpKind::Scatter, Some(root as u32), bytes);
    }
}
