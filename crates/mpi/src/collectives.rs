//! Collective operations, implemented over point-to-point messages with the
//! algorithms MPICH of the paper's era used: binomial trees for rooted
//! collectives, recursive doubling for allreduce, ring for allgather and
//! pairwise exchange for alltoall.
//!
//! Building collectives from p2p (rather than magic constant-time models)
//! matters for the paper's evaluation: throttling *one* link must slow a
//! collective by exactly the traffic that crosses that link, which is what
//! produces the error structure of Figure 6.
//!
//! Each collective is traced as a single [`OpKind`] event — the trace
//! reflects the MPI interface, not the implementation, just as the paper's
//! PMPI shim sees it.
//!
//! The algorithms themselves are written once, generically, against
//! [`CollChannel`]: a minimal send/recv/sendrecv surface. Two channels
//! exist — [`CommColl`] executes the collective immediately through a
//! live [`Comm`], and the script builder (`crate::script`) *records* the
//! identical message pattern into a [`pskel_sim::RankScript`], which is
//! what lets scripted replays reproduce collectives bit-identically on
//! the simulator's fast path.

use crate::comm::Comm;
use pskel_trace::OpKind;

/// The point-to-point surface collective algorithms are written against.
/// `cc_send`/`cc_recv`/`cc_sendrecv` mirror `Comm::raw_send`/`raw_recv`/
/// `raw_sendrecv`: untraced, overhead-charged, tagged with the collective
/// tag of the enclosing operation. Ranks are group-relative.
pub(crate) trait CollChannel {
    fn size(&self) -> usize;
    fn rank(&self) -> usize;
    fn cc_send(&mut self, dst: usize, bytes: u64);
    fn cc_recv(&mut self, src: usize);
    fn cc_sendrecv(&mut self, dst: usize, send_bytes: u64, src: usize);
}

/// A live channel: executes the collective's messages through the
/// communicator's raw (untraced) point-to-point calls.
struct CommColl<'c, 'a> {
    comm: &'c mut Comm<'a>,
    tag: u64,
}

impl CollChannel for CommColl<'_, '_> {
    fn size(&self) -> usize {
        self.comm.size()
    }

    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn cc_send(&mut self, dst: usize, bytes: u64) {
        self.comm.raw_send(dst, self.tag, bytes);
    }

    fn cc_recv(&mut self, src: usize) {
        self.comm.raw_recv(Some(src), Some(self.tag));
    }

    fn cc_sendrecv(&mut self, dst: usize, send_bytes: u64, src: usize) {
        self.comm.raw_sendrecv(dst, self.tag, send_bytes, src);
    }
}

// ---- the algorithms, channel-generic ----------------------------------

/// Dissemination barrier: ⌈log₂ n⌉ rounds of sendrecv at doubling
/// distance.
pub(crate) fn alg_barrier<C: CollChannel>(c: &mut C) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        let mut dist = 1;
        while dist < n {
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            c.cc_sendrecv(to, 0, from);
            dist *= 2;
        }
    }
}

/// Binomial-tree broadcast from `root`.
pub(crate) fn alg_bcast<C: CollChannel>(c: &mut C, root: usize, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        let vrank = (me + n - root) % n;
        // Find the parent: the first set bit of vrank.
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                c.cc_recv(parent);
                break;
            }
            mask <<= 1;
        }
        // Forward to children with decreasing masks.
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < n {
                let child = (vrank + mask + root) % n;
                c.cc_send(child, bytes);
            }
            mask >>= 1;
        }
    }
}

/// Binomial-tree reduce to `root` (reversed bcast).
pub(crate) fn alg_reduce<C: CollChannel>(c: &mut C, root: usize, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        let vrank = (me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                c.cc_send(parent, bytes);
                break;
            } else if vrank + mask < n {
                let child = (vrank + mask + root) % n;
                c.cc_recv(child);
            }
            mask <<= 1;
        }
    }
}

/// Recursive-doubling allreduce; non-power-of-two ranks fold into the
/// nearest power of two first, as in MPICH.
pub(crate) fn alg_allreduce<C: CollChannel>(c: &mut C, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        let pow2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
        let rem = n - pow2;
        // Fold: ranks >= pow2 send their contribution to (rank - pow2).
        let participates = if me >= pow2 {
            c.cc_send(me - pow2, bytes);
            false
        } else {
            if me < rem {
                c.cc_recv(me + pow2);
            }
            true
        };
        if participates {
            let mut mask = 1usize;
            while mask < pow2 {
                let partner = me ^ mask;
                c.cc_sendrecv(partner, bytes, partner);
                mask <<= 1;
            }
        }
        // Unfold: results go back to the folded ranks.
        if me >= pow2 {
            c.cc_recv(me - pow2);
        } else if me < rem {
            c.cc_send(me + pow2, bytes);
        }
    }
}

/// Ring allgather: n−1 steps, step i forwarding the block that
/// originated at (me − i) mod n.
pub(crate) fn alg_ring_allgather<C: CollChannel>(c: &mut C, counts: &[u64]) {
    let n = c.size();
    let me = c.rank();
    if n <= 1 {
        return;
    }
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for i in 0..n - 1 {
        let outgoing = counts[(me + n - i) % n];
        c.cc_sendrecv(right, outgoing, left);
    }
}

/// Pairwise-exchange alltoall: n−1 balanced rounds.
pub(crate) fn alg_alltoall<C: CollChannel>(c: &mut C, send_counts: &[u64]) {
    let n = c.size();
    let me = c.rank();
    for i in 1..n {
        let dst = (me + i) % n;
        let src = (me + n - i) % n;
        c.cc_sendrecv(dst, send_counts[dst], src);
    }
}

/// Reduce-scatter: recursive halving for powers of two, with a fold step
/// otherwise — MPICH's algorithm family.
pub(crate) fn alg_reduce_scatter<C: CollChannel>(c: &mut C, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        let pow2 = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        let rem = n - pow2;
        // Fold extra ranks into the power-of-two set.
        let participates = if me >= pow2 {
            c.cc_send(me - pow2, bytes * n as u64);
            false
        } else {
            if me < rem {
                c.cc_recv(me + pow2);
            }
            true
        };
        if participates {
            // Recursive halving: each round exchanges half the
            // remaining vector with a partner at decreasing distance.
            let mut dist = pow2 / 2;
            let mut chunk = bytes * (pow2 as u64 / 2);
            while dist >= 1 {
                let partner = me ^ dist;
                c.cc_sendrecv(partner, chunk, partner);
                dist /= 2;
                chunk = (chunk / 2).max(bytes);
            }
        }
        // Deliver the folded ranks their block.
        if me >= pow2 {
            c.cc_recv(me - pow2);
        } else if me < rem {
            c.cc_send(me + pow2, bytes);
        }
    }
}

/// Inclusive prefix reduction (linear chain, as in small-communicator
/// MPICH): rank r receives from r-1, combines, forwards to r+1.
pub(crate) fn alg_scan<C: CollChannel>(c: &mut C, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        if me > 0 {
            c.cc_recv(me - 1);
        }
        if me + 1 < n {
            c.cc_send(me + 1, bytes);
        }
    }
}

/// Linear gather to `root` (fine at the paper's scale of 4 ranks —
/// MPICH's binomial gather differs only in constant factors here).
pub(crate) fn alg_gather<C: CollChannel>(c: &mut C, root: usize, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        if me == root {
            for src in 0..n {
                if src != root {
                    c.cc_recv(src);
                }
            }
        } else {
            c.cc_send(root, bytes);
        }
    }
}

/// Linear scatter from `root`.
pub(crate) fn alg_scatter<C: CollChannel>(c: &mut C, root: usize, bytes: u64) {
    let n = c.size();
    let me = c.rank();
    if n > 1 {
        if me == root {
            for dst in 0..n {
                if dst != root {
                    c.cc_send(dst, bytes);
                }
            }
        } else {
            c.cc_recv(root);
        }
    }
}

// ---- the traced public surface on Comm --------------------------------

impl<'a> Comm<'a> {
    fn coll_channel(&mut self) -> CommColl<'_, 'a> {
        let tag = self.fresh_coll_tag();
        CommColl { comm: self, tag }
    }

    /// Synchronize all ranks (dissemination algorithm, ⌈log₂ n⌉ rounds).
    pub fn barrier(&mut self) {
        let start = self.begin_collective();
        alg_barrier(&mut self.coll_channel());
        self.record_collective(start, OpKind::Barrier, None, 0);
    }

    /// Broadcast `bytes` from `root` (binomial tree).
    pub fn bcast(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        alg_bcast(&mut self.coll_channel(), root, bytes);
        self.record_collective(start, OpKind::Bcast, Some(root as u32), bytes);
    }

    /// Reduce `bytes` of data to `root` (binomial tree, reversed bcast).
    pub fn reduce(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        alg_reduce(&mut self.coll_channel(), root, bytes);
        self.record_collective(start, OpKind::Reduce, Some(root as u32), bytes);
    }

    /// Allreduce of `bytes` (recursive doubling; non-power-of-two ranks fold
    /// into the nearest power of two first, as in MPICH).
    pub fn allreduce(&mut self, bytes: u64) {
        let start = self.begin_collective();
        alg_allreduce(&mut self.coll_channel(), bytes);
        self.record_collective(start, OpKind::Allreduce, None, bytes);
    }

    /// Allgather with `bytes` contributed per rank (ring algorithm:
    /// n−1 steps, each forwarding one block).
    pub fn allgather(&mut self, bytes: u64) {
        let start = self.begin_collective();
        let counts = vec![bytes; self.size()];
        alg_ring_allgather(&mut self.coll_channel(), &counts);
        self.record_collective(start, OpKind::Allgather, None, bytes);
    }

    /// Allgather with per-rank contribution sizes.
    pub fn allgatherv(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.size(),
            "allgatherv needs one count per rank"
        );
        let start = self.begin_collective();
        alg_ring_allgather(&mut self.coll_channel(), counts);
        let mine = counts[self.rank()];
        self.record_collective(start, OpKind::Allgatherv, None, mine);
    }

    /// Alltoall with `bytes` per (source, destination) pair (pairwise
    /// exchange: n−1 balanced rounds).
    pub fn alltoall(&mut self, bytes: u64) {
        let start = self.begin_collective();
        let counts = vec![bytes; self.size()];
        alg_alltoall(&mut self.coll_channel(), &counts);
        self.record_collective(start, OpKind::Alltoall, None, bytes);
    }

    /// Alltoallv: `send_counts[d]` bytes go from this rank to rank `d`.
    /// All ranks must pass mutually consistent matrices (as in MPI, where
    /// recv counts are supplied explicitly).
    pub fn alltoallv(&mut self, send_counts: &[u64]) {
        assert_eq!(
            send_counts.len(),
            self.size(),
            "alltoallv needs one count per rank"
        );
        let start = self.begin_collective();
        alg_alltoall(&mut self.coll_channel(), send_counts);
        let total: u64 = send_counts.iter().sum();
        let avg = total / self.size().max(1) as u64;
        self.record_collective(start, OpKind::Alltoallv, None, avg);
    }

    /// Reduce-scatter: combine a vector of `n × bytes` and leave each rank
    /// one `bytes`-sized block (recursive halving for powers of two, with
    /// a fold step otherwise — MPICH's algorithm family).
    pub fn reduce_scatter(&mut self, bytes: u64) {
        let start = self.begin_collective();
        alg_reduce_scatter(&mut self.coll_channel(), bytes);
        self.record_collective(start, OpKind::ReduceScatter, None, bytes);
    }

    /// Inclusive prefix reduction (linear chain, as in small-communicator
    /// MPICH): rank r receives from r-1, combines, forwards to r+1.
    pub fn scan(&mut self, bytes: u64) {
        let start = self.begin_collective();
        alg_scan(&mut self.coll_channel(), bytes);
        self.record_collective(start, OpKind::Scan, None, bytes);
    }

    /// Gather `bytes` from every rank to `root` (linear; fine at the
    /// paper's scale of 4 ranks — MPICH's binomial gather differs only in
    /// constant factors here).
    pub fn gather(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        alg_gather(&mut self.coll_channel(), root, bytes);
        self.record_collective(start, OpKind::Gather, Some(root as u32), bytes);
    }

    /// Scatter `bytes` to every rank from `root` (linear).
    pub fn scatter(&mut self, root: usize, bytes: u64) {
        let start = self.begin_collective();
        alg_scatter(&mut self.coll_channel(), root, bytes);
        self.record_collective(start, OpKind::Scatter, Some(root as u32), bytes);
    }
}
