//! The MPI-like communicator, with a built-in PMPI-style profiling shim.
//!
//! `Comm` wraps a rank's [`SimCtx`] and exposes the subset of MPI the NAS
//! benchmarks exercise: blocking and nonblocking point-to-point calls,
//! waits, and the common collectives (implemented over point-to-point in
//! `collectives.rs`, using MPICH's algorithms).
//!
//! When tracing is enabled, every call is recorded as an [`MpiEvent`] with
//! its parameters and start/end virtual timestamps, and the gap since the
//! previous call is recorded as computation — the paper's trace format
//! (§3.1). Tracing requires no change to application code, mirroring the
//! paper's link-time PMPI interposition.

use crate::slots::SlotAllocator;
use pskel_sim::{RecvInfo, SimCtx, SimReq, SimTime};
use pskel_trace::{MpiEvent, OpKind, ProcessTrace, Record};
use std::collections::HashMap;

/// Tag bit reserved for collective-internal messages; user tags must stay
/// below this.
pub const COLL_TAG_BASE: u64 = 1 << 62;

/// Handle to a pending nonblocking operation issued through [`Comm`].
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct CommReq(u64);

#[derive(Debug)]
struct PendingNb {
    sim: SimReq,
    slot: u32,
    kind: OpKind,
    /// Peer/tag of the initiating call, echoed into the wait's trace event
    /// so that waits from different call sites stay distinct symbols during
    /// clustering (their slot numbers alone would collide).
    peer: Option<u32>,
    tag: Option<u64>,
}

/// Records the trace of one rank while the application runs.
#[derive(Debug)]
pub struct Tracer {
    records: Vec<Record>,
    last_end: SimTime,
    /// Artificial per-event overhead in CPU-seconds, to let experiments
    /// quantify the cost of tracing (the paper reports < 1%).
    pub overhead_secs: f64,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer {
            records: Vec::new(),
            last_end: SimTime::ZERO,
            overhead_secs: 0.0,
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Per-rank communicator handle.
///
/// A communicator may span all simulated ranks (the default) or a *group*
/// — a subset of world ranks, as when several jobs are co-scheduled on one
/// cluster (see [`crate::harness::run_jobs`]). All rank numbers at this
/// API are group-relative; translation to world ranks happens here.
pub struct Comm<'a> {
    ctx: &'a mut SimCtx,
    tracer: Option<Tracer>,
    slots: SlotAllocator,
    pending: HashMap<u64, PendingNb>,
    next_req: u64,
    coll_seq: u64,
    /// World ranks of this communicator's members, in group order.
    group: Vec<usize>,
    /// This rank's position within `group`.
    group_rank: usize,
}

impl<'a> Comm<'a> {
    /// Wrap a rank context. Pass a [`Tracer`] to record the execution trace.
    pub fn new(ctx: &'a mut SimCtx, tracer: Option<Tracer>) -> Comm<'a> {
        let group: Vec<usize> = (0..ctx.nranks()).collect();
        Comm::with_group(ctx, tracer, group)
    }

    /// Wrap a rank context as a member of a communicator over `group`
    /// (world ranks, which must include this rank exactly once).
    pub fn with_group(ctx: &'a mut SimCtx, tracer: Option<Tracer>, group: Vec<usize>) -> Comm<'a> {
        let me = ctx.rank();
        let group_rank = group
            .iter()
            .position(|&w| w == me)
            .unwrap_or_else(|| panic!("world rank {me} is not a member of group {group:?}"));
        assert!(
            group.iter().filter(|&&w| w == me).count() == 1,
            "world rank {me} appears more than once in group {group:?}"
        );
        Comm {
            ctx,
            tracer,
            slots: SlotAllocator::new(),
            pending: HashMap::new(),
            next_req: 0,
            coll_seq: 0,
            group,
            group_rank,
        }
    }

    /// This rank (group-relative).
    pub fn rank(&self) -> usize {
        self.group_rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Translate a group rank to the underlying world rank.
    fn world(&self, group_rank: usize) -> usize {
        *self.group.get(group_rank).unwrap_or_else(|| {
            panic!(
                "rank {group_rank} outside communicator of size {}",
                self.group.len()
            )
        })
    }

    /// Translate a world rank back to this group (panics if foreign —
    /// impossible for matched traffic, since groups are disjoint).
    fn group_rank_of(&self, world: usize) -> usize {
        self.group
            .iter()
            .position(|&w| w == world)
            .unwrap_or_else(|| panic!("received from world rank {world}, not in this group"))
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Perform local computation (not an MPI call; shows up in the trace as
    /// the gap between surrounding MPI calls).
    pub fn compute(&mut self, secs: f64) {
        self.ctx.compute(secs);
    }

    /// Direct access to the underlying simulation context.
    pub fn ctx(&mut self) -> &mut SimCtx {
        self.ctx
    }

    pub(crate) fn fresh_coll_tag(&mut self) -> u64 {
        self.coll_seq += 1;
        COLL_TAG_BASE + self.coll_seq
    }

    // ---- tracing plumbing --------------------------------------------------

    /// Per-call software cost of the message stack, charged inside the call
    /// (so it shows up as MPI time in traces, as it would under PMPI).
    fn charge_call_overhead(&mut self) {
        let o = self.ctx.sw_overhead_secs();
        self.ctx.compute(o);
    }

    fn begin(&mut self) -> SimTime {
        let start = self.ctx.now();
        self.charge_call_overhead();
        if let Some(t) = &self.tracer {
            if t.overhead_secs > 0.0 {
                self.ctx.compute(t.overhead_secs);
            }
        }
        start
    }

    fn end(
        &mut self,
        start: SimTime,
        kind: OpKind,
        peer: Option<u32>,
        tag: Option<u64>,
        bytes: u64,
        slots: Vec<u32>,
    ) {
        let end = self.ctx.now();
        if let Some(t) = &mut self.tracer {
            let gap = start.saturating_since(t.last_end);
            if !gap.is_zero() {
                t.records.push(Record::Compute { dur: gap });
            }
            t.records.push(Record::Mpi(MpiEvent {
                kind,
                peer,
                tag,
                bytes,
                slots,
                start,
                end,
            }));
            t.last_end = end;
        }
    }

    /// Finish the rank's participation: closes the trace (recording any
    /// trailing compute) and returns it if tracing was on.
    pub fn finish(mut self) -> Option<ProcessTrace> {
        assert!(
            self.pending.is_empty(),
            "rank {}: {} nonblocking operations never waited on",
            self.rank(),
            self.pending.len()
        );
        let now = self.ctx.now();
        let rank = self.rank();
        self.tracer.take().map(|mut t| {
            let gap = now.saturating_since(t.last_end);
            if !gap.is_zero() {
                t.records.push(Record::Compute { dur: gap });
            }
            ProcessTrace {
                rank,
                records: t.records,
                finish: now,
            }
        })
    }

    // ---- point-to-point ----------------------------------------------------

    /// Blocking send of `bytes` with `tag` to `dst`.
    pub fn send(&mut self, dst: usize, tag: u64, bytes: u64) {
        assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective tag space"
        );
        let start = self.begin();
        let wdst = self.world(dst);
        self.ctx.send(wdst, tag, bytes, None);
        self.end(
            start,
            OpKind::Send,
            Some(dst as u32),
            Some(tag),
            bytes,
            vec![],
        );
    }

    /// Blocking send carrying a payload.
    pub fn send_with_payload(&mut self, dst: usize, tag: u64, payload: Vec<u8>) {
        assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective tag space"
        );
        let bytes = payload.len() as u64;
        let start = self.begin();
        let wdst = self.world(dst);
        self.ctx.send(wdst, tag, bytes, Some(payload));
        self.end(
            start,
            OpKind::Send,
            Some(dst as u32),
            Some(tag),
            bytes,
            vec![],
        );
    }

    /// Blocking receive; `src`/`tag` of `None` mean any-source/any-tag.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u64>) -> RecvInfo {
        let start = self.begin();
        let wsrc = src.map(|s| self.world(s));
        let mut info = self.ctx.recv(wsrc, tag);
        info.src = self.group_rank_of(info.src);
        self.end(
            start,
            OpKind::Recv,
            src.map(|s| s as u32),
            tag,
            info.bytes,
            vec![],
        );
        info
    }

    /// Nonblocking send; complete with [`Comm::wait`] or [`Comm::waitall`].
    pub fn isend(&mut self, dst: usize, tag: u64, bytes: u64) -> CommReq {
        assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective tag space"
        );
        let start = self.begin();
        let wdst = self.world(dst);
        let sim = self.ctx.isend(wdst, tag, bytes, None);
        let slot = self.slots.alloc();
        self.end(
            start,
            OpKind::Isend,
            Some(dst as u32),
            Some(tag),
            bytes,
            vec![slot],
        );
        self.track(sim, slot, OpKind::Isend, Some(dst as u32), Some(tag))
    }

    /// Nonblocking receive; complete with [`Comm::wait`] or [`Comm::waitall`].
    pub fn irecv(&mut self, src: Option<usize>, tag: Option<u64>, bytes_hint: u64) -> CommReq {
        let start = self.begin();
        let wsrc = src.map(|s| self.world(s));
        let sim = self.ctx.irecv(wsrc, tag);
        let slot = self.slots.alloc();
        self.end(
            start,
            OpKind::Irecv,
            src.map(|s| s as u32),
            tag,
            bytes_hint,
            vec![slot],
        );
        self.track(sim, slot, OpKind::Irecv, src.map(|s| s as u32), tag)
    }

    fn track(
        &mut self,
        sim: SimReq,
        slot: u32,
        kind: OpKind,
        peer: Option<u32>,
        tag: Option<u64>,
    ) -> CommReq {
        self.next_req += 1;
        self.pending.insert(
            self.next_req,
            PendingNb {
                sim,
                slot,
                kind,
                peer,
                tag,
            },
        );
        CommReq(self.next_req)
    }

    /// Block until a nonblocking operation completes.
    pub fn wait(&mut self, req: CommReq) -> Option<RecvInfo> {
        let pending = self
            .pending
            .remove(&req.0)
            .expect("wait on unknown or already-completed request");
        let start = self.begin();
        let mut outcome = self.ctx.wait(pending.sim);
        if let Some(info) = &mut outcome {
            info.src = self.group_rank_of(info.src);
        }
        debug_assert_eq!(
            outcome.is_some(),
            pending.kind == OpKind::Irecv,
            "receive waits (and only those) yield receive info"
        );
        self.slots.free(pending.slot);
        self.end(
            start,
            OpKind::Wait,
            pending.peer,
            pending.tag,
            0,
            vec![pending.slot],
        );
        outcome
    }

    /// Block until all listed operations complete; outcomes in input order.
    pub fn waitall(&mut self, reqs: Vec<CommReq>) -> Vec<Option<RecvInfo>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let mut sims = Vec::with_capacity(reqs.len());
        let mut slots = Vec::with_capacity(reqs.len());
        let mut first_peer = None;
        let mut first_tag = None;
        for (i, r) in reqs.into_iter().enumerate() {
            let pending = self
                .pending
                .remove(&r.0)
                .expect("waitall on unknown or already-completed request");
            if i == 0 {
                first_peer = pending.peer;
                first_tag = pending.tag;
            }
            sims.push(pending.sim);
            slots.push(pending.slot);
        }
        let start = self.begin();
        let mut outcomes = self.ctx.waitall(sims);
        for info in outcomes.iter_mut().flatten() {
            info.src = self.group_rank_of(info.src);
        }
        for &s in &slots {
            self.slots.free(s);
        }
        self.end(start, OpKind::Waitall, first_peer, first_tag, 0, slots);
        outcomes
    }

    /// Combined send+receive (both directions proceed concurrently), the
    /// building block of exchange patterns.
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        send_bytes: u64,
        src: Option<usize>,
        recv_tag: Option<u64>,
    ) -> RecvInfo {
        let s = self.isend(dst, send_tag, send_bytes);
        let r = self.irecv(src, recv_tag, 0);
        let mut out = self.waitall(vec![s, r]);
        out.pop()
            .flatten()
            .expect("sendrecv receive leg returned no info")
    }

    // ---- internal untraced p2p (collective building blocks) ---------------

    pub(crate) fn raw_send(&mut self, dst: usize, tag: u64, bytes: u64) {
        self.charge_call_overhead();
        let wdst = self.world(dst);
        self.ctx.send(wdst, tag, bytes, None);
    }

    pub(crate) fn raw_recv(&mut self, src: Option<usize>, tag: Option<u64>) -> RecvInfo {
        self.charge_call_overhead();
        let wsrc = src.map(|s| self.world(s));
        self.ctx.recv(wsrc, tag)
    }

    pub(crate) fn raw_sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_bytes: u64,
        src: usize,
    ) -> RecvInfo {
        self.charge_call_overhead();
        let wdst = self.world(dst);
        let wsrc = self.world(src);
        let s = self.ctx.isend(wdst, tag, send_bytes, None);
        let r = self.ctx.irecv(Some(wsrc), Some(tag));
        let mut out = self.ctx.waitall(vec![s, r]);
        out.pop()
            .flatten()
            .expect("raw_sendrecv receive leg returned no info")
    }

    /// Record a collective that `collectives.rs` has just carried out.
    pub(crate) fn record_collective(
        &mut self,
        start: SimTime,
        kind: OpKind,
        root: Option<u32>,
        bytes: u64,
    ) {
        self.end(start, kind, root, None, bytes, vec![]);
    }

    pub(crate) fn begin_collective(&mut self) -> SimTime {
        self.begin()
    }
}
