//! Time-resolved phase metrics over a streaming trace.
//!
//! The paper characterizes an application by its compute/communication
//! structure; here we resolve that structure *in time*. Collective
//! operations are natural synchronization points, so each rank's record
//! stream is segmented into **phases** delimited by collective calls: phase
//! k covers everything after the (k−1)-th collective up to and including
//! the k-th, plus one tail phase for activity after the last collective.
//! Because every rank participates in every collective in the same order,
//! phase k on rank 0 and phase k on rank 7 describe the same application
//! epoch, and per-phase metrics can be aggregated across ranks by index.
//!
//! Per phase we report (definitions in DESIGN.md §12):
//! - `load_imbalance` — `1 − mean(compute)/max(compute)` across ranks; 0
//!   when perfectly balanced, →1 when one straggler does all the work.
//! - `transfer_fraction` — share of busy time spent in point-to-point
//!   data movement.
//! - `serialization_fraction` — share of busy time spent blocked in waits
//!   and collectives (time that cannot be overlapped with anything).

use pskel_sim::SimTime;
use pskel_trace::{MpiEvent, OpKind};
use serde::{Deserialize, Serialize};

/// Per-rank accumulator for one phase (the window between two collectives).
#[derive(Clone, Debug, Default)]
pub(crate) struct RankPhase {
    compute_ns: u128,
    p2p_ns: u128,
    wait_ns: u128,
    collective_ns: u128,
    /// Kind of the collective that closed the phase; `None` for the tail.
    boundary: Option<OpKind>,
    start: SimTime,
    end: SimTime,
}

impl RankPhase {
    fn busy_ns(&self) -> u128 {
        self.compute_ns + self.p2p_ns + self.wait_ns + self.collective_ns
    }
}

/// Streaming per-rank phase segmentation: feed records in trace order,
/// then `finish` with the rank's end time.
#[derive(Clone, Debug, Default)]
pub(crate) struct RankPhaseTracker {
    closed: Vec<RankPhase>,
    open: RankPhase,
}

impl RankPhaseTracker {
    pub fn new() -> RankPhaseTracker {
        RankPhaseTracker::default()
    }

    pub fn compute(&mut self, dur_ns: u64) {
        self.open.compute_ns += u128::from(dur_ns);
    }

    pub fn event(&mut self, e: &MpiEvent) {
        let dur = u128::from(e.duration().as_nanos());
        if e.kind.is_collective() {
            self.open.collective_ns += dur;
            self.open.boundary = Some(e.kind);
            self.open.end = e.end;
            let next_start = e.end;
            let done = std::mem::take(&mut self.open);
            self.closed.push(done);
            self.open.start = next_start;
            self.open.end = next_start;
        } else if e.kind.is_wait() {
            self.open.wait_ns += dur;
            self.open.end = e.end;
        } else {
            self.open.p2p_ns += dur;
            self.open.end = e.end;
        }
    }

    pub fn finish(mut self, finish: SimTime) -> Vec<RankPhase> {
        if self.open.busy_ns() > 0 {
            self.open.end = if finish.0 > self.open.end.0 {
                finish
            } else {
                self.open.end
            };
            self.closed.push(self.open);
        }
        self.closed
    }
}

/// Metrics for one application phase, aggregated across ranks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    pub index: usize,
    /// MPI spelling of the collective that closed the phase on rank 0's
    /// stream (`None` for the tail phase after the last collective).
    pub boundary: Option<String>,
    /// Ranks that contributed to this phase.
    pub ranks: usize,
    /// Earliest phase start across ranks, seconds.
    pub start_secs: f64,
    /// Latest phase end across ranks, seconds.
    pub end_secs: f64,
    /// Summed across ranks, seconds.
    pub compute_secs: f64,
    pub p2p_secs: f64,
    pub wait_secs: f64,
    pub collective_secs: f64,
    /// `1 − mean(compute)/max(compute)` across ranks.
    pub load_imbalance: f64,
    /// p2p share of busy time.
    pub transfer_fraction: f64,
    /// wait + collective share of busy time.
    pub serialization_fraction: f64,
}

/// Phase metrics for a whole application run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AppPhaseMetrics {
    pub phases: Vec<PhaseMetrics>,
}

impl AppPhaseMetrics {
    pub fn nphases(&self) -> usize {
        self.phases.len()
    }

    /// Worst (largest) load imbalance across phases; 0 for no phases.
    pub fn max_load_imbalance(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.load_imbalance)
            .fold(0.0, f64::max)
    }

    /// Busy-time-weighted mean of a per-phase fraction.
    fn weighted(&self, f: impl Fn(&PhaseMetrics) -> f64) -> f64 {
        let busy = |p: &PhaseMetrics| p.compute_secs + p.p2p_secs + p.wait_secs + p.collective_secs;
        let total: f64 = self.phases.iter().map(&busy).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.phases.iter().map(|p| f(p) * busy(p)).sum::<f64>() / total
    }

    /// Busy-time-weighted mean transfer fraction across phases.
    pub fn mean_transfer_fraction(&self) -> f64 {
        self.weighted(|p| p.transfer_fraction)
    }

    /// Busy-time-weighted mean serialization fraction across phases.
    pub fn mean_serialization_fraction(&self) -> f64 {
        self.weighted(|p| p.serialization_fraction)
    }
}

/// Collects per-rank phase lists and aggregates them by phase index.
#[derive(Clone, Debug, Default)]
pub(crate) struct PhaseAggregator {
    ranks: Vec<Vec<RankPhase>>,
}

impl PhaseAggregator {
    pub fn new() -> PhaseAggregator {
        PhaseAggregator::default()
    }

    pub fn add_rank(&mut self, phases: Vec<RankPhase>) {
        self.ranks.push(phases);
    }

    pub fn aggregate(self) -> AppPhaseMetrics {
        let nphases = self.ranks.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = Vec::with_capacity(nphases);
        for index in 0..nphases {
            let present: Vec<&RankPhase> = self.ranks.iter().filter_map(|r| r.get(index)).collect();
            let ranks = present.len();
            let ns = 1e-9;
            let sum = |f: fn(&RankPhase) -> u128| -> f64 {
                present.iter().map(|p| f(p) as f64).sum::<f64>() * ns
            };
            let compute_secs = sum(|p| p.compute_ns);
            let p2p_secs = sum(|p| p.p2p_ns);
            let wait_secs = sum(|p| p.wait_ns);
            let collective_secs = sum(|p| p.collective_ns);
            let busy = compute_secs + p2p_secs + wait_secs + collective_secs;
            let max_compute = present
                .iter()
                .map(|p| p.compute_ns as f64 * ns)
                .fold(0.0, f64::max);
            let mean_compute = if ranks == 0 {
                0.0
            } else {
                compute_secs / ranks as f64
            };
            let load_imbalance = if max_compute > 0.0 {
                1.0 - mean_compute / max_compute
            } else {
                0.0
            };
            let frac = |x: f64| if busy > 0.0 { x / busy } else { 0.0 };
            out.push(PhaseMetrics {
                index,
                boundary: present
                    .first()
                    .and_then(|p| p.boundary)
                    .map(|k| k.mpi_name().to_string()),
                ranks,
                start_secs: present
                    .iter()
                    .map(|p| p.start.as_secs_f64())
                    .fold(f64::INFINITY, f64::min),
                end_secs: present
                    .iter()
                    .map(|p| p.end.as_secs_f64())
                    .fold(0.0, f64::max),
                compute_secs,
                p2p_secs,
                wait_secs,
                collective_secs,
                load_imbalance,
                transfer_fraction: frac(p2p_secs),
                serialization_fraction: frac(wait_secs + collective_secs),
            });
        }
        AppPhaseMetrics { phases: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: OpKind, start: u64, end: u64) -> MpiEvent {
        MpiEvent {
            kind,
            peer: None,
            tag: None,
            bytes: 8,
            slots: vec![],
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    fn track(records: &[(Option<OpKind>, u64, u64)], finish: u64) -> Vec<RankPhase> {
        let mut t = RankPhaseTracker::new();
        for &(kind, a, b) in records {
            match kind {
                None => t.compute(b - a),
                Some(k) => t.event(&ev(k, a, b)),
            }
        }
        t.finish(SimTime(finish))
    }

    #[test]
    fn collectives_delimit_phases() {
        // compute, send, allreduce | compute, barrier | tail compute
        let phases = track(
            &[
                (None, 0, 1_000),
                (Some(OpKind::Send), 1_000, 1_200),
                (Some(OpKind::Allreduce), 1_200, 1_500),
                (None, 0, 2_000),
                (Some(OpKind::Barrier), 3_500, 3_600),
                (None, 0, 400),
            ],
            4_000,
        );
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].boundary, Some(OpKind::Allreduce));
        assert_eq!(phases[0].compute_ns, 1_000);
        assert_eq!(phases[0].p2p_ns, 200);
        assert_eq!(phases[0].collective_ns, 300);
        assert_eq!(phases[1].boundary, Some(OpKind::Barrier));
        assert_eq!(phases[1].start, SimTime(1_500));
        assert_eq!(phases[1].end, SimTime(3_600));
        assert_eq!(phases[2].boundary, None, "tail phase has no boundary");
        assert_eq!(phases[2].compute_ns, 400);
        assert_eq!(phases[2].end, SimTime(4_000));
    }

    #[test]
    fn empty_tail_is_dropped() {
        let phases = track(&[(Some(OpKind::Barrier), 0, 100)], 100);
        assert_eq!(phases.len(), 1);
    }

    #[test]
    fn wait_time_is_serialization_not_transfer() {
        let phases = track(
            &[
                (Some(OpKind::Isend), 0, 10),
                (Some(OpKind::Wait), 10, 510),
                (Some(OpKind::Barrier), 510, 520),
            ],
            520,
        );
        assert_eq!(phases[0].p2p_ns, 10);
        assert_eq!(phases[0].wait_ns, 500);
        assert_eq!(phases[0].collective_ns, 10);
    }

    #[test]
    fn imbalance_detects_stragglers() {
        let mut agg = PhaseAggregator::new();
        // Rank 0 computes 1ms, rank 1 computes 3ms before the same barrier.
        for compute_ns in [1_000_000u64, 3_000_000] {
            let mut t = RankPhaseTracker::new();
            t.compute(compute_ns);
            t.event(&ev(OpKind::Barrier, compute_ns, compute_ns + 1_000));
            agg.add_rank(t.finish(SimTime(compute_ns + 1_000)));
        }
        let m = agg.aggregate();
        assert_eq!(m.nphases(), 1);
        let p = &m.phases[0];
        assert_eq!(p.ranks, 2);
        // mean 2ms, max 3ms -> 1 - 2/3 = 1/3.
        assert!((p.load_imbalance - 1.0 / 3.0).abs() < 1e-9, "{p:?}");
        assert!(p.serialization_fraction > 0.0);
        assert_eq!(p.index, 0);
    }

    #[test]
    fn balanced_ranks_have_zero_imbalance() {
        let mut agg = PhaseAggregator::new();
        for _ in 0..4 {
            let mut t = RankPhaseTracker::new();
            t.compute(5_000_000);
            t.event(&ev(OpKind::Allreduce, 5_000_000, 5_001_000));
            agg.add_rank(t.finish(SimTime(5_001_000)));
        }
        let m = agg.aggregate();
        assert!(m.phases[0].load_imbalance.abs() < 1e-12);
        assert_eq!(m.max_load_imbalance(), m.phases[0].load_imbalance);
    }

    #[test]
    fn fractions_partition_busy_time() {
        let phases = track(
            &[
                (None, 0, 600),
                (Some(OpKind::Send), 600, 800),
                (Some(OpKind::Allreduce), 800, 1_000),
            ],
            1_000,
        );
        let mut agg = PhaseAggregator::new();
        agg.add_rank(phases);
        let p = agg.aggregate().phases.remove(0);
        // busy = 600 + 200 + 200; transfer 200/1000, serialization 200/1000.
        assert!((p.transfer_fraction - 0.2).abs() < 1e-12);
        assert!((p.serialization_fraction - 0.2).abs() < 1e-12);
        let compute_fraction = 1.0 - p.transfer_fraction - p.serialization_fraction;
        assert!((compute_fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ragged_rank_phase_counts_aggregate_by_index() {
        let mut agg = PhaseAggregator::new();
        agg.add_rank(track(
            &[
                (Some(OpKind::Barrier), 0, 10),
                (Some(OpKind::Barrier), 10, 20),
            ],
            20,
        ));
        agg.add_rank(track(&[(Some(OpKind::Barrier), 0, 10)], 10));
        let m = agg.aggregate();
        assert_eq!(m.nphases(), 2);
        assert_eq!(m.phases[0].ranks, 2);
        assert_eq!(m.phases[1].ranks, 1);
    }
}
