//! # pskel-ingest — streaming signature construction
//!
//! Builds execution signatures *while the trace is being read*, instead of
//! materializing an [`AppTrace`] first. The engine consumes binary-format
//! [`TraceItem`]s one at a time, folds compute gaps into per-event
//! occurrences exactly the way `OccurrenceSeq::from_trace` does, and hands
//! each completed rank to the batch pipeline's threshold search
//! (`compress_seq`, the same indexed `ClusterCache` + rolling-hash
//! loop-folding). The result is **byte-identical** to compressing the
//! materialized trace — the differential tests in `tests/stream_equiv.rs`
//! pin that — while peak memory stays O(largest rank), not O(trace).
//!
//! Alongside compression, the engine segments every rank's stream into
//! collective-delimited phases and reports time-resolved metrics per phase
//! (load imbalance, transfer fraction, serialization fraction; see
//! [`phase`]).
//!
//! Input can come from any `Read`; [`ingest_path`] prefers a zero-copy
//! mmap of the file ([`mmap::TraceSource`]).

pub mod mmap;
pub mod phase;

pub use mmap::TraceSource;
pub use phase::{AppPhaseMetrics, PhaseMetrics};

use phase::{PhaseAggregator, RankPhaseTracker};
use pskel_signature::{
    compress_seq, AppSignature, EventKey, EventOccurrence, ExecutionSignature, OccurrenceSeq,
    RankSaturation, SignatureOptions,
};
use pskel_sim::SimDuration;
use pskel_store::binfmt::{TraceItem, TraceReader};
use pskel_trace::AppTrace;
use std::io::{self, Read};
use std::path::Path;

/// Options for streaming ingest.
#[derive(Clone, Copy, Debug)]
pub struct IngestOptions {
    /// Target compression ratio Q for the per-rank threshold search.
    pub target_q: f64,
    pub sig: SignatureOptions,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            target_q: 32.0,
            sig: SignatureOptions::default(),
        }
    }
}

/// Counters describing one ingest run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Bytes consumed from the source.
    pub bytes_read: u64,
    /// Stream frames (items) parsed.
    pub frames: u64,
    /// MPI events across all ranks.
    pub events: u64,
    /// Ranks ingested.
    pub ranks: usize,
    /// Largest number of in-flight event occurrences held for any single
    /// rank — the witness that memory is O(rank), not O(trace).
    pub peak_rank_events: usize,
    /// Whether the source was an mmap (only set by [`ingest_path`]).
    pub mapped: bool,
}

/// Everything a finished ingest produces.
#[derive(Clone, Debug)]
pub struct IngestReport {
    pub signature: AppSignature,
    /// Ranks that saturated the threshold search (same shape as
    /// `compress_app`).
    pub saturated: Vec<RankSaturation>,
    pub phases: AppPhaseMetrics,
    pub stats: IngestStats,
}

/// A progress snapshot handed to the callback during ingest.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestProgress {
    pub bytes_read: u64,
    /// Total source size when knowable (file / Content-Length uploads).
    pub total_bytes: Option<u64>,
    pub frames: u64,
    pub events: u64,
    pub ranks_done: usize,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// One rank's in-flight state: the occurrence sequence under construction.
struct RankBuilder {
    rank: usize,
    events: Vec<EventOccurrence>,
    /// Compute accumulated since the last MPI event, seconds. Same f64
    /// accumulation order as `OccurrenceSeq::from_trace` — this is part of
    /// the byte-identity contract.
    pending: f64,
    phases: RankPhaseTracker,
}

/// Incremental signature construction: feed [`TraceItem`]s in stream
/// order, then [`finish`](IngestEngine::finish) with the trailer's total
/// time. Each rank is compressed the moment its `ProcessEnd` arrives, so
/// construction overlaps with reading/uploading and completed ranks cost
/// only their (small) signatures.
pub struct IngestEngine {
    opts: IngestOptions,
    app: String,
    current: Option<RankBuilder>,
    sigs: Vec<ExecutionSignature>,
    saturated: Vec<RankSaturation>,
    phases: PhaseAggregator,
    events: u64,
    peak_rank_events: usize,
}

impl IngestEngine {
    pub fn new(app: impl Into<String>, opts: IngestOptions) -> IngestEngine {
        IngestEngine {
            opts,
            app: app.into(),
            current: None,
            sigs: Vec::new(),
            saturated: Vec::new(),
            phases: PhaseAggregator::new(),
            events: 0,
            peak_rank_events: 0,
        }
    }

    pub fn ranks_done(&self) -> usize {
        self.sigs.len()
    }

    pub fn events(&self) -> u64 {
        self.events
    }

    /// Consume one stream item.
    pub fn push(&mut self, item: TraceItem) -> io::Result<()> {
        match item {
            TraceItem::ProcessStart { rank } => {
                if self.current.is_some() {
                    return Err(invalid("process frame opened inside another"));
                }
                self.current = Some(RankBuilder {
                    rank,
                    events: Vec::new(),
                    pending: 0.0,
                    phases: RankPhaseTracker::new(),
                });
            }
            TraceItem::Compute { dur } => {
                let b = self.rank_mut()?;
                b.pending += dur.as_secs_f64();
                b.phases.compute(dur.as_nanos());
            }
            TraceItem::Mpi(e) => {
                let b = self.rank_mut()?;
                b.phases.event(&e);
                let dur = e.duration();
                b.events.push(EventOccurrence {
                    key: EventKey {
                        kind: e.kind,
                        peer: e.peer,
                        tag: e.tag,
                        slots: e.slots,
                    },
                    bytes: e.bytes,
                    dur,
                    compute_before: b.pending,
                });
                b.pending = 0.0;
                self.events += 1;
            }
            TraceItem::ProcessEnd { finish } => {
                let b = self
                    .current
                    .take()
                    .ok_or_else(|| invalid("process end without a matching start"))?;
                self.peak_rank_events = self.peak_rank_events.max(b.events.len());
                self.phases.add_rank(b.phases.finish(finish));
                let seq = OccurrenceSeq {
                    rank: b.rank,
                    events: b.events,
                    tail_compute: b.pending,
                };
                let out = compress_seq(seq, self.opts.target_q, self.opts.sig);
                if out.saturated {
                    self.saturated.push(RankSaturation {
                        rank: out.signature.rank,
                        ratio: out.signature.compression_ratio(),
                        threshold: out.signature.threshold,
                    });
                }
                self.sigs.push(out.signature);
            }
        }
        Ok(())
    }

    /// Seal the run once the stream trailer has been seen.
    pub fn finish(self, total_time: SimDuration) -> io::Result<IngestReport> {
        if self.current.is_some() {
            return Err(invalid("stream ended inside an open process frame"));
        }
        let ranks = self.sigs.len();
        Ok(IngestReport {
            signature: AppSignature {
                app: self.app,
                sigs: self.sigs,
                app_time_secs: total_time.as_secs_f64(),
            },
            saturated: self.saturated,
            phases: self.phases.aggregate(),
            stats: IngestStats {
                events: self.events,
                ranks,
                peak_rank_events: self.peak_rank_events,
                ..IngestStats::default()
            },
        })
    }

    fn rank_mut(&mut self) -> io::Result<&mut RankBuilder> {
        self.current
            .as_mut()
            .ok_or_else(|| invalid("record outside a process frame"))
    }
}

/// How often (in frames) the progress callback fires.
const PROGRESS_EVERY: u64 = 65_536;

/// Ingest a binary trace from any reader, invoking `progress` periodically.
/// `total_bytes` sizes the progress bar when the source length is known.
pub fn ingest_reader<R: Read>(
    r: R,
    opts: &IngestOptions,
    total_bytes: Option<u64>,
    progress: &mut dyn FnMut(&IngestProgress),
) -> io::Result<IngestReport> {
    let mut tr = TraceReader::new(r)?;
    let mut engine = IngestEngine::new(tr.app().to_string(), *opts);
    let mut last_tick = 0u64;
    while let Some(item) = tr.next_item()? {
        let rank_done = matches!(item, TraceItem::ProcessEnd { .. });
        engine.push(item)?;
        let frames = tr.frame_index();
        if rank_done || frames - last_tick >= PROGRESS_EVERY {
            last_tick = frames;
            progress(&IngestProgress {
                bytes_read: tr.byte_offset(),
                total_bytes,
                frames,
                events: engine.events(),
                ranks_done: engine.ranks_done(),
            });
        }
    }
    let total_time = tr
        .total_time()
        .ok_or_else(|| invalid("trace stream ended without trailer"))?;
    let (bytes_read, frames) = (tr.byte_offset(), tr.frame_index());
    let mut report = engine.finish(total_time)?;
    report.stats.bytes_read = bytes_read;
    report.stats.frames = frames;
    progress(&IngestProgress {
        bytes_read,
        total_bytes,
        frames,
        events: report.stats.events,
        ranks_done: report.stats.ranks,
    });
    Ok(report)
}

/// Ingest a binary trace file, zero-copy via mmap where possible.
pub fn ingest_path(
    path: impl AsRef<Path>,
    opts: &IngestOptions,
    progress: &mut dyn FnMut(&IngestProgress),
) -> io::Result<IngestReport> {
    let path = path.as_ref();
    let src = TraceSource::open(path)?;
    let total = src.total_bytes();
    let mapped = src.is_mapped();
    let mut report = match src {
        #[cfg(unix)]
        TraceSource::Mapped { map, .. } => ingest_reader(map.as_slice(), opts, total, progress),
        TraceSource::Buffered(f) => ingest_reader(io::BufReader::new(f), opts, total, progress),
    }
    .map_err(|e| pskel_trace::io::annotate("ingesting trace", path, e))?;
    report.stats.mapped = mapped;
    Ok(report)
}

/// Batch reference for the differential tests and the bench: compress a
/// materialized trace with the same options and package it as a report
/// (without phase metrics, which only the streaming path computes).
pub fn batch_signature(trace: &AppTrace, opts: &IngestOptions) -> AppSignature {
    pskel_signature::compress_app(trace, opts.target_q, opts.sig).signature
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_store::binfmt::write_trace_binary;

    fn encode(trace: &AppTrace) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, trace).unwrap();
        buf
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let trace = pskel_trace::synthetic_app_trace(4, 800, 0xC0FFEE);
        let buf = encode(&trace);
        let opts = IngestOptions::default();
        let report = ingest_reader(buf.as_slice(), &opts, None, &mut |_| {}).unwrap();
        let batch = batch_signature(&trace, &opts);
        assert_eq!(report.signature, batch);
    }

    #[test]
    fn progress_reports_monotone_offsets_and_final_totals() {
        let trace = pskel_trace::synthetic_app_trace(3, 500, 0xBEEF);
        let buf = encode(&trace);
        let total = buf.len() as u64;
        let mut seen: Vec<IngestProgress> = Vec::new();
        let report = ingest_reader(
            buf.as_slice(),
            &IngestOptions::default(),
            Some(total),
            &mut |p| seen.push(*p),
        )
        .unwrap();
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[0].bytes_read <= w[1].bytes_read));
        let last = seen.last().unwrap();
        assert_eq!(last.bytes_read, total);
        assert_eq!(last.ranks_done, 3);
        assert_eq!(report.stats.bytes_read, total);
        assert_eq!(report.stats.ranks, 3);
        assert!(report.stats.frames > 0);
    }

    #[test]
    fn peak_rank_events_bounds_memory() {
        let trace = pskel_trace::synthetic_app_trace(4, 300, 0x5EED);
        let buf = encode(&trace);
        let report =
            ingest_reader(buf.as_slice(), &IngestOptions::default(), None, &mut |_| {}).unwrap();
        let max_rank_events = trace
            .procs
            .iter()
            .map(|p| p.records.iter().filter(|r| r.as_mpi().is_some()).count())
            .max()
            .unwrap();
        assert_eq!(report.stats.peak_rank_events, max_rank_events);
        assert!(
            (report.stats.peak_rank_events as u64) < report.stats.events,
            "peak must be per-rank, not whole-trace"
        );
    }

    #[test]
    fn phases_are_detected_on_synthetic_traces() {
        let trace = pskel_trace::synthetic_app_trace(4, 400, 0xAB);
        let buf = encode(&trace);
        let report =
            ingest_reader(buf.as_slice(), &IngestOptions::default(), None, &mut |_| {}).unwrap();
        // Synthetic traces contain collectives, so phases must appear and
        // carry coherent fractions.
        assert!(report.phases.nphases() > 0);
        for p in &report.phases.phases {
            assert!(p.ranks > 0 && p.ranks <= 4);
            assert!((0.0..=1.0).contains(&p.transfer_fraction), "{p:?}");
            assert!((0.0..=1.0).contains(&p.serialization_fraction), "{p:?}");
            assert!((0.0..=1.0).contains(&p.load_imbalance), "{p:?}");
            assert!(p.end_secs >= p.start_secs, "{p:?}");
        }
    }

    #[test]
    fn ingest_path_roundtrips_and_maps() {
        let dir = std::env::temp_dir().join("pskel-ingest-path");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.pskt");
        let trace = pskel_trace::synthetic_app_trace(2, 300, 0x77);
        pskel_store::binfmt::save_trace_auto(&path, &trace).unwrap();

        let opts = IngestOptions::default();
        let report = ingest_path(&path, &opts, &mut |_| {}).unwrap();
        assert_eq!(report.signature, batch_signature(&trace, &opts));
        #[cfg(unix)]
        assert!(report.stats.mapped);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_error_names_path_and_offset() {
        let dir = std::env::temp_dir().join("pskel-ingest-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.pskt");
        let trace = pskel_trace::synthetic_app_trace(2, 200, 0x13);
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() * 2 / 3);
        std::fs::write(&path, &buf).unwrap();

        let err = ingest_path(&path, &IngestOptions::default(), &mut |_| {}).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cut.pskt"), "missing path in: {msg}");
        assert!(msg.contains("byte offset"), "missing offset in: {msg}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
