//! Zero-copy trace input: mmap the file on unix, buffered reads elsewhere.
//!
//! The reader side of ingest only needs `&[u8]` prefixes in order, so a
//! private read-only mapping gives the kernel full freedom to fault pages
//! in sequentially and drop them behind the cursor — peak resident memory
//! stays bounded by the page cache's working set, not the file size. The
//! same raw-libc pattern as the serve crate's signal handling keeps this
//! std-only.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only memory mapping of a whole file.
#[cfg(unix)]
pub struct MappedTrace {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

#[cfg(unix)]
// The mapping is private and read-only; nothing mutates it after creation.
unsafe impl Send for MappedTrace {}
#[cfg(unix)]
unsafe impl Sync for MappedTrace {}

#[cfg(unix)]
impl MappedTrace {
    /// Map `file` read-only. Fails for empty files (mmap of length 0 is
    /// invalid) and on any mmap error; callers fall back to buffered reads.
    pub fn map(file: &File) -> io::Result<MappedTrace> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(io::Error::other)?;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot mmap an empty file",
            ));
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedTrace { ptr, len })
    }

    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(unix)]
impl Drop for MappedTrace {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

/// A trace byte source: an mmap'd slice where possible, a plain file
/// otherwise. Either way it is a `Read` over the trace bytes plus a known
/// total length for progress reporting.
pub enum TraceSource {
    #[cfg(unix)]
    Mapped {
        map: MappedTrace,
        pos: usize,
    },
    Buffered(File),
}

impl TraceSource {
    /// Open `path`, preferring an mmap; falls back to buffered file I/O
    /// when mapping fails (empty file, exotic filesystem, non-unix).
    pub fn open(path: impl AsRef<Path>) -> io::Result<TraceSource> {
        let path = path.as_ref();
        let file =
            File::open(path).map_err(|e| pskel_trace::io::annotate("opening trace", path, e))?;
        #[cfg(unix)]
        {
            if let Ok(map) = MappedTrace::map(&file) {
                return Ok(TraceSource::Mapped { map, pos: 0 });
            }
        }
        Ok(TraceSource::Buffered(file))
    }

    /// Total bytes in the source, when knowable.
    pub fn total_bytes(&self) -> Option<u64> {
        match self {
            #[cfg(unix)]
            TraceSource::Mapped { map, .. } => Some(map.len() as u64),
            TraceSource::Buffered(f) => f.metadata().ok().map(|m| m.len()),
        }
    }

    /// True when the source is an actual memory mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            TraceSource::Mapped { .. } => true,
            TraceSource::Buffered(_) => false,
        }
    }
}

impl Read for TraceSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            TraceSource::Mapped { map, pos } => {
                let slice = map.as_slice();
                let n = buf.len().min(slice.len() - *pos);
                buf[..n].copy_from_slice(&slice[*pos..*pos + n]);
                *pos += n;
                Ok(n)
            }
            TraceSource::Buffered(f) => f.read(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapped_source_reads_whole_file() {
        let dir = std::env::temp_dir().join("pskel-ingest-mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let mut src = TraceSource::open(&path).unwrap();
        assert_eq!(src.total_bytes(), Some(10_000));
        let mut back = Vec::new();
        src.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload);

        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unix_prefers_mmap_and_empty_file_falls_back() {
        let dir = std::env::temp_dir().join("pskel-ingest-mmap-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.bin");
        std::fs::write(&full, b"abc").unwrap();
        assert!(TraceSource::open(&full).unwrap().is_mapped());

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        let src = TraceSource::open(&empty).unwrap();
        assert!(!src.is_mapped(), "empty file cannot be mapped");
        assert_eq!(src.total_bytes(), Some(0));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_error_names_the_path() {
        let err = match TraceSource::open("/nonexistent/trace77.pskt") {
            Err(e) => e,
            Ok(_) => panic!("open of a missing file must fail"),
        };
        assert!(err.to_string().contains("trace77.pskt"), "got: {err}");
    }
}
