//! Differential property tests: streaming ingest is **byte-identical** to
//! the batch compression path on arbitrary traces — same structs, same JSON
//! bytes — and both agree with the naive reference search from
//! `pskel_signature::reference`, the executable specification the optimized
//! pipeline is pinned against.

use proptest::prelude::*;
use pskel_ingest::{batch_signature, ingest_reader, IngestOptions};
use pskel_signature::reference::naive_compress_process;
use pskel_signature::SignatureOptions;
use pskel_sim::{SimDuration, SimTime};
use pskel_store::binfmt::write_trace_binary;
use pskel_trace::{AppTrace, MpiEvent, OpKind, ProcessTrace, Record};
use std::io::Read;

fn op_kind() -> BoxedStrategy<OpKind> {
    prop::sample::select(OpKind::ALL.to_vec())
}

/// Events with loosely realistic sizes and times, so the threshold search
/// exercises real clustering decisions rather than degenerate extremes.
fn mpi_event() -> BoxedStrategy<MpiEvent> {
    (
        op_kind(),
        prop_oneof![Just(None::<u32>), (0u32..8).prop_map(Some)],
        prop_oneof![Just(None::<u64>), (0u64..4).prop_map(Some)],
        0u64..10_000,
        prop::collection::vec(0u32..4, 0..3),
        (0u64..1_000_000, 0u64..100_000),
    )
        .prop_map(|(kind, peer, tag, bytes, slots, (start, dur))| MpiEvent {
            kind,
            peer,
            tag,
            bytes,
            slots,
            start: SimTime(start),
            end: SimTime(start + dur),
        })
        .boxed()
}

fn record() -> BoxedStrategy<Record> {
    prop_oneof![
        (0u64..2_000_000_000).prop_map(|n| Record::Compute {
            dur: SimDuration(n)
        }),
        mpi_event().prop_map(Record::Mpi),
    ]
    .boxed()
}

fn app_trace(max_ranks: usize, max_records: usize) -> BoxedStrategy<AppTrace> {
    (
        "[a-z]{1,8}",
        prop::collection::vec(
            (
                prop::collection::vec(record(), 0..max_records),
                any::<u64>(),
            ),
            0..max_ranks,
        ),
        any::<u64>(),
    )
        .prop_map(|(app, ranks, total)| {
            let procs = ranks
                .into_iter()
                .enumerate()
                .map(|(rank, (records, finish))| ProcessTrace {
                    rank,
                    records,
                    finish: SimTime(finish),
                })
                .collect();
            AppTrace {
                app,
                procs,
                total_time: SimDuration(total),
            }
        })
        .boxed()
}

fn encode(trace: &AppTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace_binary(&mut buf, trace).unwrap();
    buf
}

/// A reader that hands out at most `chunk` bytes per call, simulating a
/// trace arriving over a network in small pieces.
struct Dribble<'a> {
    data: &'a [u8],
    chunk: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len());
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_equals_batch_byte_for_byte(
        trace in app_trace(5, 40),
        target in 1.0f64..64.0,
    ) {
        let opts = IngestOptions { target_q: target, sig: SignatureOptions::default() };
        let buf = encode(&trace);
        let streamed = ingest_reader(buf.as_slice(), &opts, None, &mut |_| {}).unwrap();
        let batch = batch_signature(&trace, &opts);
        prop_assert_eq!(&streamed.signature, &batch);
        // Byte identity, not just structural equality: the serialized
        // artifacts (what the store hashes and the server returns) match.
        let a = serde_json::to_string(&streamed.signature).unwrap();
        let b = serde_json::to_string(&batch).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn chunked_arrival_changes_nothing(
        trace in app_trace(4, 30),
        chunk in 1usize..64,
    ) {
        let opts = IngestOptions::default();
        let buf = encode(&trace);
        let dribbled = ingest_reader(
            Dribble { data: &buf, chunk },
            &opts,
            None,
            &mut |_| {},
        ).unwrap();
        let whole = ingest_reader(buf.as_slice(), &opts, None, &mut |_| {}).unwrap();
        prop_assert_eq!(dribbled.signature, whole.signature);
        prop_assert_eq!(dribbled.phases, whole.phases);
        prop_assert_eq!(dribbled.stats.events, whole.stats.events);
    }
}

proptest! {
    // The naive reference is O(events x clusters); keep its inputs small.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_agrees_with_naive_reference(
        trace in app_trace(3, 20),
        target in 1.0f64..16.0,
    ) {
        let opts = IngestOptions { target_q: target, sig: SignatureOptions::default() };
        let buf = encode(&trace);
        let streamed = ingest_reader(buf.as_slice(), &opts, None, &mut |_| {}).unwrap();
        for (sig, proc_trace) in streamed.signature.sigs.iter().zip(&trace.procs) {
            let naive = naive_compress_process(proc_trace, target, opts.sig);
            prop_assert_eq!(sig, &naive.signature);
        }
    }
}

#[test]
fn saturation_reporting_matches_batch() {
    // Distinct-kind events cannot compress: every rank saturates, and the
    // streaming report must list the same ranks as compress_app.
    let mk_rank = |rank: usize| {
        let records = [OpKind::Send, OpKind::Recv, OpKind::Isend, OpKind::Irecv]
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                Record::Mpi(MpiEvent {
                    kind,
                    peer: Some(i as u32),
                    tag: Some(i as u64),
                    bytes: 64,
                    slots: vec![],
                    start: SimTime(i as u64 * 100),
                    end: SimTime(i as u64 * 100 + 10),
                })
            })
            .collect();
        ProcessTrace {
            rank,
            records,
            finish: SimTime(1_000),
        }
    };
    let trace = AppTrace::new("sat", vec![mk_rank(0), mk_rank(1)]);
    let opts = IngestOptions {
        target_q: 4.0,
        sig: SignatureOptions::default(),
    };
    let buf = encode(&trace);
    let streamed = ingest_reader(buf.as_slice(), &opts, None, &mut |_| {}).unwrap();
    let batch = pskel_signature::compress_app(&trace, opts.target_q, opts.sig);
    assert_eq!(streamed.saturated, batch.saturated);
    assert_eq!(streamed.saturated.len(), 2);
}
