//! Skeleton construction from an execution signature (paper §3.3).
//!
//! Given the signature and an integer scaling factor K:
//!
//! 1. loop iteration counts are divided by K — the quotient survives as a
//!    loop over the *original* (unscaled) body; remainder iterations become
//!    part of the **unreduced part**. Division is pushed through loop
//!    nests: a loop of 12 iterations whose body contains a 20-iteration
//!    loop represents 240 executions of the inner body, so K = 54 keeps 4
//!    full inner iterations rather than dissolving all structure (which
//!    would destroy pipelined communication patterns like LU's wavefront);
//! 2. groups of K occurrences of identical operations anywhere in the
//!    unreduced part collapse into a single full-parameter occurrence;
//! 3. the remaining unreduced operations are scaled down by K — compute
//!    durations divide exactly; message sizes divide but keep their fixed
//!    latency, the paper's acknowledged "last resort" inaccuracy.
//!
//! An optional improvement over the paper (`consolidate_residue`, off by
//! default for fidelity, exercised by the ablation benches) replaces the
//! `c mod K` leftover occurrences of an operation by *one* occurrence
//! scaled by `(c mod K)/K` instead of `c mod K` occurrences each scaled by
//! `1/K`, which avoids multiplying un-scalable latency.

use crate::ir::{RankSkeleton, SkelNode, SkelOp};
use pskel_signature::{ClusterInfo, ExecutionSignature, Tok};
use pskel_trace::OpKind;
use std::collections::HashMap;

/// How compute durations are reproduced in the skeleton.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ComputeModel {
    /// Every iteration performs the mean duration (the paper's approach).
    #[default]
    Mean,
    /// Durations are sampled from the per-cluster empirical distribution
    /// (mean + std), the paper's §4.4 proposed refinement.
    Distribution,
}

/// Options controlling skeleton construction.
#[derive(Clone, Copy, Debug)]
pub struct ConstructOptions {
    pub compute_model: ComputeModel,
    /// Consolidate leftover occurrences (see module docs). `false`
    /// reproduces the paper's literal per-operation 1/K scaling.
    pub consolidate_residue: bool,
    /// Computation shorter than this is dropped from the skeleton (noise
    /// floor; zero-length busy loops are pure overhead).
    pub min_compute_secs: f64,
}

impl Default for ConstructOptions {
    fn default() -> Self {
        ConstructOptions {
            compute_model: ComputeModel::Mean,
            // Default to the paper's literal rule; consolidation is this
            // implementation's documented improvement (see the ablation
            // bench), not part of the reproduced system.
            consolidate_residue: false,
            min_compute_secs: 1e-9,
        }
    }
}

/// Build one rank's skeleton program from its signature with scaling `k`.
pub fn construct_rank(sig: &ExecutionSignature, k: u64, opts: &ConstructOptions) -> RankSkeleton {
    assert!(k >= 1, "scaling factor must be at least 1");
    let mut entries = Vec::new();
    flatten_scaled(&sig.tokens, 1, k, sig, opts, &mut entries);
    let segments = segment(entries, sig);

    // Total unreduced occurrences per unit, for grouping and residues.
    // Keys are probed through a reusable buffer so each distinct unit
    // allocates its key vector exactly once.
    let mut totals: HashMap<Vec<u32>, u64> = HashMap::new();
    let mut keybuf: Vec<u32> = Vec::new();
    for s in &segments {
        if let Seg::Unit(members) = s {
            keybuf.clear();
            keybuf.extend(members.iter().map(|m| m.id));
            match totals.get_mut(keybuf.as_slice()) {
                Some(t) => *t += members[0].mult,
                None => {
                    totals.insert(keybuf.clone(), members[0].mult);
                }
            }
        }
    }

    let mut emitter = Emitter {
        sig,
        opts,
        k,
        totals,
        states: HashMap::new(),
        pool: Vec::new(),
        key_buf: keybuf,
        nodes: Vec::new(),
    };
    for s in segments {
        match s {
            Seg::Kept(node) => emitter.nodes.push(node),
            Seg::Unit(members) => emitter.unit(&members),
        }
    }
    let mut nodes = emitter.nodes;

    // The tail computation scales straightforwardly.
    let tail = sig.tail_compute / k as f64;
    if tail >= opts.min_compute_secs {
        push_compute_merged(&mut nodes, tail, 0.0, opts);
    }
    RankSkeleton {
        rank: sig.rank,
        nodes,
    }
}

enum Entry {
    Kept(SkelNode),
    /// `mult` consecutive unreduced occurrences of symbol `id`, each
    /// preceded by `compute` seconds of computation.
    Raw {
        id: u32,
        mult: u64,
        compute: f64,
    },
}

#[derive(Clone, Debug)]
struct RawMember {
    id: u32,
    mult: u64,
    compute: f64,
}

/// A schedulable grouping unit of the unreduced part.
enum Seg {
    Kept(SkelNode),
    /// Either a single operation without request slots, or a complete
    /// *nonblocking clique*: the run of operations from a nonblocking
    /// initiation to the wait that closes its last open slot (e.g.
    /// `isend, irecv, waitall`). Cliques must be grouped and scaled as one
    /// unit: replicating an isend without its wait would reuse its request
    /// slot, and serializing the two directions of an exchange would
    /// deadlock under the rendezvous protocol.
    Unit(Vec<RawMember>),
}

/// Split the entry stream into grouping units, keeping nonblocking cliques
/// together.
fn segment(entries: Vec<Entry>, sig: &ExecutionSignature) -> Vec<Seg> {
    let mut out = Vec::new();
    let mut open: Vec<u32> = Vec::new(); // currently open request slots
    let mut unit: Vec<RawMember> = Vec::new();
    for e in entries {
        match e {
            Entry::Kept(node) => {
                assert!(
                    open.is_empty(),
                    "kept loop interleaves an open nonblocking region; \
                     this communication structure is not supported"
                );
                out.push(Seg::Kept(node));
            }
            Entry::Raw { id, mult, compute } => {
                let key = &sig.clusters[id as usize].key;
                if !unit.is_empty() {
                    assert_eq!(
                        unit[0].mult, mult,
                        "nonblocking clique members must share multiplicity"
                    );
                }
                unit.push(RawMember { id, mult, compute });
                match key.kind {
                    OpKind::Isend | OpKind::Irecv => {
                        open.extend(key.slots.iter().copied());
                    }
                    OpKind::Wait | OpKind::Waitall => {
                        open.retain(|s| !key.slots.contains(s));
                    }
                    _ => {}
                }
                if open.is_empty() {
                    out.push(Seg::Unit(std::mem::take(&mut unit)));
                }
            }
        }
    }
    assert!(
        open.is_empty() && unit.is_empty(),
        "unreduced part ends with open nonblocking requests"
    );
    out
}

/// Flatten `toks`, representing `mult` executions of the sequence, all to
/// be reduced by `k`. Loops whose *total* repetitions (count × mult) reach
/// `k` keep `total / k` intact iterations; the rest of the weight recurses
/// into the body, so nested structure survives scaling.
fn flatten_scaled(
    toks: &[Tok],
    mult: u64,
    k: u64,
    sig: &ExecutionSignature,
    opts: &ConstructOptions,
    out: &mut Vec<Entry>,
) {
    for tok in toks {
        match tok {
            Tok::Sym { id, compute_before } => out.push(Entry::Raw {
                id: *id,
                mult,
                compute: *compute_before,
            }),
            Tok::Loop { count, body } => {
                let total = count
                    .checked_mul(mult)
                    .expect("loop repetition count overflow");
                let kept = total / k;
                let rem = total % k;
                if kept >= 1 {
                    out.push(Entry::Kept(SkelNode::Loop {
                        count: kept,
                        body: body_to_nodes(body, sig, opts),
                    }));
                }
                if rem > 0 {
                    flatten_scaled(body, rem, k, sig, opts, out);
                }
            }
        }
    }
}

/// Convert a kept loop body (original parameters) into skeleton nodes.
fn body_to_nodes(toks: &[Tok], sig: &ExecutionSignature, opts: &ConstructOptions) -> Vec<SkelNode> {
    let mut nodes = Vec::new();
    for tok in toks {
        match tok {
            Tok::Sym { id, compute_before } => {
                let cluster = cluster_of(sig, *id);
                let jitter = match opts.compute_model {
                    ComputeModel::Mean => 0.0,
                    ComputeModel::Distribution => cluster.compute_std_secs(),
                };
                if *compute_before >= opts.min_compute_secs {
                    nodes.push(SkelNode::Op(SkelOp::Compute {
                        secs: *compute_before,
                        jitter_std: jitter,
                    }));
                }
                nodes.push(SkelNode::Op(op_of(cluster)));
            }
            Tok::Loop { count, body } => nodes.push(SkelNode::Loop {
                count: *count,
                body: body_to_nodes(body, sig, opts),
            }),
        }
    }
    nodes
}

#[derive(Debug, Default)]
struct UnitState {
    acc: u64,
    /// Per-member unemitted compute time (seconds), kept exact: every
    /// entry deposits `mult × compute / K`; emissions withdraw.
    budgets: Vec<f64>,
}

/// Streaming emitter for the unreduced part. Per unit (single op or
/// nonblocking clique): a running occurrence count triggers a
/// full-parameter emission each time it crosses a multiple of K ("groups
/// of K identical operations anywhere" — paper step 2); the final residue
/// (total mod K) is emitted at the unit's last appearance with parameters
/// scaled down by K (paper step 3). Compute time is tracked as an exact
/// budget so the skeleton's total computation is the application's
/// divided by K to the last nanosecond.
struct Emitter<'a> {
    sig: &'a ExecutionSignature,
    opts: &'a ConstructOptions,
    k: u64,
    totals: HashMap<Vec<u32>, u64>,
    /// Unit key -> index into `pool`; looked up by slice so the hot path
    /// never allocates a key per appearance.
    states: HashMap<Vec<u32>, usize>,
    pool: Vec<UnitState>,
    key_buf: Vec<u32>,
    nodes: Vec<SkelNode>,
}

impl Emitter<'_> {
    fn jitter(&self, id: u32, scale: f64) -> f64 {
        match self.opts.compute_model {
            ComputeModel::Mean => 0.0,
            ComputeModel::Distribution => cluster_of(self.sig, id).compute_std_secs() * scale,
        }
    }

    fn unit(&mut self, members: &[RawMember]) {
        let k = self.k;
        let mut key = std::mem::take(&mut self.key_buf);
        key.clear();
        key.extend(members.iter().map(|m| m.id));
        let mult = members[0].mult;
        let total = self.totals[key.as_slice()];
        let idx = match self.states.get(key.as_slice()) {
            Some(&i) => i,
            None => {
                let i = self.pool.len();
                self.pool.push(UnitState {
                    acc: 0,
                    budgets: vec![0.0; members.len()],
                });
                self.states.insert(key.clone(), i);
                i
            }
        };
        // Take the state out by value so emissions below can borrow `self`.
        let mut st = std::mem::take(&mut self.pool[idx]);
        for (i, m) in members.iter().enumerate() {
            st.budgets[i] += m.mult as f64 * m.compute / k as f64;
        }
        let before = st.acc;
        st.acc += mult;
        let after = st.acc;
        let fulls = after / k - before / k;

        if fulls > 0 {
            // Full-parameter emission: one unit stands for K occurrences.
            // Per-iteration compute is the entry's annotation, capped by
            // the available budget so totals stay exact.
            let mut body = Vec::new();
            for (i, m) in members.iter().enumerate() {
                let c = m.compute.min(st.budgets[i] / fulls as f64).max(0.0);
                st.budgets[i] -= c * fulls as f64;
                if c >= self.opts.min_compute_secs {
                    body.push(SkelNode::Op(SkelOp::Compute {
                        secs: c,
                        jitter_std: self.jitter(m.id, 1.0),
                    }));
                }
                body.push(SkelNode::Op(op_of(cluster_of(self.sig, m.id))));
            }
            if fulls == 1 {
                self.nodes.extend(body);
            } else {
                self.nodes.push(SkelNode::Loop { count: fulls, body });
            }
        }

        if after == total {
            // Last appearance: emit the residue and drain budgets.
            let residue = total % k;
            if residue > 0 {
                if self.opts.consolidate_residue {
                    let factor = residue as f64 / k as f64;
                    for (i, m) in members.iter().enumerate() {
                        let c = st.budgets[i].max(0.0);
                        st.budgets[i] = 0.0;
                        if c >= self.opts.min_compute_secs {
                            self.nodes.push(SkelNode::Op(SkelOp::Compute {
                                secs: c,
                                jitter_std: self.jitter(m.id, factor),
                            }));
                        }
                        self.nodes.push(SkelNode::Op(
                            op_of(cluster_of(self.sig, m.id)).scaled(factor),
                        ));
                    }
                } else {
                    // Paper-literal: each leftover occurrence individually
                    // scaled by 1/K.
                    let mut body = Vec::new();
                    for (i, m) in members.iter().enumerate() {
                        let c = (st.budgets[i] / residue as f64).max(0.0);
                        st.budgets[i] = 0.0;
                        if c >= self.opts.min_compute_secs {
                            body.push(SkelNode::Op(SkelOp::Compute {
                                secs: c,
                                jitter_std: self.jitter(m.id, 1.0 / k as f64),
                            }));
                        }
                        body.push(SkelNode::Op(
                            op_of(cluster_of(self.sig, m.id)).scaled(1.0 / k as f64),
                        ));
                    }
                    if residue == 1 {
                        self.nodes.extend(body);
                    } else {
                        self.nodes.push(SkelNode::Loop {
                            count: residue,
                            body,
                        });
                    }
                }
            } else {
                // Perfectly divisible: flush any remaining compute budget.
                for (i, m) in members.iter().enumerate() {
                    let c = st.budgets[i].max(0.0);
                    st.budgets[i] = 0.0;
                    if c >= self.opts.min_compute_secs {
                        let j = self.jitter(m.id, 1.0);
                        push_compute_merged(&mut self.nodes, c, j, self.opts);
                    }
                }
            }
        }
        self.pool[idx] = st;
        self.key_buf = key;
    }
}

/// Append a compute op, merging with a directly preceding compute
/// (independent variances add).
fn push_compute_merged(
    nodes: &mut Vec<SkelNode>,
    secs: f64,
    jitter_std: f64,
    opts: &ConstructOptions,
) {
    if secs < opts.min_compute_secs && jitter_std == 0.0 {
        return;
    }
    if let Some(SkelNode::Op(SkelOp::Compute {
        secs: s,
        jitter_std: j,
    })) = nodes.last_mut()
    {
        *s += secs;
        *j = (*j * *j + jitter_std * jitter_std).sqrt();
        return;
    }
    nodes.push(SkelNode::Op(SkelOp::Compute { secs, jitter_std }));
}

fn cluster_of(sig: &ExecutionSignature, id: u32) -> &ClusterInfo {
    &sig.clusters[id as usize]
}

/// Translate a cluster centroid into the skeleton operation it stands for.
pub fn op_of(c: &ClusterInfo) -> SkelOp {
    let key = &c.key;
    let bytes = c.bytes();
    match key.kind {
        OpKind::Send => SkelOp::Send {
            peer: key.peer.expect("send without destination"),
            tag: key.tag.unwrap_or(0),
            bytes,
        },
        OpKind::Isend => SkelOp::Isend {
            peer: key.peer.expect("isend without destination"),
            tag: key.tag.unwrap_or(0),
            bytes,
            slot: key.slots[0],
        },
        OpKind::Recv => SkelOp::Recv {
            peer: key.peer,
            tag: key.tag,
        },
        OpKind::Irecv => SkelOp::Irecv {
            peer: key.peer,
            tag: key.tag,
            slot: key.slots[0],
        },
        OpKind::Wait => SkelOp::Wait { slot: key.slots[0] },
        OpKind::Waitall => SkelOp::Waitall {
            slots: key.slots.clone(),
        },
        kind => SkelOp::Coll {
            kind,
            root: key.peer,
            bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_signature::EventKey;

    fn send_cluster(peer: u32, bytes: u64) -> ClusterInfo {
        ClusterInfo {
            key: EventKey {
                kind: OpKind::Send,
                peer: Some(peer),
                tag: Some(0),
                slots: vec![],
            },
            mean_bytes: bytes as f64,
            mean_dur_secs: 1e-4,
            count: 1,
            mean_compute_secs: 0.0,
            m2_compute: 0.0,
        }
    }

    fn sig_with(tokens: Vec<Tok>, clusters: Vec<ClusterInfo>) -> ExecutionSignature {
        let trace_len = tokens.iter().map(Tok::expanded_len).sum();
        ExecutionSignature {
            rank: 0,
            tokens,
            clusters,
            tail_compute: 0.0,
            trace_len,
            threshold: 0.0,
        }
    }

    fn sym(id: u32, c: f64) -> Tok {
        Tok::Sym {
            id,
            compute_before: c,
        }
    }

    fn all_ops(nodes: &[SkelNode]) -> Vec<SkelOp> {
        let mut out = Vec::new();
        fn walk(nodes: &[SkelNode], out: &mut Vec<SkelOp>) {
            for n in nodes {
                match n {
                    SkelNode::Op(op) => out.push(op.clone()),
                    SkelNode::Loop { body, .. } => walk(body, out),
                }
            }
        }
        walk(nodes, &mut out);
        out
    }

    /// Expanded (per-execution) op list, loops unrolled.
    fn expanded_ops(nodes: &[SkelNode]) -> Vec<SkelOp> {
        let mut out = Vec::new();
        fn walk(nodes: &[SkelNode], out: &mut Vec<SkelOp>) {
            for n in nodes {
                match n {
                    SkelNode::Op(op) => out.push(op.clone()),
                    SkelNode::Loop { count, body } => {
                        for _ in 0..*count {
                            walk(body, out);
                        }
                    }
                }
            }
        }
        walk(nodes, &mut out);
        out
    }

    fn compute_total(nodes: &[SkelNode]) -> f64 {
        expanded_ops(nodes)
            .iter()
            .map(|op| match op {
                SkelOp::Compute { secs, .. } => *secs,
                _ => 0.0,
            })
            .sum()
    }

    #[test]
    fn loop_division_keeps_quotient_and_unrolls_remainder() {
        // Loop of 23 iterations, K=10 -> loop of 2 + a residue representing
        // the 3 leftover iterations (consolidated: one 0.3-scaled op).
        let sig = sig_with(
            vec![Tok::Loop {
                count: 23,
                body: vec![sym(0, 0.1)],
            }],
            vec![send_cluster(1, 1000)],
        );
        let opts = ConstructOptions {
            consolidate_residue: true,
            ..Default::default()
        };
        let skel = construct_rank(&sig, 10, &opts);
        let ops = expanded_ops(&skel.nodes);
        let sends: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                SkelOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![1000, 1000, 300]);
        // Total compute: 23 * 0.1 / 10 = 0.23.
        assert!((compute_total(&skel.nodes) - 0.23).abs() < 1e-12);
    }

    #[test]
    fn paper_literal_mode_emits_each_leftover() {
        let sig = sig_with(
            vec![Tok::Loop {
                count: 23,
                body: vec![sym(0, 0.1)],
            }],
            vec![send_cluster(1, 1000)],
        );
        let opts = ConstructOptions {
            consolidate_residue: false,
            ..Default::default()
        };
        let skel = construct_rank(&sig, 10, &opts);
        let sends: Vec<u64> = expanded_ops(&skel.nodes)
            .iter()
            .filter_map(|op| match op {
                SkelOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        // Two full-size sends in the kept loop + 3 leftovers at 1/10.
        assert_eq!(sends, vec![1000, 1000, 100, 100, 100]);
    }

    #[test]
    fn grouping_collapses_k_identical_ops() {
        // 20 top-level identical sends, K=10 -> 2 full-parameter sends.
        let toks = (0..20).map(|_| sym(0, 0.05)).collect();
        let sig = sig_with(toks, vec![send_cluster(2, 500)]);
        let skel = construct_rank(&sig, 10, &ConstructOptions::default());
        let sends: Vec<SkelOp> = expanded_ops(&skel.nodes)
            .into_iter()
            .filter(|op| matches!(op, SkelOp::Send { .. }))
            .collect();
        assert_eq!(sends.len(), 2);
        assert!(sends.iter().all(|s| *s
            == SkelOp::Send {
                peer: 2,
                tag: 0,
                bytes: 500
            }));
    }

    #[test]
    fn grouped_compute_totals_are_exact() {
        // Computes 1..=20 (x0.01); K=10: the two group computes carry the
        // exact per-group sums divided by K (0.055 and 0.155).
        let toks = (1..=20).map(|i| sym(0, i as f64 * 0.01)).collect();
        let sig = sig_with(toks, vec![send_cluster(2, 500)]);
        let skel = construct_rank(&sig, 10, &ConstructOptions::default());
        let computes: Vec<f64> = expanded_ops(&skel.nodes)
            .iter()
            .filter_map(|op| match op {
                SkelOp::Compute { secs, .. } => Some(*secs),
                _ => None,
            })
            .collect();
        assert_eq!(computes.len(), 2);
        assert!((computes[0] - 0.055).abs() < 1e-12, "{computes:?}");
        assert!((computes[1] - 0.155).abs() < 1e-12, "{computes:?}");
    }

    #[test]
    fn nested_loop_division_preserves_inner_structure() {
        // Outer 12 x inner 20 = 240 inner executions; K = 54 must keep
        // 240/54 = 4 full inner iterations as a loop (LU's wavefront case),
        // not dissolve everything into grouped singletons.
        let sig = sig_with(
            vec![Tok::Loop {
                count: 12,
                body: vec![Tok::Loop {
                    count: 20,
                    body: vec![sym(0, 0.01)],
                }],
            }],
            vec![send_cluster(1, 777)],
        );
        let skel = construct_rank(&sig, 54, &ConstructOptions::default());
        let kept_loop = skel.nodes.iter().find_map(|n| match n {
            SkelNode::Loop { count, body } if !body.is_empty() => Some((*count, body.clone())),
            _ => None,
        });
        let (count, _) = kept_loop.expect("a kept loop must survive");
        assert_eq!(count, 4, "240 total inner executions / 54");
        // Residue: 240 % 54 = 24 leftover executions scaled by 1/54 each.
        let total_sends = expanded_ops(&skel.nodes)
            .iter()
            .filter(|op| matches!(op, SkelOp::Send { .. }))
            .count();
        assert_eq!(total_sends, 4 + 24);
        // Total compute is exactly 240 * 0.01 / 54.
        assert!((compute_total(&skel.nodes) - 2.4 / 54.0).abs() < 1e-9);
    }

    #[test]
    fn k_of_one_replays_the_signature() {
        let sig = sig_with(
            vec![Tok::Loop {
                count: 5,
                body: vec![sym(0, 0.2)],
            }],
            vec![send_cluster(1, 100)],
        );
        let skel = construct_rank(&sig, 1, &ConstructOptions::default());
        assert_eq!(skel.nodes.len(), 1);
        match &skel.nodes[0] {
            SkelNode::Loop { count, .. } => assert_eq!(*count, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn total_represented_time_shrinks_by_k_exactly() {
        let toks = vec![
            Tok::Loop {
                count: 100,
                body: vec![sym(0, 0.04)],
            },
            sym(0, 1.0),
        ];
        let sig = sig_with(toks, vec![send_cluster(1, 64)]);
        let k = 7;
        let skel = construct_rank(&sig, k, &ConstructOptions::default());
        let original = 100.0 * 0.04 + 1.0;
        let expect = original / k as f64;
        let total = compute_total(&skel.nodes);
        assert!(
            (total - expect).abs() < 1e-9,
            "compute {total} should be exactly {expect}"
        );
    }

    #[test]
    fn distribution_mode_sets_jitter() {
        let mut c = send_cluster(1, 100);
        c.count = 10;
        c.m2_compute = 0.9; // std = sqrt(0.9/9)
        let sig = sig_with(
            vec![Tok::Loop {
                count: 4,
                body: vec![sym(0, 0.5)],
            }],
            vec![c],
        );
        let opts = ConstructOptions {
            compute_model: ComputeModel::Distribution,
            ..Default::default()
        };
        let skel = construct_rank(&sig, 2, &opts);
        let jitters: Vec<f64> = all_ops(&skel.nodes)
            .into_iter()
            .filter_map(|op| match op {
                SkelOp::Compute { jitter_std, .. } => Some(jitter_std),
                _ => None,
            })
            .collect();
        assert!(!jitters.is_empty());
        assert!(jitters
            .iter()
            .all(|&j| (j - (0.9f64 / 9.0).sqrt()).abs() < 1e-12));
    }

    #[test]
    fn tail_compute_is_scaled() {
        let mut sig = sig_with(vec![sym(0, 0.0)], vec![send_cluster(1, 64)]);
        sig.tail_compute = 10.0;
        let skel = construct_rank(&sig, 5, &ConstructOptions::default());
        match skel.nodes.last().unwrap() {
            SkelNode::Op(SkelOp::Compute { secs, .. }) => assert!((secs - 2.0).abs() < 1e-12),
            other => panic!("expected tail compute, got {other:?}"),
        }
    }

    #[test]
    fn adjacent_computes_merge() {
        // Two symbols whose ops are fully grouped away leave only computes,
        // which must merge into single nodes rather than pile up.
        let toks: Vec<Tok> = (0..10).map(|_| sym(0, 0.1)).collect();
        let sig = sig_with(toks, vec![send_cluster(1, 10)]);
        let skel = construct_rank(&sig, 10, &ConstructOptions::default());
        let computes = skel
            .nodes
            .iter()
            .filter(|n| matches!(n, SkelNode::Op(SkelOp::Compute { .. })))
            .count();
        assert_eq!(computes, 1, "nodes: {:?}", skel.nodes);
    }
}
