//! # pskel-core — automatic construction of performance skeletons
//!
//! The primary contribution of *"Automatic Construction and Evaluation of
//! Performance Skeletons"* (Sodhi & Subhlok, IPPS 2005): given the execution
//! trace of an MPI application, automatically generate a short-running
//! synthetic program whose execution time under any resource-sharing
//! scenario tracks the application's.
//!
//! The pipeline (paper Figure 1):
//!
//! 1. **Record** — `pskel-mpi` traces the application on a dedicated
//!    (simulated) testbed.
//! 2. **Compress** — `pskel-signature` clusters similar events and folds
//!    repeats into loop nests, yielding an execution signature.
//! 3. **Generate** — [`SkeletonBuilder`] divides loop counts by the scaling
//!    factor K, coalesces and scales the residue ([`construct`]), estimates
//!    the shortest *good* skeleton ([`good`]), and emits the skeleton as an
//!    executable IR ([`ir`]) plus compilable C source ([`codegen`]).
//!
//! Skeletons execute on the simulated cluster via [`exec::run_skeleton`];
//! prediction experiments live in `pskel-predict`.
//!
//! ```
//! use pskel_core::{ExecOptions, SkeletonBuilder};
//! use pskel_mpi::{run_mpi, TraceConfig};
//! use pskel_sim::{ClusterSpec, Placement};
//!
//! // Trace a toy application on a dedicated 2-node cluster.
//! let traced = run_mpi(
//!     ClusterSpec::homogeneous(2),
//!     Placement::round_robin(2, 2),
//!     "toy",
//!     TraceConfig::on(),
//!     |comm| {
//!         for _ in 0..100 {
//!             comm.compute(0.01);
//!             comm.allreduce(8);
//!         }
//!     },
//! );
//!
//! // Build a skeleton intended to run for ~0.1 s (K ≈ 10).
//! let built = SkeletonBuilder::new(0.1).build(traced.trace.as_ref().unwrap());
//! assert!(built.skeleton.meta.scale_k >= 5);
//!
//! // Execute it on the same testbed: it should take ~1/K of the app time.
//! let out = pskel_core::exec::run_skeleton(
//!     &built.skeleton,
//!     ClusterSpec::homogeneous(2),
//!     Placement::round_robin(2, 2),
//!     ExecOptions::default(),
//! );
//! let ratio = traced.total_secs() / out.total_secs();
//! assert!(ratio > 5.0 && ratio < 20.0);
//! ```

pub mod codegen;
pub mod construct;
pub mod exec;
pub mod good;
pub mod ir;
pub mod pipeline;
pub mod replay;
pub mod validate;

pub use codegen::generate_c;
pub use construct::{construct_rank, ComputeModel, ConstructOptions};
pub use exec::{
    compile_rank, execute_rank, run_skeleton, run_skeleton_threaded, try_run_skeleton,
    try_run_skeleton_sweep, try_run_skeleton_sweep_stats, ExecOptions,
};
pub use good::{analyze_app, analyze_rank, GoodAnalysis, RankGoodAnalysis};
pub use ir::{RankSkeleton, SkelNode, SkelOp, Skeleton, SkeletonMeta};
pub use pipeline::{BuiltSkeleton, SkeletonBuilder};
pub use replay::{
    replay_rank, replay_script, replay_trace, replay_trace_threaded, try_replay_trace,
    try_replay_trace_threads, ReplayScale,
};
pub use validate::{validate, validate_ranks};
