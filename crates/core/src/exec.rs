//! The skeleton executor: runs a [`Skeleton`] on the simulated cluster
//! through the same MPI layer the applications use.
//!
//! This is the in-simulation equivalent of compiling and running the
//! generated C program (`codegen.rs` produces that artifact). Nonblocking
//! request slots recorded at trace time are re-bound to live requests here.
//!
//! Untraced skeleton runs take the simulator's single-threaded fast path:
//! [`compile_rank`] lowers the skeleton IR to a [`RankScript`] (loop nests
//! stay compressed) and the coordinator interprets it inline — no rank
//! threads. Traced runs keep the thread-per-rank path, since tracing needs
//! a live [`Comm`]. Both paths produce bit-identical reports; jittered
//! computes draw from the same per-rank seeded stream either way.

use crate::ir::{RankSkeleton, SkelNode, SkelOp, Skeleton};
use pskel_mpi::{
    try_run_mpi_fns, try_run_mpi_scripts_threads, Comm, CommReq, MpiOps, MpiProgram, MpiRunOutcome,
    ScriptBuilder, TraceConfig,
};
use pskel_sim::script::sample_normal;
use pskel_sim::{
    try_run_scripts_sweep, ClusterSpec, Placement, RankScript, SimError, SweepJob, SweepStats,
};
use pskel_trace::OpKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Execute one rank's skeleton program against a communicator.
pub fn execute_rank(skel: &RankSkeleton, comm: &mut Comm, seed: u64) {
    let mut slots: HashMap<u32, CommReq> = HashMap::new();
    let mut rng = ChaCha8Rng::seed_from_u64(rank_jitter_seed(seed, skel.rank));
    run_nodes(&skel.nodes, comm, &mut slots, &mut rng);
    assert!(
        slots.is_empty(),
        "rank {}: skeleton left {} unwaited request slots",
        skel.rank,
        slots.len()
    );
}

fn run_nodes(
    nodes: &[SkelNode],
    comm: &mut Comm,
    slots: &mut HashMap<u32, CommReq>,
    rng: &mut ChaCha8Rng,
) {
    for node in nodes {
        match node {
            SkelNode::Loop { count, body } => {
                for _ in 0..*count {
                    run_nodes(body, comm, slots, rng);
                }
            }
            SkelNode::Op(op) => run_op(op, comm, slots, rng),
        }
    }
}

fn run_op(op: &SkelOp, comm: &mut Comm, slots: &mut HashMap<u32, CommReq>, rng: &mut ChaCha8Rng) {
    match op {
        SkelOp::Compute { secs, jitter_std } => {
            let dur = if *jitter_std > 0.0 {
                sample_normal(rng, *secs, *jitter_std).max(0.0)
            } else {
                *secs
            };
            comm.compute(dur);
        }
        SkelOp::Send { peer, tag, bytes } => comm.send(*peer as usize, *tag, *bytes),
        SkelOp::Isend {
            peer,
            tag,
            bytes,
            slot,
        } => {
            let req = comm.isend(*peer as usize, *tag, *bytes);
            let prev = slots.insert(*slot, req);
            assert!(prev.is_none(), "slot {slot} reused before wait");
        }
        SkelOp::Recv { peer, tag } => {
            comm.recv(peer.map(|p| p as usize), *tag);
        }
        SkelOp::Irecv { peer, tag, slot } => {
            let req = comm.irecv(peer.map(|p| p as usize), *tag, 0);
            let prev = slots.insert(*slot, req);
            assert!(prev.is_none(), "slot {slot} reused before wait");
        }
        SkelOp::Wait { slot } => {
            let req = slots
                .remove(slot)
                .unwrap_or_else(|| panic!("wait on empty slot {slot}"));
            comm.wait(req);
        }
        SkelOp::Waitall { slots: ids } => {
            let reqs: Vec<CommReq> = ids
                .iter()
                .map(|s| {
                    slots
                        .remove(s)
                        .unwrap_or_else(|| panic!("waitall on empty slot {s}"))
                })
                .collect();
            comm.waitall(reqs);
        }
        SkelOp::Coll { kind, root, bytes } => run_collective(*kind, *root, *bytes, comm),
    }
}

fn run_collective(kind: OpKind, root: Option<u32>, bytes: u64, comm: &mut Comm) {
    let root = root.map(|r| r as usize).unwrap_or(0);
    match kind {
        OpKind::Barrier => comm.barrier(),
        OpKind::Bcast => comm.bcast(root, bytes),
        OpKind::Reduce => comm.reduce(root, bytes),
        OpKind::Allreduce => comm.allreduce(bytes),
        OpKind::Gather => comm.gather(root, bytes),
        OpKind::Scatter => comm.scatter(root, bytes),
        OpKind::Allgather => comm.allgather(bytes),
        // The v-variants were traced with their average per-rank size; the
        // skeleton replays them as their balanced counterparts.
        OpKind::Allgatherv => comm.allgather(bytes),
        OpKind::Alltoall => comm.alltoall(bytes),
        OpKind::Alltoallv => comm.alltoall(bytes),
        OpKind::ReduceScatter => comm.reduce_scatter(bytes),
        OpKind::Scan => comm.scan(bytes),
        other => panic!("{other:?} is not a collective"),
    }
}

/// Per-rank jitter stream seed: the same mixing both the threaded executor
/// and the compiled script use, so the two paths draw identical sequences.
fn rank_jitter_seed(seed: u64, rank: usize) -> u64 {
    seed ^ (rank as u64).wrapping_mul(0x9e3779b9)
}

/// Lower one rank's skeleton to a [`RankScript`] for the simulator's
/// fast path. Loop nests stay compressed; the skeleton's own request
/// slot numbers are kept, so diagnostics still name them.
pub fn compile_rank(
    skel: &RankSkeleton,
    nranks: usize,
    sw_overhead_secs: f64,
    seed: u64,
) -> RankScript {
    let mut b = ScriptBuilder::new(skel.rank, nranks, sw_overhead_secs);
    b.set_jitter_seed(rank_jitter_seed(seed, skel.rank));
    compile_nodes(&skel.nodes, &mut b);
    b.finish()
}

fn compile_nodes(nodes: &[SkelNode], b: &mut ScriptBuilder) {
    for node in nodes {
        match node {
            SkelNode::Loop { count, body } => {
                b.begin_loop(*count);
                compile_nodes(body, b);
                b.end_loop();
            }
            SkelNode::Op(op) => compile_op(op, b),
        }
    }
}

fn compile_op(op: &SkelOp, b: &mut ScriptBuilder) {
    match op {
        SkelOp::Compute { secs, jitter_std } => {
            if *jitter_std > 0.0 {
                b.compute_jitter(*secs, *jitter_std);
            } else {
                b.compute(*secs);
            }
        }
        SkelOp::Send { peer, tag, bytes } => b.send(*peer as usize, *tag, *bytes),
        SkelOp::Isend {
            peer,
            tag,
            bytes,
            slot,
        } => b.isend_slot(*peer as usize, *tag, *bytes, *slot),
        SkelOp::Recv { peer, tag } => b.recv(peer.map(|p| p as usize), *tag),
        SkelOp::Irecv { peer, tag, slot } => b.irecv_slot(peer.map(|p| p as usize), *tag, *slot),
        SkelOp::Wait { slot } => b.wait_slot(*slot),
        SkelOp::Waitall { slots } => b.waitall_slots(slots.clone()),
        SkelOp::Coll { kind, root, bytes } => compile_collective(*kind, *root, *bytes, b),
    }
}

fn compile_collective(kind: OpKind, root: Option<u32>, bytes: u64, b: &mut ScriptBuilder) {
    let root = root.map(|r| r as usize).unwrap_or(0);
    match kind {
        OpKind::Barrier => b.barrier(),
        OpKind::Bcast => b.bcast(root, bytes),
        OpKind::Reduce => b.reduce(root, bytes),
        OpKind::Allreduce => b.allreduce(bytes),
        OpKind::Gather => b.gather(root, bytes),
        OpKind::Scatter => b.scatter(root, bytes),
        OpKind::Allgather | OpKind::Allgatherv => b.allgather(bytes),
        OpKind::Alltoall | OpKind::Alltoallv => b.alltoall(bytes),
        OpKind::ReduceScatter => b.reduce_scatter(bytes),
        OpKind::Scan => b.scan(bytes),
        other => panic!("{other:?} is not a collective"),
    }
}

/// Execution options for a skeleton run.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Seed for the frequency-distribution compute model streams.
    pub seed: u64,
    /// Trace the skeleton run itself (used to validate skeleton behaviour,
    /// e.g. the paper's Figure 2 comparison).
    pub trace: TraceConfig,
    /// Simulator threads for untraced (script) runs: 1 is the exact legacy
    /// serial engine, more enables the time-sliced parallel driver
    /// (bit-identical reports either way). Resolve user input with
    /// [`pskel_sim::resolve_sim_threads`]; traced runs ignore this.
    pub sim_threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            seed: 0x5eed,
            trace: TraceConfig::off(),
            sim_threads: 1,
        }
    }
}

/// Run a whole skeleton on a cluster. The skeleton's rank count must match
/// the placement's.
///
/// Untraced runs are lowered to rank scripts and take the simulator's
/// single-threaded fast path; traced runs execute thread-per-rank through
/// a live [`Comm`] (see [`run_skeleton_threaded`]). Panics on simulation
/// failure; use [`try_run_skeleton`] for a typed [`SimError`].
pub fn run_skeleton(
    skeleton: &Skeleton,
    cluster: ClusterSpec,
    placement: Placement,
    opts: ExecOptions,
) -> MpiRunOutcome {
    try_run_skeleton(skeleton, cluster, placement, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_skeleton`].
pub fn try_run_skeleton(
    skeleton: &Skeleton,
    cluster: ClusterSpec,
    placement: Placement,
    opts: ExecOptions,
) -> Result<MpiRunOutcome, SimError> {
    if opts.trace.enabled {
        return try_run_skeleton_threaded(skeleton, cluster, placement, opts);
    }
    assert_eq!(
        skeleton.nranks(),
        placement.n_ranks(),
        "skeleton has {} ranks but placement has {}",
        skeleton.nranks(),
        placement.n_ranks()
    );
    let n = skeleton.nranks();
    let o = cluster.net.sw_overhead.as_secs_f64();
    let scripts: Vec<RankScript> = skeleton
        .ranks
        .iter()
        .map(|r| compile_rank(r, n, o, opts.seed))
        .collect();
    try_run_mpi_scripts_threads(cluster, placement, &scripts, opts.sim_threads)
}

/// Run one skeleton under many cluster specs — the points of a scenario
/// sweep — through the simulator's shared-prefix sweep executor.
///
/// Rank scripts are compiled once per distinct software overhead (the
/// only spec field that changes the lowering), timeline prefixes common
/// to several specs simulate once, and every returned report is
/// bit-identical to a per-point [`try_run_skeleton`] of the same spec.
/// Tracing is unsupported here: traced runs need live rank threads.
pub fn try_run_skeleton_sweep(
    skeleton: &Skeleton,
    clusters: &[ClusterSpec],
    placement: &Placement,
    opts: ExecOptions,
) -> Vec<Result<MpiRunOutcome, SimError>> {
    try_run_skeleton_sweep_stats(skeleton, clusters, placement, opts).0
}

/// [`try_run_skeleton_sweep`] plus the sweep executor's [`SweepStats`],
/// for callers that account for shared-prefix reuse (e.g. Monte-Carlo
/// ensembles reporting how many events the fork amortized away).
pub fn try_run_skeleton_sweep_stats(
    skeleton: &Skeleton,
    clusters: &[ClusterSpec],
    placement: &Placement,
    opts: ExecOptions,
) -> (Vec<Result<MpiRunOutcome, SimError>>, SweepStats) {
    assert!(
        !opts.trace.enabled,
        "sweep execution cannot trace (tracing needs rank threads)"
    );
    assert_eq!(
        skeleton.nranks(),
        placement.n_ranks(),
        "skeleton has {} ranks but placement has {}",
        skeleton.nranks(),
        placement.n_ranks()
    );
    let n = skeleton.nranks();
    // One compiled script set per distinct software overhead; points with
    // equal overhead share scripts, which the sweep executor requires for
    // prefix sharing (script identity is part of a point's static state).
    let mut overheads: Vec<u64> = Vec::new();
    let mut compiled: Vec<Vec<RankScript>> = Vec::new();
    let script_set: Vec<usize> = clusters
        .iter()
        .map(|cluster| {
            let o = cluster.net.sw_overhead.as_secs_f64();
            match overheads.iter().position(|&bits| bits == o.to_bits()) {
                Some(i) => i,
                None => {
                    overheads.push(o.to_bits());
                    compiled.push(
                        skeleton
                            .ranks
                            .iter()
                            .map(|r| compile_rank(r, n, o, opts.seed))
                            .collect(),
                    );
                    compiled.len() - 1
                }
            }
        })
        .collect();
    let jobs: Vec<SweepJob<'_>> = clusters
        .iter()
        .zip(&script_set)
        .map(|(cluster, &set)| SweepJob {
            spec: cluster.clone(),
            placement: placement.clone(),
            scripts: &compiled[set],
        })
        .collect();
    let outcome = try_run_scripts_sweep(&jobs);
    let reports = outcome
        .reports
        .into_iter()
        .map(|r| {
            r.map(|report| MpiRunOutcome {
                report,
                trace: None,
            })
        })
        .collect();
    (reports, outcome.stats)
}

/// Run a skeleton on the thread-per-rank path (required when tracing the
/// skeleton run itself; also the reference the fast path is tested
/// against).
pub fn run_skeleton_threaded(
    skeleton: &Skeleton,
    cluster: ClusterSpec,
    placement: Placement,
    opts: ExecOptions,
) -> MpiRunOutcome {
    try_run_skeleton_threaded(skeleton, cluster, placement, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_skeleton_threaded`].
pub fn try_run_skeleton_threaded(
    skeleton: &Skeleton,
    cluster: ClusterSpec,
    placement: Placement,
    opts: ExecOptions,
) -> Result<MpiRunOutcome, SimError> {
    assert_eq!(
        skeleton.nranks(),
        placement.n_ranks(),
        "skeleton has {} ranks but placement has {}",
        skeleton.nranks(),
        placement.n_ranks()
    );
    let name = format!("skeleton:{}", skeleton.app);
    let programs: Vec<MpiProgram> = skeleton
        .ranks
        .iter()
        .cloned()
        .map(|rank_skel| {
            let seed = opts.seed;
            Box::new(move |comm: &mut Comm| execute_rank(&rank_skel, comm, seed)) as MpiProgram
        })
        .collect();
    try_run_mpi_fns(cluster, placement, &name, opts.trace, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SkeletonMeta;

    fn meta() -> SkeletonMeta {
        SkeletonMeta {
            scale_k: 1,
            target_secs: 1.0,
            app_secs: 1.0,
            target_q: 1.0,
            max_threshold: 0.0,
            threshold_saturated: false,
            min_good_secs: 0.0,
            good: true,
        }
    }

    fn compute(secs: f64) -> SkelNode {
        SkelNode::Op(SkelOp::Compute {
            secs,
            jitter_std: 0.0,
        })
    }

    #[test]
    fn two_rank_exchange_executes() {
        let skeleton = Skeleton {
            app: "t".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![
                        compute(0.1),
                        SkelNode::Op(SkelOp::Send {
                            peer: 1,
                            tag: 0,
                            bytes: 1000,
                        }),
                    ],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![SkelNode::Op(SkelOp::Recv {
                        peer: Some(0),
                        tag: Some(0),
                    })],
                },
            ],
            meta: meta(),
        };
        let out = run_skeleton(
            &skeleton,
            ClusterSpec::homogeneous(2),
            Placement::round_robin(2, 2),
            ExecOptions::default(),
        );
        let t = out.total_secs();
        assert!(t > 0.1 && t < 0.2, "exchange took {t}");
    }

    #[test]
    fn loops_and_nonblocking_slots_work() {
        let ring = |_rank: usize| {
            vec![SkelNode::Loop {
                count: 5,
                body: vec![
                    SkelNode::Op(SkelOp::Isend {
                        peer: 0,
                        tag: 1,
                        bytes: 64,
                        slot: 0,
                    }),
                    SkelNode::Op(SkelOp::Irecv {
                        peer: None,
                        tag: Some(1),
                        slot: 1,
                    }),
                    compute(0.01),
                    SkelNode::Op(SkelOp::Waitall { slots: vec![0, 1] }),
                ],
            }]
        };
        // Two ranks sending to rank 0... make it symmetric: each sends to
        // the other.
        let mk = |rank: usize, peer: u32| {
            let mut nodes = ring(rank);
            if let SkelNode::Loop { body, .. } = &mut nodes[0] {
                if let SkelNode::Op(SkelOp::Isend { peer: p, .. }) = &mut body[0] {
                    *p = peer;
                }
            }
            RankSkeleton { rank, nodes }
        };
        let skeleton = Skeleton {
            app: "ring".into(),
            ranks: vec![mk(0, 1), mk(1, 0)],
            meta: meta(),
        };
        let out = run_skeleton(
            &skeleton,
            ClusterSpec::homogeneous(2),
            Placement::round_robin(2, 2),
            ExecOptions::default(),
        );
        assert!(out.total_secs() >= 0.05);
    }

    #[test]
    fn collectives_execute() {
        let nodes = vec![
            SkelNode::Op(SkelOp::Coll {
                kind: OpKind::Allreduce,
                root: None,
                bytes: 8,
            }),
            SkelNode::Op(SkelOp::Coll {
                kind: OpKind::Alltoallv,
                root: None,
                bytes: 10_000,
            }),
            SkelNode::Op(SkelOp::Coll {
                kind: OpKind::Barrier,
                root: None,
                bytes: 0,
            }),
        ];
        let skeleton = Skeleton {
            app: "colls".into(),
            ranks: (0..4)
                .map(|r| RankSkeleton {
                    rank: r,
                    nodes: nodes.clone(),
                })
                .collect(),
            meta: meta(),
        };
        let out = run_skeleton(
            &skeleton,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ExecOptions::default(),
        );
        assert!(out.total_secs() > 0.0);
    }

    #[test]
    fn jittered_compute_is_deterministic_per_seed() {
        let nodes = vec![SkelNode::Loop {
            count: 20,
            body: vec![SkelNode::Op(SkelOp::Compute {
                secs: 0.01,
                jitter_std: 0.002,
            })],
        }];
        let skeleton = Skeleton {
            app: "jitter".into(),
            ranks: vec![RankSkeleton { rank: 0, nodes }],
            meta: meta(),
        };
        let run = |seed| {
            run_skeleton(
                &skeleton,
                ClusterSpec::homogeneous(1),
                Placement::round_robin(1, 1),
                ExecOptions {
                    seed,
                    ..Default::default()
                },
            )
            .total_secs()
        };
        let a = run(1);
        let b = run(1);
        let c = run(2);
        assert_eq!(a, b, "same seed, same time");
        assert_ne!(a, c, "different seed perturbs jittered durations");
        // Mean should hold approximately.
        assert!((a - 0.2).abs() < 0.05, "total {a}");
    }

    #[test]
    fn fast_path_matches_threaded_path_bit_for_bit() {
        // Loops, nonblocking slots, several collective families, and —
        // when the RNG runtime is available — jittered computes.
        let jitter_std = if pskel_sim::script::rng_runtime_available() {
            0.0005
        } else {
            0.0
        };
        let n = 4usize;
        let mk = |rank: usize| RankSkeleton {
            rank,
            nodes: vec![
                SkelNode::Loop {
                    count: 8,
                    body: vec![
                        SkelNode::Op(SkelOp::Compute {
                            secs: 0.002,
                            jitter_std,
                        }),
                        SkelNode::Op(SkelOp::Isend {
                            peer: ((rank + 1) % n) as u32,
                            tag: 5,
                            bytes: 40_000,
                            slot: 0,
                        }),
                        SkelNode::Op(SkelOp::Irecv {
                            peer: Some(((rank + n - 1) % n) as u32),
                            tag: Some(5),
                            slot: 1,
                        }),
                        SkelNode::Op(SkelOp::Waitall { slots: vec![0, 1] }),
                        SkelNode::Op(SkelOp::Coll {
                            kind: OpKind::Allreduce,
                            root: None,
                            bytes: 64,
                        }),
                    ],
                },
                SkelNode::Op(SkelOp::Coll {
                    kind: OpKind::Bcast,
                    root: Some(1),
                    bytes: 9_000,
                }),
                SkelNode::Op(SkelOp::Coll {
                    kind: OpKind::Alltoall,
                    root: None,
                    bytes: 2_000,
                }),
                SkelNode::Op(SkelOp::Coll {
                    kind: OpKind::Barrier,
                    root: None,
                    bytes: 0,
                }),
            ],
        };
        let skeleton = Skeleton {
            app: "equiv".into(),
            ranks: (0..n).map(mk).collect(),
            meta: meta(),
        };
        let c = ClusterSpec::homogeneous(n);
        let p = Placement::round_robin(n, n);
        let opts = ExecOptions::default();
        let threaded = run_skeleton_threaded(&skeleton, c.clone(), p.clone(), opts).report;
        let fast = run_skeleton(&skeleton, c, p, opts).report;
        assert_eq!(threaded.total_time, fast.total_time, "total_time differs");
        assert_eq!(threaded, fast, "reports differ across execution paths");
    }

    #[test]
    fn sweep_execution_matches_per_point_runs() {
        use pskel_sim::{SimDuration, TimelineAction, TimelineEvent};
        let n = 4usize;
        let mk = |rank: usize| RankSkeleton {
            rank,
            nodes: vec![SkelNode::Loop {
                count: 6,
                body: vec![
                    compute(0.003),
                    SkelNode::Op(SkelOp::Coll {
                        kind: OpKind::Allreduce,
                        root: None,
                        bytes: 512,
                    }),
                ],
            }],
        };
        let skeleton = Skeleton {
            app: "sweep".into(),
            ranks: (0..n).map(mk).collect(),
            meta: meta(),
        };
        let placement = Placement::round_robin(n, n);
        // Point 0: dedicated. Points 1..: competing processes arriving at
        // varying times — shared empty prefix, divergent suffixes. Point 3
        // repeats point 1 exactly (dedup leaf).
        let cluster_with = |procs: i64, at_ms: u64| {
            let mut c = ClusterSpec::homogeneous(n);
            if procs > 0 {
                c.timeline.events.push(TimelineEvent {
                    at: SimDuration::from_millis(at_ms),
                    node: 0,
                    action: TimelineAction::AddCompeting(procs),
                    fault: false,
                });
            }
            c
        };
        let clusters = vec![
            cluster_with(0, 0),
            cluster_with(2, 5),
            cluster_with(2, 10),
            cluster_with(2, 5),
        ];
        let opts = ExecOptions::default();
        let swept = try_run_skeleton_sweep(&skeleton, &clusters, &placement, opts);
        assert_eq!(swept.len(), clusters.len());
        for (cluster, got) in clusters.iter().zip(&swept) {
            let serial =
                try_run_skeleton(&skeleton, cluster.clone(), placement.clone(), opts).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(
                got.report, serial.report,
                "sweep point diverged from its serial run"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unwaited request slots")]
    fn leaked_slot_is_caught() {
        let skeleton = Skeleton {
            app: "leak".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![SkelNode::Op(SkelOp::Isend {
                        peer: 1,
                        tag: 0,
                        bytes: 8,
                        slot: 0,
                    })],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![SkelNode::Op(SkelOp::Recv {
                        peer: Some(0),
                        tag: Some(0),
                    })],
                },
            ],
            meta: meta(),
        };
        run_skeleton(
            &skeleton,
            ClusterSpec::homogeneous(2),
            Placement::round_robin(2, 2),
            ExecOptions::default(),
        );
    }
}
