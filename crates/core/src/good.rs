//! Shortest "good" skeleton estimation (paper §3.4).
//!
//! The framework identifies the *dominant sequence* of execution events —
//! the repeating phase accounting for the largest share of execution time —
//! and declares a skeleton *good* only if it retains at least one full
//! iteration of it. The shortest good skeleton therefore corresponds to
//! scaling factor K equal to the dominant loop's iteration count; its
//! estimated runtime is the application-specific lower bound of Figure 4.

use pskel_signature::{AppSignature, ExecutionSignature, Tok};
use serde::{Deserialize, Serialize};

/// Share of total execution time a loop must cover to be considered the
/// dominant sequence.
pub const DOMINANT_SHARE_THRESHOLD: f64 = 0.5;

/// Dominant-sequence analysis of one rank's signature.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankGoodAnalysis {
    /// Total repetitions of the dominant sequence across the whole run
    /// (for a nested loop: its count times all ancestor counts). 1 if the
    /// signature has no loops — any skeleton is then trivially "good".
    pub dominant_count: u64,
    /// Fraction of estimated execution time inside the dominant sequence.
    pub dominant_share: f64,
    /// Estimated runtime of the shortest good skeleton, seconds.
    pub min_good_secs: f64,
}

/// Analyze one rank. Time estimates use the measured mean event durations
/// recorded in the signature's cluster table.
///
/// The dominant sequence is the most finely repeated loop body (any nesting
/// depth) that still covers at least [`DOMINANT_SHARE_THRESHOLD`] of the
/// execution time: for CG that is the inner solver iteration (hundreds of
/// repetitions, tiny good skeletons); for LU neither triangular-solve inner
/// loop covers half the time alone, so the dominant sequence is the whole
/// timestep — reproducing the paper's Figure 4 ordering.
pub fn analyze_rank(sig: &ExecutionSignature) -> RankGoodAnalysis {
    let total = sig.estimated_total_secs().max(1e-12);

    // Collect (total_reps, time share) for every loop at every depth.
    let mut candidates: Vec<(u64, f64)> = Vec::new();
    collect_loops(sig, &sig.tokens, 1, total, &mut candidates);

    let qualified = candidates
        .iter()
        .copied()
        .filter(|&(_, share)| share >= DOMINANT_SHARE_THRESHOLD)
        .max_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let (count, share) = qualified
        .or_else(|| {
            // No loop covers half the time: fall back to the largest-share
            // loop so the bound stays meaningful.
            candidates
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
        })
        .unwrap_or((1, 0.0));

    RankGoodAnalysis {
        dominant_count: count,
        dominant_share: share.min(1.0),
        min_good_secs: total / count as f64,
    }
}

fn collect_loops(
    sig: &ExecutionSignature,
    toks: &[Tok],
    ancestor_reps: u64,
    total: f64,
    out: &mut Vec<(u64, f64)>,
) {
    for tok in toks {
        if let Tok::Loop { count, body } = tok {
            let reps = ancestor_reps * count;
            let share = subtree_secs(sig, body) * reps as f64 / total;
            out.push((reps, share));
            collect_loops(sig, body, reps, total, out);
        }
    }
}

fn subtree_secs(sig: &ExecutionSignature, toks: &[Tok]) -> f64 {
    toks.iter()
        .map(|t| match t {
            Tok::Sym { id, compute_before } => {
                compute_before + sig.clusters[*id as usize].mean_dur_secs
            }
            Tok::Loop { count, body } => *count as f64 * subtree_secs(sig, body),
        })
        .sum()
}

/// Application-level good-skeleton bound: every rank must keep a full
/// dominant iteration, so the binding constraints are the *maximum* of the
/// per-rank minimum times and the *minimum* of the per-rank K limits.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GoodAnalysis {
    pub min_good_secs: f64,
    /// Largest scaling factor that still yields a good skeleton.
    pub max_good_k: u64,
}

pub fn analyze_app(sig: &AppSignature) -> GoodAnalysis {
    let mut min_good = 0.0f64;
    let mut max_k = u64::MAX;
    for s in &sig.sigs {
        let a = analyze_rank(s);
        min_good = min_good.max(a.min_good_secs);
        max_k = max_k.min(a.dominant_count);
    }
    if sig.sigs.is_empty() {
        return GoodAnalysis {
            min_good_secs: 0.0,
            max_good_k: 1,
        };
    }
    GoodAnalysis {
        min_good_secs: min_good,
        max_good_k: max_k.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_signature::{ClusterInfo, EventKey};
    use pskel_trace::OpKind;

    fn cluster(dur: f64) -> ClusterInfo {
        ClusterInfo {
            key: EventKey {
                kind: OpKind::Send,
                peer: Some(1),
                tag: Some(0),
                slots: vec![],
            },
            mean_bytes: 100.0,
            mean_dur_secs: dur,
            count: 1,
            mean_compute_secs: 0.0,
            m2_compute: 0.0,
        }
    }

    fn sig(tokens: Vec<Tok>, clusters: Vec<ClusterInfo>) -> ExecutionSignature {
        let trace_len = tokens.iter().map(Tok::expanded_len).sum();
        ExecutionSignature {
            rank: 0,
            tokens,
            clusters,
            tail_compute: 0.0,
            trace_len,
            threshold: 0.0,
        }
    }

    #[test]
    fn dominant_loop_is_largest_time_share() {
        // Loop A: 100 iters x (0.01 compute + 0.001 op) = 1.1 s
        // Loop B: 5 iters x (1.0 compute + 0.001 op) ≈ 5.0 s  <- dominant
        let s = sig(
            vec![
                Tok::Loop {
                    count: 100,
                    body: vec![Tok::Sym {
                        id: 0,
                        compute_before: 0.01,
                    }],
                },
                Tok::Loop {
                    count: 5,
                    body: vec![Tok::Sym {
                        id: 0,
                        compute_before: 1.0,
                    }],
                },
            ],
            vec![cluster(0.001)],
        );
        let a = analyze_rank(&s);
        assert_eq!(a.dominant_count, 5);
        assert!(a.dominant_share > 0.7);
        // min good = total / 5.
        let total = s.estimated_total_secs();
        assert!((a.min_good_secs - total / 5.0).abs() < 1e-9);
    }

    #[test]
    fn nested_dominant_loop_is_found() {
        // Outer 10 x inner 50: the inner body carries ~all the time, so the
        // dominant sequence repeats 500 times (CG's situation).
        let s = sig(
            vec![Tok::Loop {
                count: 10,
                body: vec![Tok::Loop {
                    count: 50,
                    body: vec![Tok::Sym {
                        id: 0,
                        compute_before: 0.01,
                    }],
                }],
            }],
            vec![cluster(0.001)],
        );
        let a = analyze_rank(&s);
        assert_eq!(a.dominant_count, 500);
        assert!(a.dominant_share > 0.9);
    }

    #[test]
    fn split_inner_loops_fall_back_to_the_timestep() {
        // LU's shape: each timestep is two 25-iteration pipelines; neither
        // inner loop alone covers half the time, so the dominant sequence
        // is the 250-repetition timestep loop.
        let inner = |id: u32| Tok::Loop {
            count: 25,
            body: vec![Tok::Sym {
                id,
                compute_before: 0.04,
            }],
        };
        let s = sig(
            vec![Tok::Loop {
                count: 250,
                // Two pipelines plus per-timestep work outside them, so
                // each inner loop covers less than half the total.
                body: vec![
                    inner(0),
                    inner(1),
                    Tok::Sym {
                        id: 2,
                        compute_before: 0.5,
                    },
                ],
            }],
            vec![cluster(0.0), cluster(0.0), cluster(0.0)],
        );
        let a = analyze_rank(&s);
        assert_eq!(a.dominant_count, 250);
    }

    #[test]
    fn no_loops_means_k_of_one() {
        let s = sig(
            vec![Tok::Sym {
                id: 0,
                compute_before: 1.0,
            }],
            vec![cluster(0.001)],
        );
        let a = analyze_rank(&s);
        assert_eq!(a.dominant_count, 1);
        assert!(a.min_good_secs > 0.9);
    }

    #[test]
    fn app_analysis_takes_worst_rank() {
        let fast = sig(
            vec![Tok::Loop {
                count: 100,
                body: vec![Tok::Sym {
                    id: 0,
                    compute_before: 0.1,
                }],
            }],
            vec![cluster(0.0)],
        );
        let slow = sig(
            vec![Tok::Loop {
                count: 10,
                body: vec![Tok::Sym {
                    id: 0,
                    compute_before: 1.0,
                }],
            }],
            vec![cluster(0.0)],
        );
        let app = AppSignature {
            app: "x".into(),
            sigs: vec![fast, slow],
            app_time_secs: 10.0,
        };
        let g = analyze_app(&app);
        assert_eq!(
            g.max_good_k, 10,
            "limited by the rank with the fewest iterations"
        );
        assert!(
            (g.min_good_secs - 1.0).abs() < 1e-9,
            "1 s per dominant iteration"
        );
    }

    #[test]
    fn empty_app_is_degenerate() {
        let app = AppSignature {
            app: "x".into(),
            sigs: vec![],
            app_time_secs: 0.0,
        };
        let g = analyze_app(&app);
        assert_eq!(g.max_good_k, 1);
    }
}
