//! Trace replay: execute a recorded trace directly on the simulated
//! cluster, optionally scaled.
//!
//! Replay serves two comparison points that frame the skeleton approach:
//!
//! * **Full replay** (scale 1) re-executes the application's exact
//!   operation stream — a perfect predictor that costs as much as the
//!   application itself (the paper's argument for *short-running*
//!   skeletons).
//! * **Naively scaled replay** divides every compute duration and message
//!   size by K while keeping *every operation*: the obvious alternative to
//!   signature-based construction. It keeps full per-operation latency and
//!   software overhead, so it is both slow to run (N ops, not N/K) and
//!   systematically wrong wherever latency matters — quantifying why the
//!   paper compresses loops instead of shrinking the whole trace.

use pskel_mpi::{run_mpi_fns, Comm, CommReq, MpiProgram, MpiRunOutcome, TraceConfig};
use pskel_sim::{ClusterSpec, Placement};
use pskel_trace::{AppTrace, OpKind, ProcessTrace, Record};
use std::collections::HashMap;

/// Uniform scaling applied during replay.
#[derive(Clone, Copy, Debug)]
pub struct ReplayScale {
    /// Multiplier on compute durations (1.0 = verbatim).
    pub compute: f64,
    /// Multiplier on message/collective sizes (1.0 = verbatim).
    pub bytes: f64,
}

impl ReplayScale {
    /// Verbatim replay.
    pub fn full() -> ReplayScale {
        ReplayScale {
            compute: 1.0,
            bytes: 1.0,
        }
    }

    /// The naive 1/K scaling of the whole trace.
    pub fn naive(k: u64) -> ReplayScale {
        let f = 1.0 / k as f64;
        ReplayScale {
            compute: f,
            bytes: f,
        }
    }
}

/// Replay one rank's trace against a communicator.
pub fn replay_rank(trace: &ProcessTrace, comm: &mut Comm, scale: ReplayScale) {
    let scale_bytes = |b: u64| -> u64 {
        if b == 0 {
            0
        } else {
            ((b as f64 * scale.bytes).round() as u64).max(1)
        }
    };
    let mut slots: HashMap<u32, CommReq> = HashMap::new();
    for rec in &trace.records {
        match rec {
            Record::Compute { dur } => comm.compute(dur.as_secs_f64() * scale.compute),
            Record::Mpi(e) => {
                let peer = e.peer.map(|p| p as usize);
                let bytes = scale_bytes(e.bytes);
                match e.kind {
                    OpKind::Send => comm.send(peer.expect("send peer"), e.tag.unwrap_or(0), bytes),
                    OpKind::Isend => {
                        let req = comm.isend(peer.expect("isend peer"), e.tag.unwrap_or(0), bytes);
                        slots.insert(e.slots[0], req);
                    }
                    OpKind::Recv => {
                        comm.recv(peer, e.tag);
                    }
                    OpKind::Irecv => {
                        let req = comm.irecv(peer, e.tag, bytes);
                        slots.insert(e.slots[0], req);
                    }
                    OpKind::Wait => {
                        let req = slots
                            .remove(&e.slots[0])
                            .expect("trace wait references a live request");
                        comm.wait(req);
                    }
                    OpKind::Waitall => {
                        let reqs = e
                            .slots
                            .iter()
                            .map(|s| slots.remove(s).expect("trace waitall slot live"))
                            .collect();
                        comm.waitall(reqs);
                    }
                    OpKind::Barrier => comm.barrier(),
                    OpKind::Bcast => comm.bcast(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Reduce => comm.reduce(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Allreduce => comm.allreduce(bytes),
                    OpKind::Gather => comm.gather(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Scatter => comm.scatter(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Allgather | OpKind::Allgatherv => comm.allgather(bytes),
                    OpKind::Alltoall | OpKind::Alltoallv => comm.alltoall(bytes),
                    OpKind::ReduceScatter => comm.reduce_scatter(bytes),
                    OpKind::Scan => comm.scan(bytes),
                }
            }
        }
    }
    assert!(slots.is_empty(), "trace replay left unwaited requests");
}

/// Replay a whole application trace on a cluster.
pub fn replay_trace(
    trace: &AppTrace,
    cluster: ClusterSpec,
    placement: Placement,
    scale: ReplayScale,
) -> MpiRunOutcome {
    assert_eq!(
        trace.nranks(),
        placement.n_ranks(),
        "trace has {} ranks but placement has {}",
        trace.nranks(),
        placement.n_ranks()
    );
    let name = format!("replay:{}", trace.app);
    let programs: Vec<MpiProgram> = trace
        .procs
        .iter()
        .cloned()
        .map(|p| Box::new(move |comm: &mut Comm| replay_rank(&p, comm, scale)) as MpiProgram)
        .collect();
    run_mpi_fns(cluster, placement, &name, TraceConfig::off(), programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_mpi::run_mpi;

    fn traced_app() -> (f64, AppTrace) {
        let out = run_mpi(
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            "replaytest",
            TraceConfig::on(),
            |comm| {
                for i in 0..20u64 {
                    comm.compute(0.005);
                    let peer = comm.rank() ^ 1;
                    let s = comm.isend(peer, i, 50_000);
                    let r = comm.irecv(Some(peer), Some(i), 50_000);
                    comm.waitall(vec![s, r]);
                    comm.allreduce(8);
                }
            },
        );
        (out.total_secs(), out.trace.unwrap())
    }

    #[test]
    fn full_replay_reproduces_runtime_exactly() {
        let (original, trace) = traced_app();
        let replayed = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ReplayScale::full(),
        )
        .total_secs();
        // Replay re-issues the same demands; timing matches to float noise.
        assert!(
            (replayed - original).abs() / original < 1e-6,
            "replay {replayed} vs original {original}"
        );
    }

    #[test]
    fn naive_scaling_keeps_op_count_but_shrinks_time() {
        let (original, trace) = traced_app();
        let out = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ReplayScale::naive(10),
        );
        let t = out.total_secs();
        assert!(
            t < original / 2.0,
            "scaled replay too slow: {t} vs {original}"
        );
        // But nowhere near original/10: per-op latency doesn't scale.
        assert!(
            t > original / 10.0,
            "scaled replay impossibly fast: {t} vs {original}"
        );
        // All messages still happen.
        let msgs: u64 = out.report.rank_stats.iter().map(|s| s.msgs_sent).sum();
        assert!(msgs >= 4 * 20, "messages missing: {msgs}");
    }

    #[test]
    fn replay_respects_scenario_contention() {
        let (_, trace) = traced_app();
        let free = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ReplayScale::full(),
        )
        .total_secs();
        let loaded = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4).with_competing_processes(0, 2),
            Placement::round_robin(4, 4),
            ReplayScale::full(),
        )
        .total_secs();
        assert!(
            loaded > free * 1.1,
            "contention must slow replay: {free} -> {loaded}"
        );
    }
}
