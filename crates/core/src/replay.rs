//! Trace replay: execute a recorded trace directly on the simulated
//! cluster, optionally scaled.
//!
//! Replay serves two comparison points that frame the skeleton approach:
//!
//! * **Full replay** (scale 1) re-executes the application's exact
//!   operation stream — a perfect predictor that costs as much as the
//!   application itself (the paper's argument for *short-running*
//!   skeletons).
//! * **Naively scaled replay** divides every compute duration and message
//!   size by K while keeping *every operation*: the obvious alternative to
//!   signature-based construction. It keeps full per-operation latency and
//!   software overhead, so it is both slow to run (N ops, not N/K) and
//!   systematically wrong wherever latency matters — quantifying why the
//!   paper compresses loops instead of shrinking the whole trace.
//!
//! Untraced replays take the simulator's single-threaded fast path:
//! [`replay_script`] lowers a recorded rank onto a
//! [`pskel_sim::RankScript`] and [`replay_trace`] runs all ranks inline on
//! the coordinator — no rank threads — with reports bit-identical to the
//! thread-per-rank path ([`replay_trace_threaded`]).

use pskel_mpi::{
    try_run_mpi_fns, try_run_mpi_scripts_threads, Comm, MpiOps, MpiProgram, MpiRunOutcome,
    ScriptBuilder, TraceConfig,
};
use pskel_sim::{ClusterSpec, Placement, RankScript, SimError};
use pskel_trace::{AppTrace, OpKind, ProcessTrace, Record};
use std::collections::HashMap;

/// Uniform scaling applied during replay.
#[derive(Clone, Copy, Debug)]
pub struct ReplayScale {
    /// Multiplier on compute durations (1.0 = verbatim).
    pub compute: f64,
    /// Multiplier on message/collective sizes (1.0 = verbatim).
    pub bytes: f64,
}

impl ReplayScale {
    /// Verbatim replay.
    pub fn full() -> ReplayScale {
        ReplayScale {
            compute: 1.0,
            bytes: 1.0,
        }
    }

    /// The naive 1/K scaling of the whole trace.
    pub fn naive(k: u64) -> ReplayScale {
        let f = 1.0 / k as f64;
        ReplayScale {
            compute: f,
            bytes: f,
        }
    }
}

/// Replay one rank's trace against a communicator.
pub fn replay_rank(trace: &ProcessTrace, comm: &mut Comm, scale: ReplayScale) {
    replay_rank_ops(trace, comm, scale);
}

/// Replay one rank's trace through any [`MpiOps`] implementation — a live
/// [`Comm`] (immediate execution) or a [`ScriptBuilder`] (recording for
/// the fast path). Both lowerings issue the identical call sequence.
pub fn replay_rank_ops<M: MpiOps>(trace: &ProcessTrace, m: &mut M, scale: ReplayScale) {
    let scale_bytes = |b: u64| -> u64 {
        if b == 0 {
            0
        } else {
            ((b as f64 * scale.bytes).round() as u64).max(1)
        }
    };
    let mut slots: HashMap<u32, M::Req> = HashMap::new();
    for rec in &trace.records {
        match rec {
            Record::Compute { dur } => m.compute(dur.as_secs_f64() * scale.compute),
            Record::Mpi(e) => {
                let peer = e.peer.map(|p| p as usize);
                let bytes = scale_bytes(e.bytes);
                match e.kind {
                    OpKind::Send => m.send(peer.expect("send peer"), e.tag.unwrap_or(0), bytes),
                    OpKind::Isend => {
                        let req = m.isend(peer.expect("isend peer"), e.tag.unwrap_or(0), bytes);
                        slots.insert(e.slots[0], req);
                    }
                    OpKind::Recv => {
                        m.recv(peer, e.tag);
                    }
                    OpKind::Irecv => {
                        let req = m.irecv(peer, e.tag, bytes);
                        slots.insert(e.slots[0], req);
                    }
                    OpKind::Wait => {
                        let req = slots
                            .remove(&e.slots[0])
                            .expect("trace wait references a live request");
                        m.wait(req);
                    }
                    OpKind::Waitall => {
                        let reqs = e
                            .slots
                            .iter()
                            .map(|s| slots.remove(s).expect("trace waitall slot live"))
                            .collect();
                        m.waitall(reqs);
                    }
                    OpKind::Barrier => m.barrier(),
                    OpKind::Bcast => m.bcast(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Reduce => m.reduce(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Allreduce => m.allreduce(bytes),
                    OpKind::Gather => m.gather(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Scatter => m.scatter(e.peer.unwrap_or(0) as usize, bytes),
                    OpKind::Allgather | OpKind::Allgatherv => m.allgather(bytes),
                    OpKind::Alltoall | OpKind::Alltoallv => m.alltoall(bytes),
                    OpKind::ReduceScatter => m.reduce_scatter(bytes),
                    OpKind::Scan => m.scan(bytes),
                }
            }
        }
    }
    assert!(slots.is_empty(), "trace replay left unwaited requests");
}

/// Lower one recorded rank to a [`RankScript`] for the simulator's fast
/// path. `rank` is the world rank the script will run as (the position in
/// the trace's process list); `sw_overhead_secs` must match the target
/// cluster's software overhead.
pub fn replay_script(
    proc_trace: &ProcessTrace,
    rank: usize,
    nranks: usize,
    sw_overhead_secs: f64,
    scale: ReplayScale,
) -> RankScript {
    let mut b = ScriptBuilder::new(rank, nranks, sw_overhead_secs);
    replay_rank_ops(proc_trace, &mut b, scale);
    b.finish()
}

/// Replay a whole application trace on a cluster.
///
/// Replays run untraced and branch on nothing dynamic, so they take the
/// simulator's single-threaded fast path. Panics on simulation failure;
/// use [`try_replay_trace`] for a typed [`SimError`].
pub fn replay_trace(
    trace: &AppTrace,
    cluster: ClusterSpec,
    placement: Placement,
    scale: ReplayScale,
) -> MpiRunOutcome {
    try_replay_trace(trace, cluster, placement, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`replay_trace`]. Always the exact legacy serial
/// engine; use [`try_replay_trace_threads`] to carry a resolved simulator
/// thread count.
pub fn try_replay_trace(
    trace: &AppTrace,
    cluster: ClusterSpec,
    placement: Placement,
    scale: ReplayScale,
) -> Result<MpiRunOutcome, SimError> {
    try_replay_trace_threads(trace, cluster, placement, scale, 1)
}

/// Like [`try_replay_trace`], but selects the engine by `threads`: 1 runs
/// the serial script fast path, more the time-sliced parallel driver.
/// Reports are bit-identical either way.
pub fn try_replay_trace_threads(
    trace: &AppTrace,
    cluster: ClusterSpec,
    placement: Placement,
    scale: ReplayScale,
    threads: usize,
) -> Result<MpiRunOutcome, SimError> {
    assert_eq!(
        trace.nranks(),
        placement.n_ranks(),
        "trace has {} ranks but placement has {}",
        trace.nranks(),
        placement.n_ranks()
    );
    let n = trace.nranks();
    let o = cluster.net.sw_overhead.as_secs_f64();
    let scripts: Vec<RankScript> = trace
        .procs
        .iter()
        .enumerate()
        .map(|(rank, p)| replay_script(p, rank, n, o, scale))
        .collect();
    try_run_mpi_scripts_threads(cluster, placement, &scripts, threads)
}

/// Replay on the thread-per-rank path (the reference the fast path is
/// tested against; kept public for differential testing and as the
/// fallback for any future replay mode that needs a live [`Comm`]).
pub fn replay_trace_threaded(
    trace: &AppTrace,
    cluster: ClusterSpec,
    placement: Placement,
    scale: ReplayScale,
) -> MpiRunOutcome {
    assert_eq!(
        trace.nranks(),
        placement.n_ranks(),
        "trace has {} ranks but placement has {}",
        trace.nranks(),
        placement.n_ranks()
    );
    let name = format!("replay:{}", trace.app);
    let programs: Vec<MpiProgram> = trace
        .procs
        .iter()
        .cloned()
        .map(|p| Box::new(move |comm: &mut Comm| replay_rank(&p, comm, scale)) as MpiProgram)
        .collect();
    try_run_mpi_fns(cluster, placement, &name, TraceConfig::off(), programs)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_mpi::run_mpi;

    fn traced_app() -> (f64, AppTrace) {
        let out = run_mpi(
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            "replaytest",
            TraceConfig::on(),
            |comm| {
                for i in 0..20u64 {
                    comm.compute(0.005);
                    let peer = comm.rank() ^ 1;
                    let s = comm.isend(peer, i, 50_000);
                    let r = comm.irecv(Some(peer), Some(i), 50_000);
                    comm.waitall(vec![s, r]);
                    comm.allreduce(8);
                }
            },
        );
        (out.total_secs(), out.trace.unwrap())
    }

    #[test]
    fn full_replay_reproduces_runtime_exactly() {
        let (original, trace) = traced_app();
        let replayed = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ReplayScale::full(),
        )
        .total_secs();
        // Replay re-issues the same demands; timing matches to float noise.
        assert!(
            (replayed - original).abs() / original < 1e-6,
            "replay {replayed} vs original {original}"
        );
    }

    #[test]
    fn naive_scaling_keeps_op_count_but_shrinks_time() {
        let (original, trace) = traced_app();
        let out = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ReplayScale::naive(10),
        );
        let t = out.total_secs();
        assert!(
            t < original / 2.0,
            "scaled replay too slow: {t} vs {original}"
        );
        // But nowhere near original/10: per-op latency doesn't scale.
        assert!(
            t > original / 10.0,
            "scaled replay impossibly fast: {t} vs {original}"
        );
        // All messages still happen.
        let msgs: u64 = out.report.rank_stats.iter().map(|s| s.msgs_sent).sum();
        assert!(msgs >= 4 * 20, "messages missing: {msgs}");
    }

    #[test]
    fn fast_replay_is_bit_identical_to_threaded_replay() {
        let (_, trace) = traced_app();
        for scale in [ReplayScale::full(), ReplayScale::naive(10)] {
            let threaded = replay_trace_threaded(
                &trace,
                ClusterSpec::homogeneous(4),
                Placement::round_robin(4, 4),
                scale,
            )
            .report;
            let fast = replay_trace(
                &trace,
                ClusterSpec::homogeneous(4),
                Placement::round_robin(4, 4),
                scale,
            )
            .report;
            assert_eq!(
                threaded, fast,
                "replay paths diverge at compute scale {}",
                scale.compute
            );
        }
    }

    #[test]
    fn replay_respects_scenario_contention() {
        let (_, trace) = traced_app();
        let free = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4),
            Placement::round_robin(4, 4),
            ReplayScale::full(),
        )
        .total_secs();
        let loaded = replay_trace(
            &trace,
            ClusterSpec::homogeneous(4).with_competing_processes(0, 2),
            Placement::round_robin(4, 4),
            ReplayScale::full(),
        )
        .total_secs();
        assert!(
            loaded > free * 1.1,
            "contention must slow replay: {free} -> {loaded}"
        );
    }
}
