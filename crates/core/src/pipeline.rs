//! The end-to-end construction pipeline (paper Figure 1):
//! trace → execution signature → performance skeleton.

use crate::construct::{construct_rank, ConstructOptions};
use crate::good::analyze_app;
use crate::ir::{RankSkeleton, Skeleton, SkeletonMeta};
use pskel_signature::{compress_app, AppSignature, SignatureOptions};
use pskel_trace::AppTrace;

/// Builds performance skeletons of a requested execution time.
#[derive(Clone, Copy, Debug)]
pub struct SkeletonBuilder {
    /// Intended skeleton execution time, seconds.
    pub target_secs: f64,
    pub signature: SignatureOptions,
    pub construct: ConstructOptions,
}

impl SkeletonBuilder {
    /// A builder for a skeleton intended to run `target_secs`.
    pub fn new(target_secs: f64) -> SkeletonBuilder {
        assert!(
            target_secs.is_finite() && target_secs > 0.0,
            "target skeleton time must be positive, got {target_secs}"
        );
        SkeletonBuilder {
            target_secs,
            signature: SignatureOptions::default(),
            construct: ConstructOptions::default(),
        }
    }

    /// The integer scaling factor for an application of `app_secs`.
    pub fn scale_k(&self, app_secs: f64) -> u64 {
        ((app_secs / self.target_secs).round() as u64).max(1)
    }

    /// The compression ratio requested from the signature stage: the
    /// paper's empirical Q = K/2 rule (§3.2).
    pub fn target_q(&self, k: u64) -> f64 {
        (k as f64 / 2.0).max(1.0)
    }

    /// Build a skeleton from an application trace.
    ///
    /// Ranks are compressed independently; if that yields structurally
    /// incompatible rank programs (data-dependent parameters clustering
    /// differently per rank), the similarity-threshold floor is raised and
    /// compression retried until the skeleton passes cross-rank validation
    /// or the threshold cap is hit.
    pub fn build(&self, trace: &AppTrace) -> BuiltSkeleton {
        let app_secs = trace.total_time.as_secs_f64();
        let k = self.scale_k(app_secs);
        let q = self.target_q(k);

        let mut sig_opts = self.signature;
        let (compression, ranks, issues) = loop {
            let compression = compress_app(trace, q, sig_opts);
            let ranks: Vec<RankSkeleton> = compression
                .signature
                .sigs
                .iter()
                .map(|s| construct_rank(s, k, &self.construct))
                .collect();
            let issues = crate::validate::validate_ranks(&ranks);
            if issues.is_empty() {
                break (compression, ranks, issues);
            }
            let used = compression
                .signature
                .sigs
                .iter()
                .map(|s| s.threshold)
                .fold(0.0f64, f64::max);
            let next_floor = used + sig_opts.threshold_step;
            if next_floor > sig_opts.max_threshold + 1e-12 {
                break (compression, ranks, issues);
            }
            sig_opts.min_threshold = next_floor;
        };
        let saturated = compression.is_saturated();
        let saturation_note = compression.saturation_summary();
        let signature = compression.signature;

        let good = analyze_app(&signature);
        let max_threshold = signature
            .sigs
            .iter()
            .map(|s| s.threshold)
            .fold(0.0f64, f64::max);
        let is_good = k <= good.max_good_k;

        let mut warnings = Vec::new();
        if let Some(note) = saturation_note {
            warnings.push(format!(
                "similarity threshold saturated at {:.2} before reaching compression ratio \
                 Q={q:.1} on {note}; consider a longer target time or a higher threshold cap",
                self.signature.max_threshold
            ));
        }
        if !issues.is_empty() {
            warnings.push(format!(
                "skeleton is structurally inconsistent across ranks even at the threshold cap: {}",
                issues.join("; ")
            ));
        }
        if !is_good {
            warnings.push(format!(
                "requested {:.2}s skeleton is below the estimated minimum good skeleton of {:.2}s \
                 (K={k} exceeds the dominant loop count {}); prediction quality may suffer",
                self.target_secs, good.min_good_secs, good.max_good_k
            ));
        }

        let skeleton = Skeleton {
            app: trace.app.clone(),
            ranks,
            meta: SkeletonMeta {
                scale_k: k,
                target_secs: self.target_secs,
                app_secs,
                target_q: q,
                max_threshold,
                threshold_saturated: saturated,
                min_good_secs: good.min_good_secs,
                good: is_good,
            },
        };
        BuiltSkeleton {
            skeleton,
            signature,
            warnings,
        }
    }
}

/// Result of the construction pipeline. Serializable so the artifact
/// store can persist built skeletons across runs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BuiltSkeleton {
    pub skeleton: Skeleton,
    pub signature: AppSignature,
    /// Human-readable warnings (threshold saturation, not-good skeletons).
    pub warnings: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_k_rounds_to_nearest() {
        let b = SkeletonBuilder::new(10.0);
        assert_eq!(b.scale_k(202.0), 20);
        assert_eq!(b.scale_k(5.0), 1, "never below 1");
        assert_eq!(b.scale_k(1000.0), 100);
    }

    #[test]
    fn q_rule_is_half_k() {
        let b = SkeletonBuilder::new(1.0);
        assert_eq!(b.target_q(40), 20.0);
        assert_eq!(b.target_q(1), 1.0, "clamped at 1");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_target_rejected() {
        SkeletonBuilder::new(0.0);
    }
}
