//! The performance-skeleton intermediate representation.
//!
//! A skeleton is, per rank, a tree of loops over primitive operations —
//! the execution structure the paper's generated C program would contain.
//! The IR is both executed directly on the simulated cluster (`exec.rs`)
//! and rendered to compilable C/MPI source (`codegen.rs`).

use pskel_trace::OpKind;
use serde::{Deserialize, Serialize};

/// A primitive skeleton operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SkelOp {
    /// Busy-loop computation for `secs` CPU-seconds. `jitter_std` > 0
    /// (frequency-distribution mode, the paper's §4.4 extension) makes the
    /// executor sample the duration from N(secs, jitter_std²), clamped ≥ 0.
    Compute {
        secs: f64,
        jitter_std: f64,
    },
    Send {
        peer: u32,
        tag: u64,
        bytes: u64,
    },
    Isend {
        peer: u32,
        tag: u64,
        bytes: u64,
        slot: u32,
    },
    Recv {
        peer: Option<u32>,
        tag: Option<u64>,
    },
    Irecv {
        peer: Option<u32>,
        tag: Option<u64>,
        slot: u32,
    },
    Wait {
        slot: u32,
    },
    Waitall {
        slots: Vec<u32>,
    },
    /// A collective call; `bytes` is the per-rank contribution.
    Coll {
        kind: OpKind,
        root: Option<u32>,
        bytes: u64,
    },
}

impl SkelOp {
    /// Scale the operation's size parameters by `factor` (≤ 1): compute
    /// time and message bytes shrink; latency-bound structure (waits,
    /// zero-byte ops) cannot shrink — the paper's acknowledged weakness of
    /// "last resort" scaling (§3.3).
    pub fn scaled(&self, factor: f64) -> SkelOp {
        debug_assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor {factor} out of range"
        );
        let scale_bytes = |b: u64| ((b as f64 * factor).round() as u64).max(1.min(b));
        match self {
            SkelOp::Compute { secs, jitter_std } => SkelOp::Compute {
                secs: secs * factor,
                jitter_std: jitter_std * factor,
            },
            SkelOp::Send { peer, tag, bytes } => SkelOp::Send {
                peer: *peer,
                tag: *tag,
                bytes: scale_bytes(*bytes),
            },
            SkelOp::Isend {
                peer,
                tag,
                bytes,
                slot,
            } => SkelOp::Isend {
                peer: *peer,
                tag: *tag,
                bytes: scale_bytes(*bytes),
                slot: *slot,
            },
            SkelOp::Coll { kind, root, bytes } => SkelOp::Coll {
                kind: *kind,
                root: *root,
                bytes: scale_bytes(*bytes),
            },
            // Receives take their size from the sender; waits have no size.
            other => other.clone(),
        }
    }

    /// Short mnemonic used in renderings and tests.
    pub fn mnemonic(&self) -> String {
        match self {
            SkelOp::Compute { secs, .. } => format!("comp({secs:.3e})"),
            SkelOp::Send { peer, bytes, .. } => format!("send({peer},{bytes})"),
            SkelOp::Isend { peer, bytes, .. } => format!("isend({peer},{bytes})"),
            SkelOp::Recv { peer, .. } => match peer {
                Some(p) => format!("recv({p})"),
                None => "recv(*)".into(),
            },
            SkelOp::Irecv { peer, .. } => match peer {
                Some(p) => format!("irecv({p})"),
                None => "irecv(*)".into(),
            },
            SkelOp::Wait { slot } => format!("wait({slot})"),
            SkelOp::Waitall { slots } => format!("waitall({})", slots.len()),
            SkelOp::Coll { kind, bytes, .. } => {
                format!(
                    "{}({bytes})",
                    kind.mpi_name().trim_start_matches("MPI_").to_lowercase()
                )
            }
        }
    }
}

/// A node of the skeleton program tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SkelNode {
    Op(SkelOp),
    Loop { count: u64, body: Vec<SkelNode> },
}

impl SkelNode {
    /// Number of primitive operations after loop expansion.
    pub fn expanded_ops(&self) -> u64 {
        match self {
            SkelNode::Op(_) => 1,
            SkelNode::Loop { count, body } => {
                count * body.iter().map(SkelNode::expanded_ops).sum::<u64>()
            }
        }
    }

    /// Number of operations written in the program text (bodies once).
    pub fn static_ops(&self) -> u64 {
        match self {
            SkelNode::Op(_) => 1,
            SkelNode::Loop { body, .. } => body.iter().map(SkelNode::static_ops).sum(),
        }
    }
}

/// The skeleton program of one rank.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankSkeleton {
    pub rank: usize,
    pub nodes: Vec<SkelNode>,
}

impl RankSkeleton {
    pub fn expanded_ops(&self) -> u64 {
        self.nodes.iter().map(SkelNode::expanded_ops).sum()
    }

    pub fn static_ops(&self) -> u64 {
        self.nodes.iter().map(SkelNode::static_ops).sum()
    }
}

/// Construction metadata carried with a skeleton.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SkeletonMeta {
    /// Integer scaling factor K between application and skeleton.
    pub scale_k: u64,
    /// The requested skeleton execution time, seconds.
    pub target_secs: f64,
    /// Dedicated application time the skeleton was built from, seconds.
    pub app_secs: f64,
    /// Compression ratio Q requested from the signature stage (K/2 rule).
    pub target_q: f64,
    /// Largest similarity threshold any rank needed.
    pub max_threshold: f64,
    /// Whether the threshold search hit its cap before reaching Q.
    pub threshold_saturated: bool,
    /// Estimated minimum "good" skeleton time (§3.4), seconds.
    pub min_good_secs: f64,
    /// False if this skeleton is smaller than the shortest good skeleton —
    /// the framework's warning that prediction quality may suffer.
    pub good: bool,
}

/// A complete performance skeleton: one program per rank.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Skeleton {
    pub app: String,
    pub ranks: Vec<RankSkeleton>,
    pub meta: SkeletonMeta,
}

impl Skeleton {
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shrinks_compute_and_bytes() {
        let op = SkelOp::Send {
            peer: 1,
            tag: 0,
            bytes: 1000,
        };
        assert_eq!(
            op.scaled(0.5),
            SkelOp::Send {
                peer: 1,
                tag: 0,
                bytes: 500
            }
        );
        let c = SkelOp::Compute {
            secs: 2.0,
            jitter_std: 0.2,
        };
        match c.scaled(0.25) {
            SkelOp::Compute { secs, jitter_std } => {
                assert!((secs - 0.5).abs() < 1e-12);
                assert!((jitter_std - 0.05).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn scaling_never_drops_nonzero_messages_to_zero() {
        let op = SkelOp::Send {
            peer: 1,
            tag: 0,
            bytes: 3,
        };
        assert_eq!(
            op.scaled(0.001),
            SkelOp::Send {
                peer: 1,
                tag: 0,
                bytes: 1
            }
        );
        // Zero-byte ops stay zero.
        let z = SkelOp::Coll {
            kind: OpKind::Barrier,
            root: None,
            bytes: 0,
        };
        assert_eq!(z.scaled(0.5), z);
    }

    #[test]
    fn scaling_leaves_waits_alone() {
        let w = SkelOp::Wait { slot: 3 };
        assert_eq!(w.scaled(0.01), w);
        let r = SkelOp::Recv {
            peer: Some(1),
            tag: Some(0),
        };
        assert_eq!(r.scaled(0.01), r);
    }

    #[test]
    fn op_counts() {
        let tree = SkelNode::Loop {
            count: 10,
            body: vec![
                SkelNode::Op(SkelOp::Compute {
                    secs: 1.0,
                    jitter_std: 0.0,
                }),
                SkelNode::Loop {
                    count: 3,
                    body: vec![SkelNode::Op(SkelOp::Wait { slot: 0 })],
                },
            ],
        };
        assert_eq!(tree.expanded_ops(), 10 * (1 + 3));
        assert_eq!(tree.static_ops(), 2);
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(
            SkelOp::Send {
                peer: 2,
                tag: 0,
                bytes: 64
            }
            .mnemonic(),
            "send(2,64)"
        );
        assert_eq!(
            SkelOp::Coll {
                kind: OpKind::Allreduce,
                root: None,
                bytes: 8
            }
            .mnemonic(),
            "allreduce(8)"
        );
        assert_eq!(
            SkelOp::Recv {
                peer: None,
                tag: None
            }
            .mnemonic(),
            "recv(*)"
        );
    }
}
