//! Static cross-rank consistency checks for constructed skeletons.
//!
//! Construction scales every rank independently; for SPMD applications the
//! deterministic rules keep matching operation counts aligned, but a bug
//! (or a genuinely non-SPMD trace) would produce a skeleton that deadlocks
//! at execution time. These checks catch the common cases statically.

use crate::ir::{SkelNode, SkelOp, Skeleton};
use pskel_trace::OpKind;
use std::collections::HashMap;

/// Problems found in a skeleton. Empty means "no static inconsistency".
pub fn validate(skeleton: &Skeleton) -> Vec<String> {
    validate_ranks(&skeleton.ranks)
}

/// Rank-program-level validation (used by the construction pipeline before
/// the [`Skeleton`] wrapper exists).
pub fn validate_ranks(ranks: &[crate::ir::RankSkeleton]) -> Vec<String> {
    let mut issues = Vec::new();
    let n = ranks.len();

    // Expanded send counts per (src, dst, tag) and recv counts per
    // (dst, src, tag) — wildcard receives counted per (dst, *, *).
    let mut sends: HashMap<(usize, usize, u64), u64> = HashMap::new();
    let mut recvs: HashMap<(usize, Option<usize>, Option<u64>), u64> = HashMap::new();
    // Collective call sequences per rank (kind only: sizes may legally vary
    // per rank for rooted/v collectives).
    let mut coll_seqs: Vec<Vec<OpKind>> = vec![Vec::new(); n];

    for (rank, rs) in ranks.iter().enumerate() {
        count_ops(&rs.nodes, 1, &mut |op, mult| match op {
            SkelOp::Send { peer, tag, .. } | SkelOp::Isend { peer, tag, .. } => {
                *sends.entry((rank, *peer as usize, *tag)).or_default() += mult;
            }
            SkelOp::Recv { peer, tag } | SkelOp::Irecv { peer, tag, .. } => {
                *recvs
                    .entry((rank, peer.map(|p| p as usize), *tag))
                    .or_default() += mult;
            }
            SkelOp::Coll { kind, .. } => {
                for _ in 0..mult {
                    coll_seqs[rank].push(*kind);
                }
            }
            _ => {}
        });
    }

    // Collective sequences must be identical across ranks.
    for r in 1..n {
        if coll_seqs[r] != coll_seqs[0] {
            issues.push(format!(
                "collective sequence of rank {r} ({} calls) differs from rank 0 ({} calls)",
                coll_seqs[r].len(),
                coll_seqs[0].len()
            ));
        }
    }

    // Point-to-point balance. Wildcard receives absorb anything addressed
    // to the rank, so do the accounting per destination.
    for dst in 0..n {
        let incoming: u64 = sends
            .iter()
            .filter(|((_, d, _), _)| *d == dst)
            .map(|(_, c)| *c)
            .sum();
        let receives: u64 = recvs
            .iter()
            .filter(|((r, _, _), _)| *r == dst)
            .map(|(_, c)| *c)
            .sum();
        if incoming != receives {
            issues.push(format!(
                "rank {dst} receives {receives} messages but {incoming} are sent to it"
            ));
        }
        // Exact-source receives must not exceed what that source sends.
        let mut per_src: HashMap<(usize, Option<u64>), u64> = HashMap::new();
        for ((r, src, tag), c) in &recvs {
            if *r == dst {
                if let Some(s) = src {
                    *per_src.entry((*s, *tag)).or_default() += c;
                }
            }
        }
        for ((src, tag), want) in per_src {
            let have: u64 = sends
                .iter()
                .filter(|((s, d, t), _)| *s == src && *d == dst && tag.is_none_or(|tt| *t == tt))
                .map(|(_, c)| *c)
                .sum();
            if want > have {
                issues.push(format!(
                    "rank {dst} posts {want} receives from rank {src} (tag {tag:?}) but only \
                     {have} matching sends exist"
                ));
            }
        }
    }
    issues
}

fn count_ops(nodes: &[SkelNode], mult: u64, f: &mut impl FnMut(&SkelOp, u64)) {
    for n in nodes {
        match n {
            SkelNode::Op(op) => f(op, mult),
            SkelNode::Loop { count, body } => count_ops(body, mult * count, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RankSkeleton, SkeletonMeta};

    fn meta() -> SkeletonMeta {
        SkeletonMeta {
            scale_k: 1,
            target_secs: 1.0,
            app_secs: 1.0,
            target_q: 1.0,
            max_threshold: 0.0,
            threshold_saturated: false,
            min_good_secs: 0.0,
            good: true,
        }
    }

    fn send(peer: u32) -> SkelNode {
        SkelNode::Op(SkelOp::Send {
            peer,
            tag: 0,
            bytes: 100,
        })
    }

    fn recv(peer: Option<u32>) -> SkelNode {
        SkelNode::Op(SkelOp::Recv { peer, tag: Some(0) })
    }

    #[test]
    fn balanced_skeleton_passes() {
        let s = Skeleton {
            app: "x".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![send(1), recv(Some(1))],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![send(0), recv(Some(0))],
                },
            ],
            meta: meta(),
        };
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn missing_receive_is_reported() {
        let s = Skeleton {
            app: "x".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![send(1)],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![],
                },
            ],
            meta: meta(),
        };
        let issues = validate(&s);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].contains("rank 1 receives 0 messages but 1 are sent"));
    }

    #[test]
    fn loop_multiplicity_is_counted() {
        let s = Skeleton {
            app: "x".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![SkelNode::Loop {
                        count: 5,
                        body: vec![send(1)],
                    }],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![SkelNode::Loop {
                        count: 5,
                        body: vec![recv(Some(0))],
                    }],
                },
            ],
            meta: meta(),
        };
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn collective_sequence_mismatch_is_reported() {
        let allred = SkelNode::Op(SkelOp::Coll {
            kind: OpKind::Allreduce,
            root: None,
            bytes: 8,
        });
        let s = Skeleton {
            app: "x".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![allred.clone(), allred.clone()],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![allred],
                },
            ],
            meta: meta(),
        };
        let issues = validate(&s);
        assert!(issues.iter().any(|i| i.contains("collective sequence")));
    }

    #[test]
    fn wildcard_receives_absorb_any_sender() {
        let s = Skeleton {
            app: "x".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![recv(None), recv(None)],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![send(0)],
                },
                RankSkeleton {
                    rank: 2,
                    nodes: vec![send(0)],
                },
            ],
            meta: meta(),
        };
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn oversubscribed_exact_source_is_reported() {
        let s = Skeleton {
            app: "x".into(),
            ranks: vec![
                RankSkeleton {
                    rank: 0,
                    nodes: vec![recv(Some(1)), recv(Some(1))],
                },
                RankSkeleton {
                    rank: 1,
                    nodes: vec![send(0)],
                },
                RankSkeleton {
                    rank: 2,
                    nodes: vec![send(0)],
                },
            ],
            meta: meta(),
        };
        let issues = validate(&s);
        assert!(issues
            .iter()
            .any(|i| i.contains("posts 2 receives from rank 1")));
    }
}
