//! Property-based tests of skeleton construction: exact compute scaling,
//! op-count bounds, determinism, and C generation well-formedness on
//! random signatures.

use proptest::prelude::*;
use pskel_core::{construct_rank, generate_c, ConstructOptions, SkelNode, SkelOp};
use pskel_core::{RankSkeleton, Skeleton, SkeletonMeta};
use pskel_signature::{ClusterInfo, EventKey, ExecutionSignature, Tok};
use pskel_trace::OpKind;

/// A small alphabet of blocking operations (sends/collectives only, so any
/// random composition is a valid single-rank program shape).
fn clusters() -> Vec<ClusterInfo> {
    let mk = |kind: OpKind, peer: Option<u32>, bytes: f64| ClusterInfo {
        key: EventKey {
            kind,
            peer,
            tag: Some(0),
            slots: vec![],
        },
        mean_bytes: bytes,
        mean_dur_secs: 1e-5,
        count: 1,
        mean_compute_secs: 0.0,
        m2_compute: 0.0,
    };
    vec![
        mk(OpKind::Send, Some(1), 5_000.0),
        mk(OpKind::Send, Some(2), 80_000.0),
        mk(OpKind::Allreduce, None, 8.0),
        mk(OpKind::Bcast, Some(0), 4_096.0),
        mk(OpKind::Barrier, None, 0.0),
    ]
}

fn arb_tokens(depth: u32) -> BoxedStrategy<Vec<Tok>> {
    let sym = (0..5u32, 0.0..0.1f64).prop_map(|(id, c)| Tok::Sym {
        id,
        compute_before: c,
    });
    if depth == 0 {
        prop::collection::vec(sym, 1..6).boxed()
    } else {
        let leaf = sym.boxed();
        let node = prop_oneof![
            3 => leaf.clone(),
            2 => (1..40u64, arb_tokens(depth - 1))
                .prop_map(|(count, body)| Tok::Loop { count, body }),
        ];
        prop::collection::vec(node, 1..6).boxed()
    }
}

fn sig_of(tokens: Vec<Tok>) -> ExecutionSignature {
    let trace_len = tokens.iter().map(Tok::expanded_len).sum();
    ExecutionSignature {
        rank: 0,
        tokens,
        clusters: clusters(),
        tail_compute: 0.0,
        trace_len,
        threshold: 0.0,
    }
}

fn expanded_compute(nodes: &[SkelNode]) -> f64 {
    nodes
        .iter()
        .map(|n| match n {
            SkelNode::Op(SkelOp::Compute { secs, .. }) => *secs,
            SkelNode::Op(_) => 0.0,
            SkelNode::Loop { count, body } => *count as f64 * expanded_compute(body),
        })
        .sum()
}

fn expanded_mpi_ops(nodes: &[SkelNode]) -> u64 {
    nodes
        .iter()
        .map(|n| match n {
            SkelNode::Op(SkelOp::Compute { .. }) => 0,
            SkelNode::Op(_) => 1,
            SkelNode::Loop { count, body } => count * expanded_mpi_ops(body),
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compute time scales by exactly 1/K, whatever the loop structure.
    #[test]
    fn compute_scales_exactly(tokens in arb_tokens(2), k in 1..500u64) {
        let sig = sig_of(tokens);
        let original = pskel_signature::token::total_compute(&sig.tokens);
        for opts in [
            ConstructOptions::default(),
            ConstructOptions { consolidate_residue: true, ..Default::default() },
        ] {
            let skel = construct_rank(&sig, k, &opts);
            let got = expanded_compute(&skel.nodes);
            let want = original / k as f64;
            prop_assert!(
                (got - want).abs() <= 1e-9 + want * 1e-9,
                "k={}, got {}, want {}", k, got, want
            );
        }
    }

    /// K=1 replays every operation of the signature.
    #[test]
    fn k_one_preserves_all_ops(tokens in arb_tokens(2)) {
        let sig = sig_of(tokens);
        let skel = construct_rank(&sig, 1, &ConstructOptions::default());
        prop_assert_eq!(expanded_mpi_ops(&skel.nodes) as usize, sig.expanded_len());
    }

    /// The skeleton never contains more operations than the application.
    #[test]
    fn op_count_never_grows(tokens in arb_tokens(2), k in 1..500u64) {
        let sig = sig_of(tokens);
        let skel = construct_rank(&sig, k, &ConstructOptions::default());
        prop_assert!(expanded_mpi_ops(&skel.nodes) as usize <= sig.expanded_len());
    }

    /// Consolidation can only reduce the operation count further.
    #[test]
    fn consolidation_never_adds_ops(tokens in arb_tokens(2), k in 2..200u64) {
        let sig = sig_of(tokens);
        let literal = construct_rank(
            &sig, k, &ConstructOptions { consolidate_residue: false, ..Default::default() });
        let consolidated = construct_rank(
            &sig, k, &ConstructOptions { consolidate_residue: true, ..Default::default() });
        prop_assert!(
            expanded_mpi_ops(&consolidated.nodes) <= expanded_mpi_ops(&literal.nodes)
        );
    }

    /// Construction is a pure function.
    #[test]
    fn construction_is_deterministic(tokens in arb_tokens(2), k in 1..100u64) {
        let sig = sig_of(tokens);
        let a = construct_rank(&sig, k, &ConstructOptions::default());
        let b = construct_rank(&sig, k, &ConstructOptions::default());
        prop_assert_eq!(a, b);
    }

    /// Generated C is textually well-formed for arbitrary skeletons.
    #[test]
    fn generated_c_is_well_formed(tokens in arb_tokens(1), k in 1..50u64) {
        let sig = sig_of(tokens);
        let rank0 = construct_rank(&sig, k, &ConstructOptions::default());
        let skeleton = Skeleton {
            app: "prop".into(),
            ranks: vec![RankSkeleton { rank: 0, nodes: rank0.nodes }],
            meta: SkeletonMeta {
                scale_k: k,
                target_secs: 1.0,
                app_secs: k as f64,
                target_q: 1.0,
                max_threshold: 0.0,
                threshold_saturated: false,
                min_good_secs: 0.0,
                good: true,
            },
        };
        let c = generate_c(&skeleton);
        prop_assert_eq!(c.matches('{').count(), c.matches('}').count());
        prop_assert!(c.contains("MPI_Init"));
        prop_assert!(c.contains("MPI_Finalize"));
    }
}
