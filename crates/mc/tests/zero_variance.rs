//! Satellite differential: a stochastic program whose distributions
//! have zero variance must be indistinguishable — `Timeline` events and
//! `SimReport` bit-identical — from the equivalent deterministic
//! program, at every seed. This pins the noise expansion to the PR 5
//! schedule-lowering semantics: constant interarrival/duration draws
//! produce exactly the `AddCompeting` delta sequence a `[[cpu]]`
//! schedule would.

use pskel_mc::ensemble_specs;
use pskel_mpi::{MpiOps, ScriptBuilder};
use pskel_scenario::{CpuSeg, NodeSel, NoiseDist, NoiseSeg, ScenarioProgram};
use pskel_sim::{try_run_scripts_sweep, ClusterSpec, Placement, RankScript, Simulation, SweepJob};

const GAP: f64 = 0.5;
const DUR: f64 = 0.2;
const UNTIL: f64 = 3.0;
const PROCS: i64 = 2;

/// The stochastic program: constant-gap, constant-duration CPU bursts.
fn stochastic() -> ScenarioProgram {
    let mut p = ScenarioProgram::empty("zv");
    p.noise.push(NoiseSeg::Cpu {
        node: NodeSel::Id(0),
        procs: PROCS,
        interarrival: NoiseDist::Uniform { min: GAP, max: GAP },
        duration: NoiseDist::Uniform { min: DUR, max: DUR },
        until: UNTIL,
    });
    p
}

/// The deterministic equivalent: a `[[cpu]]` schedule stepping to
/// `PROCS` at each burst start and back to 0 at each burst end, with
/// times accumulated by the same float arithmetic the expansion uses.
fn deterministic() -> ScenarioProgram {
    let mut p = ScenarioProgram::empty("zv");
    let mut t = 0.0f64;
    loop {
        t += GAP;
        if t >= UNTIL {
            break;
        }
        p.cpu.push(CpuSeg {
            node: NodeSel::Id(0),
            at: t,
            procs: PROCS,
        });
        p.cpu.push(CpuSeg {
            node: NodeSel::Id(0),
            at: t + DUR,
            procs: 0,
        });
    }
    assert!(!p.cpu.is_empty());
    p
}

fn scripts(nranks: usize, sw_overhead_secs: f64) -> Vec<RankScript> {
    (0..nranks)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, nranks, sw_overhead_secs);
            b.begin_loop(40);
            MpiOps::compute(&mut b, 2.0e-3);
            let s = MpiOps::isend(&mut b, (rank + 1) % nranks, 3, 10_000);
            let r = MpiOps::irecv(&mut b, Some((rank + nranks - 1) % nranks), Some(3), 10_000);
            MpiOps::waitall(&mut b, vec![s, r]);
            MpiOps::allreduce(&mut b, 512);
            b.end_loop();
            b.finish()
        })
        .collect()
}

#[test]
fn zero_variance_timeline_is_bit_identical_at_every_seed() {
    let base = ClusterSpec::homogeneous(2);
    let want = deterministic().apply(&base).unwrap();
    assert!(!want.timeline.events.is_empty());
    for seed in [0u64, 1, 2, 0x5eed, 0xdead_beef, u64::MAX] {
        let got = stochastic().apply_seeded(&base, seed).unwrap();
        assert_eq!(
            got.timeline.events, want.timeline.events,
            "timeline diverged at seed {seed:#x}"
        );
        assert_eq!(got.timeline.start_delays, want.timeline.start_delays);
    }
}

#[test]
fn zero_variance_sim_report_is_bit_identical_at_every_seed() {
    let nranks = 4;
    let base = ClusterSpec::homogeneous(2);
    let placement = Placement::blocked(nranks, 2);
    let scripts = scripts(nranks, base.net.sw_overhead.as_secs_f64());

    let det_spec = deterministic().apply(&base).unwrap();
    let want = Simulation::new(det_spec, placement.clone())
        .try_run_scripts(&scripts)
        .expect("deterministic run completes");

    for seed in [0u64, 7, 0x5eed] {
        let spec = stochastic().apply_seeded(&base, seed).unwrap();
        let got = Simulation::new(spec, placement.clone())
            .try_run_scripts(&scripts)
            .expect("stochastic run completes");
        assert_eq!(got, want, "SimReport diverged at seed {seed:#x}");
    }
}

#[test]
fn zero_variance_ensemble_dedupes_to_one_simulation() {
    // Every member of a zero-variance ensemble expands to the same
    // spec, so the forked executor answers K points with one engine
    // run — and each report equals the deterministic one.
    let nranks = 4;
    let samples = 6;
    let base = ClusterSpec::homogeneous(2);
    let placement = Placement::blocked(nranks, 2);
    let scripts = scripts(nranks, base.net.sw_overhead.as_secs_f64());

    let det_spec = deterministic().apply(&base).unwrap();
    let want = Simulation::new(det_spec, placement.clone())
        .try_run_scripts(&scripts)
        .expect("deterministic run completes");

    let ensemble = ensemble_specs(&stochastic(), &base, 0x5eed, samples).unwrap();
    let jobs: Vec<SweepJob<'_>> = ensemble
        .specs
        .iter()
        .map(|spec| SweepJob {
            spec: spec.clone(),
            placement: placement.clone(),
            scripts: &scripts,
        })
        .collect();
    let outcome = try_run_scripts_sweep(&jobs);
    assert_eq!(outcome.reports.len(), samples);
    for report in &outcome.reports {
        assert_eq!(report.as_ref().ok(), Some(&want));
    }
    assert_eq!(
        outcome.stats.dedup_hits,
        samples as u64 - 1,
        "identical members should collapse to one simulation"
    );
}
