//! # pskel-mc — seeded Monte-Carlo prediction
//!
//! The paper (Sodhi & Subhlok, IPPS 2005) validates skeletons with
//! single deterministic predictions, but real MPI programs run under
//! OS noise: a point estimate misses the runtime *distribution*. This
//! crate turns one stochastic scenario program (a program carrying
//! `[[noise]]` blocks) into a Monte-Carlo ensemble:
//!
//! 1. **Ensemble expansion** ([`ensemble_specs`]): derive K member
//!    seeds from a base seed with splitmix64 ([`member_seed`]) and
//!    expand the program once per member via
//!    [`ScenarioProgram::apply_seeded`]. Every member shares the
//!    static spec and the deterministic schedule prefix of the
//!    timeline, so the forked sweep executor
//!    (`pskel_sim::try_run_scripts_sweep`) simulates the common
//!    prefix once and forks only where noise diverges.
//! 2. **Percentile estimation** ([`Distribution::estimate`]): sort the
//!    member runtimes, read p50/p90/p99 by linear interpolation, and
//!    attach bootstrap confidence intervals resampled with the same
//!    deterministic generator — the whole pipeline is a pure function
//!    of `(program, base seed, K)`.
//!
//! Nothing here is random at run time: "Monte-Carlo" refers to the
//! sampling structure, not to nondeterminism. Two hosts (or two thread
//! counts) computing the same ensemble produce byte-identical
//! distributions.

pub mod ensemble;
pub mod estimator;

pub use ensemble::{ensemble_specs, member_seed, member_seeds, EnsembleSpecs};
pub use estimator::{percentile, Distribution, Percentile, BOOTSTRAP_RESAMPLES};

#[doc(no_inline)]
pub use pskel_scenario::ScenarioProgram;
