//! Percentile estimation with bootstrap confidence intervals.
//!
//! The estimator is deliberately boring: sort the ensemble's runtimes,
//! read percentiles by linear interpolation, and bound them with a
//! seeded nonparametric bootstrap. Every draw comes from
//! [`SplitMix64`], so the same `(samples, seed)` input always yields
//! the same `Distribution` — down to the last bit, on any host.

use pskel_scenario::{derive_seed, SplitMix64};

/// Bootstrap resample count. 200 keeps the 2.5%/97.5% quantiles of the
/// bootstrap distribution meaningful while staying cheap next to the
/// simulations that produced the samples.
pub const BOOTSTRAP_RESAMPLES: usize = 200;

/// Salt mixed into the base seed for the bootstrap stream, so it never
/// collides with an ensemble member's expansion stream.
const BOOTSTRAP_SALT: u64 = 0xb007;

/// One estimated percentile with its bootstrap confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentile {
    pub value: f64,
    /// 2.5% quantile of the bootstrap distribution.
    pub ci_lo: f64,
    /// 97.5% quantile of the bootstrap distribution.
    pub ci_hi: f64,
}

/// The estimated runtime distribution of a Monte-Carlo ensemble.
#[derive(Clone, Debug, PartialEq)]
pub struct Distribution {
    /// Ensemble size the estimate was computed from.
    pub samples: usize,
    /// Base seed of the ensemble (also seeds the bootstrap).
    pub seed: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub p50: Percentile,
    pub p90: Percentile,
    pub p99: Percentile,
}

/// Quantile `q` in `[0, 1]` of an ascending-sorted slice, by linear
/// interpolation between order statistics (type-7, the R default).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl Distribution {
    /// Estimate from raw ensemble runtimes (member order does not
    /// matter; the estimator sorts its own copy). Errors on an empty
    /// or non-finite input rather than producing NaN percentiles.
    pub fn estimate(samples: &[f64], seed: u64) -> Result<Distribution, String> {
        if samples.is_empty() {
            return Err("cannot estimate a distribution from zero samples".into());
        }
        if let Some(bad) = samples.iter().find(|x| !x.is_finite()) {
            return Err(format!("non-finite sample {bad} in ensemble"));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;

        // Nonparametric bootstrap: resample n-with-replacement B times,
        // track each percentile's bootstrap distribution.
        let mut rng = SplitMix64::new(derive_seed(seed, BOOTSTRAP_SALT));
        let mut boot50 = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
        let mut boot90 = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
        let mut boot99 = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
        let mut resample = vec![0.0f64; n];
        for _ in 0..BOOTSTRAP_RESAMPLES {
            for slot in resample.iter_mut() {
                *slot = sorted[(rng.next_u64() % n as u64) as usize];
            }
            resample.sort_by(|a, b| a.partial_cmp(b).unwrap());
            boot50.push(percentile(&resample, 0.50));
            boot90.push(percentile(&resample, 0.90));
            boot99.push(percentile(&resample, 0.99));
        }
        let ci = |boot: &mut Vec<f64>, value: f64| {
            boot.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Percentile {
                value,
                ci_lo: percentile(boot, 0.025),
                ci_hi: percentile(boot, 0.975),
            }
        };
        Ok(Distribution {
            samples: n,
            seed,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: ci(&mut boot50, percentile(&sorted, 0.50)),
            p90: ci(&mut boot90, percentile(&sorted, 0.90)),
            p99: ci(&mut boot99, percentile(&sorted, 0.99)),
        })
    }

    /// Compact JSON rendering (hand-rolled so it works where the serde
    /// runtime is stubbed out). Field order is fixed; used for
    /// determinism checks, so keep it byte-stable.
    pub fn to_json(&self) -> String {
        let p = |p: &Percentile| {
            format!(
                "{{\"value\":{},\"ci_lo\":{},\"ci_hi\":{}}}",
                p.value, p.ci_lo, p.ci_hi
            )
        };
        format!(
            "{{\"samples\":{},\"seed\":{},\"mean\":{},\"std_dev\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.samples,
            self.seed,
            self.mean,
            self.std_dev,
            self.min,
            self.max,
            p(&self.p50),
            p(&self.p90),
            p(&self.p99)
        )
    }

    /// Percentile table for the CLI.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "samples {:>6}   seed 0x{:x}\n",
            self.samples, self.seed
        ));
        out.push_str(&format!(
            "mean    {:>10.6}s   std dev {:.6}s\n",
            self.mean, self.std_dev
        ));
        out.push_str(&format!(
            "min     {:>10.6}s   max     {:.6}s\n",
            self.min, self.max
        ));
        out.push_str("quantile   predicted      95% CI\n");
        for (name, p) in [("p50", &self.p50), ("p90", &self.p90), ("p99", &self.p99)] {
            out.push_str(&format!(
                "{name:<8} {:>10.6}s   [{:.6}, {:.6}]\n",
                p.value, p.ci_lo, p.ci_hi
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_linearly() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!((percentile(&xs, 0.90) - 3.7).abs() < 1e-12);
        assert_eq!(percentile(&[5.0], 0.9), 5.0);
    }

    #[test]
    fn estimate_is_deterministic_per_seed() {
        let samples: Vec<f64> = (0..64).map(|i| 1.0 + 0.01 * (i * 37 % 64) as f64).collect();
        let a = Distribution::estimate(&samples, 0x5eed).unwrap();
        let b = Distribution::estimate(&samples, 0x5eed).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let c = Distribution::estimate(&samples, 0x5eee).unwrap();
        // Same point estimates, different bootstrap draws.
        assert_eq!(a.p50.value, c.p50.value);
        assert_ne!((a.p50.ci_lo, a.p90.ci_hi), (c.p50.ci_lo, c.p90.ci_hi));
    }

    #[test]
    fn estimate_is_order_insensitive() {
        let mut samples: Vec<f64> = (0..32).map(|i| (i * 13 % 32) as f64).collect();
        let a = Distribution::estimate(&samples, 1).unwrap();
        samples.reverse();
        let b = Distribution::estimate(&samples, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantiles_are_ordered_and_cis_bracket() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let d = Distribution::estimate(&samples, 9).unwrap();
        assert!(d.min <= d.p50.value);
        assert!(d.p50.value <= d.p90.value);
        assert!(d.p90.value <= d.p99.value);
        assert!(d.p99.value <= d.max);
        for p in [&d.p50, &d.p90, &d.p99] {
            assert!(p.ci_lo <= p.ci_hi);
            assert!(p.ci_lo <= p.value + 1e-12 && p.value <= p.ci_hi + 1e-12);
        }
    }

    #[test]
    fn constant_samples_collapse_the_distribution() {
        let d = Distribution::estimate(&[2.5; 40], 3).unwrap();
        assert_eq!(d.mean, 2.5);
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.p50.value, 2.5);
        assert_eq!(d.p99.value, 2.5);
        assert_eq!(d.p50.ci_lo, 2.5);
        assert_eq!(d.p99.ci_hi, 2.5);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(Distribution::estimate(&[], 0).is_err());
        assert!(Distribution::estimate(&[1.0, f64::NAN], 0).is_err());
        assert!(Distribution::estimate(&[1.0, f64::INFINITY], 0).is_err());
    }

    #[test]
    fn table_lists_the_three_quantiles() {
        let d = Distribution::estimate(&[1.0, 2.0, 3.0], 0).unwrap();
        let t = d.table();
        assert!(t.contains("p50"));
        assert!(t.contains("p90"));
        assert!(t.contains("p99"));
    }
}
