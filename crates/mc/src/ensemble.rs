//! Ensemble expansion: one stochastic program → K seeded deterministic
//! cluster specs, ready for the forked sweep executor.

use pskel_scenario::{derive_seed, ScenarioProgram};
use pskel_sim::ClusterSpec;

/// The seed of ensemble member `index` under base seed `base`.
///
/// Member seeds are *derived*, not sequential: growing an ensemble
/// from K to K' > K members keeps the first K variants bit-identical,
/// which is what lets per-seed caches pay for only the new members.
pub fn member_seed(base: u64, index: usize) -> u64 {
    derive_seed(base, index as u64)
}

/// The first `samples` member seeds under `base`.
pub fn member_seeds(base: u64, samples: usize) -> Vec<u64> {
    (0..samples).map(|i| member_seed(base, i)).collect()
}

/// An expanded ensemble: one deterministic cluster spec per member,
/// in member order, plus each member's derived seed.
#[derive(Clone, Debug)]
pub struct EnsembleSpecs {
    pub seeds: Vec<u64>,
    pub specs: Vec<ClusterSpec>,
}

/// Expand `program` against `base` into a `samples`-member ensemble
/// under `seed`. Every member shares the static spec and the
/// deterministic schedule events; members differ only in the noise
/// events their seed draws, so sweep executors group them into one
/// shared-prefix family. A noise-free program yields `samples`
/// identical specs (the executor dedupes them to a single simulation).
pub fn ensemble_specs(
    program: &ScenarioProgram,
    base: &ClusterSpec,
    seed: u64,
    samples: usize,
) -> Result<EnsembleSpecs, String> {
    if samples == 0 {
        return Err("ensemble needs at least one sample".into());
    }
    let seeds = member_seeds(seed, samples);
    let specs = seeds
        .iter()
        .map(|&s| program.apply_seeded(base, s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(EnsembleSpecs { seeds, specs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pskel_scenario::{NodeSel, NoiseDist, NoiseSeg};

    fn noisy_program() -> ScenarioProgram {
        let mut p = ScenarioProgram::empty("mc-test");
        p.noise.push(NoiseSeg::Cpu {
            node: NodeSel::All,
            procs: 1,
            interarrival: NoiseDist::Exp { mean: 0.5 },
            duration: NoiseDist::Uniform {
                min: 0.01,
                max: 0.05,
            },
            until: 4.0,
        });
        p
    }

    #[test]
    fn member_seeds_are_prefix_stable() {
        let small = member_seeds(0x5eed, 50);
        let large = member_seeds(0x5eed, 200);
        assert_eq!(&large[..50], &small[..]);
        let mut uniq = large.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), large.len(), "derived seeds collide");
    }

    #[test]
    fn expansion_is_deterministic_and_shares_the_static_spec() {
        let program = noisy_program();
        let base = ClusterSpec::homogeneous(4);
        let a = ensemble_specs(&program, &base, 7, 8).unwrap();
        let b = ensemble_specs(&program, &base, 7, 8).unwrap();
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(x.timeline.events, y.timeline.events);
        }
        // Members differ only in timeline events.
        for spec in &a.specs {
            assert_eq!(spec.nodes.len(), base.nodes.len());
            assert!(spec.timeline.start_delays.is_empty());
        }
        assert_ne!(
            a.specs[0].timeline.events, a.specs[1].timeline.events,
            "distinct seeds should draw distinct noise"
        );
    }

    #[test]
    fn noise_free_programs_expand_to_identical_members() {
        let program = ScenarioProgram::empty("plain");
        let base = ClusterSpec::homogeneous(2);
        let e = ensemble_specs(&program, &base, 3, 5).unwrap();
        for spec in &e.specs {
            assert!(spec.timeline.events.is_empty());
        }
    }

    #[test]
    fn zero_samples_is_an_error() {
        let program = noisy_program();
        let base = ClusterSpec::homogeneous(1);
        assert!(ensemble_specs(&program, &base, 1, 0).is_err());
    }
}
