//! Criterion benchmarks of the framework's own components: simulator event
//! throughput, collective algorithms, trace compression (clustering + loop
//! detection), skeleton construction, and the tracing-shim overhead claim
//! from §3.1 of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pskel_apps::{Class, NasBenchmark};
use pskel_core::{ConstructOptions, SkeletonBuilder};
use pskel_mpi::{run_mpi, TraceConfig};
use pskel_signature::{compress_app, compress_process, SignatureOptions};
use pskel_sim::{ClusterSpec, Placement, Simulation};
use pskel_trace::{synthetic_app_trace, synthetic_process_trace, AppTrace};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &nranks in &[2usize, 4, 8] {
        let msgs_per_rank = 200u64;
        g.throughput(Throughput::Elements(nranks as u64 * msgs_per_rank * 2));
        g.bench_with_input(BenchmarkId::new("ring_msgs", nranks), &nranks, |b, &n| {
            b.iter(|| {
                let sim =
                    Simulation::new(ClusterSpec::homogeneous(n), Placement::round_robin(n, n));
                sim.run(move |ctx| {
                    let me = ctx.rank();
                    let right = (me + 1) % ctx.nranks();
                    let left = (me + ctx.nranks() - 1) % ctx.nranks();
                    for i in 0..msgs_per_rank {
                        let s = ctx.isend(right, i, 1000, None);
                        let r = ctx.irecv(Some(left), Some(i));
                        ctx.waitall(vec![s, r]);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    for (name, f) in [
        (
            "allreduce_8B",
            Box::new(|comm: &mut pskel_mpi::Comm| comm.allreduce(8))
                as Box<dyn Fn(&mut pskel_mpi::Comm) + Send + Sync>,
        ),
        (
            "alltoall_1MB",
            Box::new(|comm: &mut pskel_mpi::Comm| comm.alltoall(1_000_000)),
        ),
        (
            "bcast_64KB",
            Box::new(|comm: &mut pskel_mpi::Comm| comm.bcast(0, 65_536)),
        ),
        (
            "barrier",
            Box::new(|comm: &mut pskel_mpi::Comm| comm.barrier()),
        ),
    ] {
        let f = std::sync::Arc::new(f);
        g.bench_function(name, |b| {
            let f = f.clone();
            b.iter(|| {
                let f = f.clone();
                run_mpi(
                    ClusterSpec::homogeneous(4),
                    Placement::round_robin(4, 4),
                    "coll",
                    TraceConfig::off(),
                    move |comm| {
                        for _ in 0..10 {
                            f(comm);
                        }
                    },
                )
            })
        });
    }
    g.finish();
}

fn traced_cg() -> AppTrace {
    run_mpi(
        ClusterSpec::paper_testbed(),
        Placement::round_robin(4, 4),
        "CG.W",
        TraceConfig::on(),
        NasBenchmark::Cg.program(Class::W),
    )
    .trace
    .unwrap()
}

fn bench_compression(c: &mut Criterion) {
    let trace = traced_cg();
    let events = trace.procs[0].n_events();
    let mut g = c.benchmark_group("signature");
    g.throughput(Throughput::Elements(events as u64));
    g.bench_function("compress_cg_w_rank0", |b| {
        b.iter(|| compress_process(&trace.procs[0], 20.0, SignatureOptions::default()))
    });

    // Deterministic synthetic workloads isolating the compression stack
    // from the simulator: one at CG.W rank scale, one 100k-event stress
    // case, and a 4-rank app run exercising the parallel rank fan-out.
    // Same shapes as `pskel bench compress` so the two harnesses agree.
    let synth = synthetic_process_trace(0, 3_000, 0xC6);
    g.throughput(Throughput::Elements(synth.n_events() as u64));
    g.bench_function("compress_synth_cg_sized", |b| {
        b.iter(|| compress_process(&synth, 20.0, SignatureOptions::default()))
    });

    g.sample_size(10);
    let big = synthetic_process_trace(0, 100_000, 0xB16);
    g.throughput(Throughput::Elements(big.n_events() as u64));
    g.bench_function("compress_synth_100k", |b| {
        b.iter(|| compress_process(&big, 50.0, SignatureOptions::default()))
    });

    let app = synthetic_app_trace(4, 25_000, 0xA44);
    g.throughput(Throughput::Elements(app.n_events() as u64));
    g.bench_function("compress_app_synth_4x25k", |b| {
        b.iter(|| compress_app(&app, 50.0, SignatureOptions::default()))
    });
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let trace = traced_cg();
    let mut g = c.benchmark_group("construct");
    for &k in &[10u64, 100] {
        g.bench_with_input(BenchmarkId::new("cg_w", k), &k, |b, &k| {
            let sig = compress_process(
                &trace.procs[0],
                (k / 2).max(1) as f64,
                SignatureOptions::default(),
            )
            .signature;
            b.iter(|| pskel_core::construct_rank(&sig, k, &ConstructOptions::default()))
        });
    }
    g.bench_function("full_builder_cg_w", |b| {
        b.iter(|| SkeletonBuilder::new(0.1).build(&trace))
    });
    g.finish();
}

/// §3.1: "the execution time overhead of trace generation is negligible,
/// typically well under 1%". Measured in virtual time: a traced run with a
/// realistic 2µs per-event instrumentation cost vs. the untraced run.
fn bench_trace_overhead(c: &mut Criterion) {
    let run = |overhead: f64| {
        run_mpi(
            ClusterSpec::paper_testbed(),
            Placement::round_robin(4, 4),
            "CG.S",
            TraceConfig {
                enabled: overhead > 0.0,
                overhead_secs: overhead,
            },
            NasBenchmark::Cg.program(Class::S),
        )
        .total_secs()
    };
    let base = run(0.0);
    let traced = run(2e-6);
    let pct = 100.0 * (traced - base) / base;
    eprintln!(
        "trace_overhead: untraced {base:.4}s, traced(2us/event) {traced:.4}s -> {pct:.2}% \
         (paper claims < 1% for realistic workloads; Class S is the worst case)"
    );

    c.bench_function("trace_overhead/traced_run_wall", |b| b.iter(|| run(2e-6)));
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_collectives,
    bench_compression,
    bench_construction,
    bench_trace_overhead
);
criterion_main!(benches);
