//! Ablation benchmarks for the design choices DESIGN.md calls out. These
//! measure *prediction quality* (virtual-time experiments) rather than wall
//! time, and print their findings; Criterion wraps them so they run under
//! `cargo bench` with everything else.
//!
//! Ablations:
//! 1. residue handling — the paper's literal 1/K scaling vs. this
//!    implementation's consolidation;
//! 2. compute model — per-iteration means (paper) vs. the empirical
//!    frequency distribution (the paper's §4.4 proposal);
//! 3. the Q = K/2 compression-ratio rule vs. weaker/stronger targets.

use criterion::{criterion_group, criterion_main, Criterion};
use pskel_apps::{Class, NasBenchmark};
use pskel_core::{ComputeModel, ExecOptions, SkeletonBuilder};
use pskel_mpi::{run_mpi, TraceConfig};
use pskel_predict::{error_pct, Scenario, Testbed};
use pskel_sim::{ClusterSpec, Placement};

struct Lab {
    testbed: Testbed,
    class: Class,
}

impl Lab {
    fn new() -> Lab {
        Lab {
            testbed: Testbed::default(),
            class: Class::W,
        }
    }

    fn prediction_error(
        &self,
        bench: NasBenchmark,
        scenario: Scenario,
        configure: impl Fn(&mut SkeletonBuilder),
        target: f64,
    ) -> f64 {
        let trace = self.testbed.trace_app(bench, self.class);
        let app_ded = trace.total_time.as_secs_f64();
        let mut builder = SkeletonBuilder::new(target);
        configure(&mut builder);
        let built = builder.build(&trace);
        let skel_ded = self.testbed.run_skeleton(&built, Scenario::Dedicated);
        let skel_scen = self.testbed.run_skeleton(&built, scenario);
        let predicted = skel_scen * (app_ded / skel_ded);
        let actual = self.testbed.run_app(bench, self.class, scenario);
        error_pct(predicted, actual)
    }
}

fn ablation_residue_handling(c: &mut Criterion) {
    let lab = Lab::new();
    // Tiny skeletons of LU (many small messages) under link throttling are
    // where residue scaling hurts: the latency of each 1/K-scaled message
    // cannot shrink.
    let bench = NasBenchmark::Lu;
    let scenario = Scenario::NetOneLink;
    let app = lab
        .testbed
        .trace_app(bench, lab.class)
        .total_time
        .as_secs_f64();
    let target = app / 60.0;

    let literal = lab.prediction_error(
        bench,
        scenario,
        |b| b.construct.consolidate_residue = false,
        target,
    );
    let consolidated = lab.prediction_error(
        bench,
        scenario,
        |b| b.construct.consolidate_residue = true,
        target,
    );
    eprintln!(
        "ablation residue_handling (LU.W, net-one-link, K~60): \
         paper-literal {literal:.1}% vs consolidated {consolidated:.1}%"
    );

    c.bench_function("ablation/residue_literal_build", |b| {
        let trace = lab.testbed.trace_app(bench, lab.class);
        b.iter(|| {
            let mut builder = SkeletonBuilder::new(target);
            builder.construct.consolidate_residue = false;
            builder.build(&trace)
        })
    });
}

fn ablation_compute_model(c: &mut Criterion) {
    let lab = Lab::new();
    // LU under unbalanced CPU sharing is the paper's own example of
    // mean-compute inaccuracy (§4.4).
    let bench = NasBenchmark::Lu;
    let scenario = Scenario::CpuOneNode;
    let app = lab
        .testbed
        .trace_app(bench, lab.class)
        .total_time
        .as_secs_f64();
    let target = app / 20.0;

    let mean = lab.prediction_error(
        bench,
        scenario,
        |b| b.construct.compute_model = ComputeModel::Mean,
        target,
    );
    let dist = lab.prediction_error(
        bench,
        scenario,
        |b| b.construct.compute_model = ComputeModel::Distribution,
        target,
    );
    eprintln!(
        "ablation compute_model (LU.W, cpu-one-node): mean {mean:.1}% vs \
         frequency-distribution {dist:.1}%"
    );

    c.bench_function("ablation/distribution_exec", |b| {
        let trace = lab.testbed.trace_app(bench, lab.class);
        let mut builder = SkeletonBuilder::new(target);
        builder.construct.compute_model = ComputeModel::Distribution;
        let built = builder.build(&trace);
        b.iter(|| {
            pskel_core::run_skeleton(
                &built.skeleton,
                ClusterSpec::paper_testbed(),
                Placement::round_robin(4, 4),
                ExecOptions::default(),
            )
        })
    });
}

fn ablation_q_rule(c: &mut Criterion) {
    // How does the choice of compression target Q affect the signature and
    // the skeleton? The paper uses Q = K/2 as an empirical rule.
    let trace = run_mpi(
        ClusterSpec::paper_testbed(),
        Placement::round_robin(4, 4),
        "IS.B",
        TraceConfig::on(),
        NasBenchmark::Is.program(Class::B),
    )
    .trace
    .unwrap();
    let k = 10u64;
    for q_factor in [0.25, 0.5, 1.0] {
        let q = (k as f64 * q_factor).max(1.0);
        let out =
            pskel_signature::compress_app(&trace, q, pskel_signature::SignatureOptions::default());
        eprintln!(
            "ablation q_rule (IS.B, K={k}): Q={q:.1} -> threshold {:.2}, ratio {:.1}, \
             saturated={}",
            out.signature
                .sigs
                .iter()
                .map(|s| s.threshold)
                .fold(0.0f64, f64::max),
            out.signature.min_compression_ratio(),
            out.is_saturated(),
        );
    }

    c.bench_function("ablation/q_half_k_compress", |b| {
        b.iter(|| {
            pskel_signature::compress_app(
                &trace,
                (k as f64) / 2.0,
                pskel_signature::SignatureOptions::default(),
            )
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_residue_handling, ablation_compute_model, ablation_q_rule
}
criterion_main!(ablations);
