//! Regenerates Figure 3: prediction error per benchmark across skeleton
//! sizes, averaged over the five sharing scenarios.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let grid = pskel_predict::fig3(&mut ctx).expect("figure 3 evaluation");
    println!("{}", pskel_predict::report::render_fig3(&grid));
    pskel_bench::maybe_emit_json(&grid);
}
