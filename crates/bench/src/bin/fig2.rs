//! Regenerates Figure 2: % time in computation vs. MPI for each benchmark
//! and its skeletons.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let rows = pskel_predict::fig2(&mut ctx).expect("figure 2 evaluation");
    println!("{}", pskel_predict::report::render_fig2(&rows));
    pskel_bench::maybe_emit_json(&rows);
}
