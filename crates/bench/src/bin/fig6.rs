//! Regenerates Figure 6: prediction error across the five resource-sharing
//! scenarios with the largest skeleton.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let grid = pskel_predict::fig6(&mut ctx).expect("figure 6 evaluation");
    println!("{}", pskel_predict::report::render_fig6(&grid));
    pskel_bench::maybe_emit_json(&grid);
}
