//! Regenerates Figure 5: prediction error grouped by skeleton size.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let grid = pskel_predict::fig3(&mut ctx).expect("figure 3 evaluation");
    println!("{}", pskel_predict::report::render_fig5(&grid));
    pskel_bench::maybe_emit_json(&grid);
}
