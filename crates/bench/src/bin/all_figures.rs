//! Regenerates every figure of the paper in one run (shared measurement
//! cache, so this is much cheaper than running the six binaries).
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let t0 = std::time::Instant::now();
    println!("{}", pskel_predict::report::render_fig2(&pskel_predict::fig2(&mut ctx)));
    let grid = pskel_predict::fig3(&mut ctx);
    println!("{}", pskel_predict::report::render_fig3(&grid));
    println!("{}", pskel_predict::report::render_fig4(&pskel_predict::fig4(&mut ctx)));
    println!("{}", pskel_predict::report::render_fig5(&grid));
    println!("{}", pskel_predict::report::render_fig6(&pskel_predict::fig6(&mut ctx)));
    println!("{}", pskel_predict::report::render_fig7(&pskel_predict::fig7(&mut ctx)));
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
