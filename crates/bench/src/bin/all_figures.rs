//! Regenerates every figure of the paper in one run (shared measurement
//! cache, so this is much cheaper than running the six binaries).
//!
//! By default the independent (benchmark × size × scenario) cells are
//! prewarmed across all cores before rendering; pass `--sequential` to
//! evaluate lazily on one thread instead. Pass `--store <dir>` to persist
//! every measurement so a second invocation replays from disk.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let t0 = std::time::Instant::now();
    if !std::env::args().any(|a| a == "--sequential") {
        ctx.prewarm().expect("prewarming the evaluation grid");
        eprintln!("prewarm done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    let fig2 = pskel_predict::fig2(&mut ctx).expect("figure 2 evaluation");
    println!("{}", pskel_predict::report::render_fig2(&fig2));
    let grid = pskel_predict::fig3(&mut ctx).expect("figure 3 evaluation");
    println!("{}", pskel_predict::report::render_fig3(&grid));
    let fig4 = pskel_predict::fig4(&mut ctx).expect("figure 4 evaluation");
    println!("{}", pskel_predict::report::render_fig4(&fig4));
    println!("{}", pskel_predict::report::render_fig5(&grid));
    let fig6 = pskel_predict::fig6(&mut ctx).expect("figure 6 evaluation");
    println!("{}", pskel_predict::report::render_fig6(&fig6));
    let fig7 = pskel_predict::fig7(&mut ctx).expect("figure 7 evaluation");
    println!("{}", pskel_predict::report::render_fig7(&fig7));
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
