//! Regenerates Figure 7: min/avg/max error of skeleton prediction vs. the
//! Class-S and Average baselines under the combined sharing scenario.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let rows = pskel_predict::fig7(&mut ctx).expect("figure 7 evaluation");
    println!("{}", pskel_predict::report::render_fig7(&rows));
    pskel_bench::maybe_emit_json(&rows);
}
