//! Extension experiments beyond the paper (see `pskel-predict`'s
//! `extensions` module): prediction under co-scheduled real applications
//! and across a LAN→WAN deployment change.
//!
//! ```text
//! cargo run --release -p pskel-bench --bin extensions [-- --class A]
//! ```

use pskel_apps::{Class, NasBenchmark};
use pskel_predict::{
    accuracy_vs_comm_fraction, cosched_prediction_dense, probe_cost_comparison,
    wan_prediction_with, Scenario,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let class = args
        .iter()
        .position(|a| a == "--class")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<Class>().expect("bad class"))
        .unwrap_or(Class::A);

    println!(
        "Extension 1: prediction under a co-scheduled real application (class {class})\n\
         (the competitor runs 8 ranks packed 2/node: each dual-CPU node carries\n\
         3 runnable processes, like the paper's competing-process scenarios)"
    );
    println!(
        "{:8} {:12} {:>8} {:>10} {:>8} {:>7}",
        "app", "competitor", "alone", "predicted", "actual", "error"
    );
    for (app, competitor) in [
        (NasBenchmark::Cg, NasBenchmark::Ft),
        (NasBenchmark::Mg, NasBenchmark::Ep),
        (NasBenchmark::Is, NasBenchmark::Cg),
        (NasBenchmark::Bt, NasBenchmark::Ep),
        (NasBenchmark::Lu, NasBenchmark::Ft),
        (NasBenchmark::Ep, NasBenchmark::Mg),
    ] {
        let r = cosched_prediction_dense(app, competitor, class, 20.0);
        println!(
            "{:8} {:12} {:>7.1}s {:>9.1}s {:>7.1}s {:>6.1}%",
            r.app, r.competitor, r.alone_secs, r.predicted_secs, r.actual_secs, r.error_pct
        );
    }

    println!(
        "\nExtension 2: LAN-built skeletons predicting WAN runtimes (class {class})\n\
         (literal = the paper's 1/K residue scaling; consolidated = this\n\
         implementation's improvement — WAN latency amplifies the difference)"
    );
    println!(
        "{:8} {:>8} {:>10} | {:>10} {:>7} | {:>12} {:>7}",
        "app", "LAN", "actual WAN", "literal", "error", "consolidated", "error"
    );
    for app in NasBenchmark::EXTENDED {
        let lit = wan_prediction_with(app, class, 20.0, false);
        let con = wan_prediction_with(app, class, 20.0, true);
        println!(
            "{:8} {:>7.1}s {:>9.1}s | {:>9.1}s {:>6.1}% | {:>11.1}s {:>6.1}%",
            lit.app,
            lit.lan_secs,
            lit.actual_wan_secs,
            lit.predicted_wan_secs,
            lit.error_pct,
            con.predicted_wan_secs,
            con.error_pct
        );
    }

    println!(
        "\nExtension 3: skeleton accuracy across the compute/communication spectrum\n\
         (synthetic halo-exchange stencil, scenario: one throttled link, K=20)"
    );
    println!("{:>16} {:>12} {:>8}", "compute/step", "comm frac", "error");
    let points = [0.05, 0.02, 0.008, 0.003, 0.001, 0.0003, 0.0001];
    for p in accuracy_vs_comm_fraction(Scenario::NetOneLink, &points, 150_000, 20.0) {
        println!(
            "{:>15.4}s {:>11.1}% {:>7.1}%",
            p.compute_per_step,
            100.0 * p.comm_fraction,
            p.error_pct
        );
    }

    println!(
        "\nExtension 4: prediction vehicles at equal K — why compress loops\n\
         (LU under one throttled link, K=200: the naive scaled trace keeps every\n\
         operation and its latency; the skeleton compresses structure)"
    );
    println!("{:26} {:>12} {:>8}", "vehicle", "probe cost", "error");
    for row in probe_cost_comparison(
        pskel_apps::NasBenchmark::Lu,
        class,
        200,
        Scenario::NetOneLink,
    ) {
        println!(
            "{:26} {:>11.2}s {:>7.1}%",
            row.method, row.probe_secs, row.error_pct
        );
    }
}
