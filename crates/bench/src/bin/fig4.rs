//! Regenerates Figure 4: estimated minimum execution time of the smallest
//! good skeleton per benchmark.
fn main() {
    let mut ctx = pskel_bench::context_from_args();
    let rows = pskel_predict::fig4(&mut ctx).expect("figure 4 evaluation");
    println!("{}", pskel_predict::report::render_fig4(&rows));
    pskel_bench::maybe_emit_json(&rows);
}
