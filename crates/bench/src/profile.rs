//! The build-profile vocabulary shared by every benchmark report and
//! selftest document.
//!
//! CI gates assert `"release"` on smoke jobs, so the exact strings are
//! contract: one definition here, re-exported wherever a report needs it
//! (the four bench reports, `pskel-serve` selftests, the fleet selftest).

/// The build profile of this binary, as recorded in benchmark and
/// selftest reports (CI asserts `"release"` on its smoke jobs).
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_the_compiled_debug_assertions() {
        let expected = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        assert_eq!(build_profile(), expected);
    }

    #[test]
    fn profile_is_part_of_the_ci_vocabulary() {
        // The CI gates string-match these two values; anything else would
        // silently pass every `profile == "release"` assertion.
        assert!(matches!(build_profile(), "debug" | "release"));
    }
}
