//! Wall-clock benchmark of streaming ingest vs the batch pipeline
//! (`pskel bench ingest`).
//!
//! Feeds the same encoded binary trace to [`pskel_ingest`]'s incremental
//! engine and to the materialize-then-compress batch path, reports MiB of
//! trace consumed per wall second for each, and checks the two paths
//! still produce bit-identical signatures (the equivalence the
//! differential proptests in `pskel-ingest` pin down; here it doubles as
//! a guard that the benchmark measured the same work twice). The report
//! also carries the memory-bound witnesses: the engine's peak in-flight
//! per-rank event count against the whole-trace event count, plus peak
//! RSS (`VmHWM`) snapshots taken after each stage where the platform
//! exposes them. Cheap enough for CI smoke jobs; emits machine-readable
//! JSON (`BENCH_ingest.json`) for artifact tracking.

use crate::profile::build_profile;
use pskel_ingest::{batch_signature, ingest_path, ingest_reader, IngestOptions, IngestReport};
use pskel_signature::AppSignature;
use pskel_store::binfmt::{load_trace_auto, read_trace_binary, write_trace_binary};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
pub struct IngestBenchResult {
    pub name: String,
    pub ranks: usize,
    /// MPI events in the trace (identical on both paths).
    pub events: u64,
    /// Encoded size of the binary trace.
    pub bytes: u64,
    pub reps: usize,
    /// Best-of-`reps` wall seconds streaming the encoded bytes.
    pub streaming_secs: f64,
    /// Best-of-`reps` wall seconds materializing the trace + compressing.
    pub batch_secs: f64,
    pub streaming_mib_per_sec: f64,
    pub batch_mib_per_sec: f64,
    /// `batch_secs / streaming_secs`.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical signatures.
    pub identical: bool,
    /// Largest number of in-flight event occurrences the engine held for
    /// any single rank — must stay well below `events` (memory is
    /// O(largest rank), not O(trace)).
    pub peak_rank_events: usize,
    /// Collective-delimited phases the streaming pass resolved.
    pub phases: usize,
    /// Whether the streaming source was an mmap (file workloads only).
    pub mapped: bool,
    /// `VmHWM` (KiB) right after the streaming reps; `None` where
    /// `/proc/self/status` is unavailable. The counter is process-wide
    /// and monotonic, so only the streaming→batch growth is meaningful.
    pub peak_rss_after_streaming_kib: Option<u64>,
    /// `VmHWM` (KiB) right after the batch reps.
    pub peak_rss_after_batch_kib: Option<u64>,
}

#[derive(Debug, Clone, Serialize)]
pub struct IngestBenchReport {
    /// Build profile of this binary; debug-build MiB/s numbers are not
    /// comparable to release floors.
    pub profile: &'static str,
    pub fast: bool,
    pub results: Vec<IngestBenchResult>,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// Peak resident set size (`VmHWM`) of this process in KiB, where the
/// platform exposes `/proc/self/status`.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn result(
    name: &str,
    reps: usize,
    bytes: u64,
    streaming_secs: f64,
    streamed: &IngestReport,
    batch_secs: f64,
    batch: &AppSignature,
    rss: (Option<u64>, Option<u64>),
) -> IngestBenchResult {
    let mib = bytes as f64 / (1024.0 * 1024.0);
    IngestBenchResult {
        name: name.to_string(),
        ranks: streamed.stats.ranks,
        events: streamed.stats.events,
        bytes,
        reps,
        streaming_secs,
        batch_secs,
        streaming_mib_per_sec: mib / streaming_secs,
        batch_mib_per_sec: mib / batch_secs,
        speedup: batch_secs / streaming_secs,
        identical: streamed.signature == *batch,
        peak_rank_events: streamed.stats.peak_rank_events,
        phases: streamed.phases.nphases(),
        mapped: streamed.stats.mapped,
        peak_rss_after_streaming_kib: rss.0,
        peak_rss_after_batch_kib: rss.1,
    }
}

/// Run the streaming-vs-batch ingest benchmark suite. `fast` shrinks
/// workloads and repetitions for smoke jobs.
pub fn run_ingest_bench(fast: bool) -> IngestBenchReport {
    let reps = if fast { 3 } else { 5 };
    let opts = IngestOptions::default();
    let mut results = Vec::new();

    // Case 1: encoded bytes already in memory — isolates the engine from
    // the filesystem. Streaming consumes the bytes directly; batch must
    // first materialize the AppTrace they encode.
    {
        let events = if fast { 1_500 } else { 10_000 };
        let trace = pskel_trace::synthetic_app_trace(8, events, 0x1A6E57);
        let mut bytes = Vec::new();
        write_trace_binary(&mut bytes, &trace).expect("encoding to memory cannot fail");
        drop(trace);
        let (streaming_secs, streamed) = time_best(reps, || {
            ingest_reader(
                bytes.as_slice(),
                &opts,
                Some(bytes.len() as u64),
                &mut |_| {},
            )
            .expect("well-formed trace")
        });
        let rss_stream = peak_rss_kib();
        let (batch_secs, batch) = time_best(reps, || {
            let trace = read_trace_binary(bytes.as_slice()).expect("well-formed trace");
            batch_signature(&trace, &opts)
        });
        results.push(result(
            "ingest_mem_8rank",
            reps,
            bytes.len() as u64,
            streaming_secs,
            &streamed,
            batch_secs,
            &batch,
            (rss_stream, peak_rss_kib()),
        ));
    }

    // Case 2: a trace file on disk, where the streaming path gets to
    // mmap the source and skip buffered reads entirely.
    {
        let events = if fast { 500 } else { 4_000 };
        let trace = pskel_trace::synthetic_app_trace(32, events, 0xF11E);
        let dir = std::env::temp_dir().join("pskel-bench-ingest");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bench.pskt");
        let file = std::fs::File::create(&path).expect("temp file");
        write_trace_binary(std::io::BufWriter::new(file), &trace).expect("write trace file");
        drop(trace);
        let bytes = std::fs::metadata(&path).expect("trace file written").len();
        let (streaming_secs, streamed) = time_best(reps, || {
            ingest_path(&path, &opts, &mut |_| {}).expect("well-formed trace file")
        });
        let rss_stream = peak_rss_kib();
        let (batch_secs, batch) = time_best(reps, || {
            let trace = load_trace_auto(&path).expect("well-formed trace file");
            batch_signature(&trace, &opts)
        });
        results.push(result(
            "ingest_file_32rank",
            reps,
            bytes,
            streaming_secs,
            &streamed,
            batch_secs,
            &batch,
            (rss_stream, peak_rss_kib()),
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    IngestBenchReport {
        profile: build_profile(),
        fast,
        results,
    }
}

impl IngestBenchReport {
    /// Serialize to pretty-printed JSON. Hand-rolled like
    /// [`crate::SimBenchReport::to_json`] so emission works even where
    /// serde_json is unavailable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn opt(v: Option<u64>) -> String {
            v.map_or_else(|| "null".to_string(), |v| v.to_string())
        }
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(s, "  \"fast\": {},", self.fast);
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"ranks\": {},", r.ranks);
            let _ = writeln!(s, "      \"events\": {},", r.events);
            let _ = writeln!(s, "      \"bytes\": {},", r.bytes);
            let _ = writeln!(s, "      \"reps\": {},", r.reps);
            let _ = writeln!(s, "      \"streaming_secs\": {},", r.streaming_secs);
            let _ = writeln!(s, "      \"batch_secs\": {},", r.batch_secs);
            let _ = writeln!(
                s,
                "      \"streaming_mib_per_sec\": {},",
                r.streaming_mib_per_sec
            );
            let _ = writeln!(s, "      \"batch_mib_per_sec\": {},", r.batch_mib_per_sec);
            let _ = writeln!(s, "      \"speedup\": {},", r.speedup);
            let _ = writeln!(s, "      \"identical\": {},", r.identical);
            let _ = writeln!(s, "      \"peak_rank_events\": {},", r.peak_rank_events);
            let _ = writeln!(s, "      \"phases\": {},", r.phases);
            let _ = writeln!(s, "      \"mapped\": {},", r.mapped);
            let _ = writeln!(
                s,
                "      \"peak_rss_after_streaming_kib\": {},",
                opt(r.peak_rss_after_streaming_kib)
            );
            let _ = writeln!(
                s,
                "      \"peak_rss_after_batch_kib\": {}",
                opt(r.peak_rss_after_batch_kib)
            );
            let _ = writeln!(
                s,
                "    }}{}",
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s.push('\n');
        s
    }

    /// Render the human-readable table printed by the CLI.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<20} {:>5} {:>8} {:>9} {:>11} {:>11} {:>8} {:>9} {:>10}",
            "workload",
            "ranks",
            "events",
            "bytes",
            "stream_MiB/s",
            "batch_MiB/s",
            "speedup",
            "identical",
            "peak_rank"
        );
        for r in &self.results {
            let _ = writeln!(
                s,
                "{:<20} {:>5} {:>8} {:>9} {:>11.1} {:>11.1} {:>7.1}x {:>9} {:>10}",
                r.name,
                r.ranks,
                r.events,
                r.bytes,
                r.streaming_mib_per_sec,
                r.batch_mib_per_sec,
                r.speedup,
                r.identical,
                r.peak_rank_events
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_bit_identical_with_bounded_memory_and_valid_json() {
        let report = run_ingest_bench(true);
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert!(r.identical, "{}: streaming diverged from batch", r.name);
            assert!(r.events > 0 && r.bytes > 0, "{}: empty workload", r.name);
            assert!(r.streaming_secs > 0.0 && r.batch_secs > 0.0);
            assert!(
                (r.peak_rank_events as u64) < r.events,
                "{}: peak in-flight events must be per-rank, not per-trace",
                r.name
            );
            assert!(r.phases > 0, "{}: no phases resolved", r.name);
        }
        #[cfg(unix)]
        assert!(
            report.results.iter().any(|r| r.mapped),
            "the file workload must exercise the mmap source"
        );
        let json = report.to_json();
        assert!(json.contains("\"streaming_mib_per_sec\""), "json: {json}");
        assert!(json.contains("ingest_file_32rank"), "json: {json}");
        assert_eq!(report.table().lines().count(), 1 + report.results.len());
    }
}
