//! Wall-clock benchmark of forked sweep execution
//! (`pskel bench sweep`).
//!
//! Builds a 16-point late-divergence sweep — identical scripts, placement
//! and static spec, with each point scheduling a different competing-load
//! event at ~80% of the simulated timeline — and times per-point serial
//! execution against the copy-on-write divergence-tree executor
//! ([`pskel_sim::try_run_scripts_sweep`]). Reports points per wall
//! second on both paths, the speedup, the prefix-reuse fraction (the
//! share of per-point serial engine events the forked run never had to
//! execute), and whether every point's [`SimReport`] is bit-identical
//! between the paths — the equivalence the proptests in `pskel-sim` pin
//! down, doubling here as a guard that both paths measured the same
//! work. Cheap enough for CI smoke jobs; emits machine-readable JSON
//! (`BENCH_sweep.json`) for artifact tracking.

use crate::profile::build_profile;
use pskel_mpi::{MpiOps, ScriptBuilder};
use pskel_sim::{
    try_run_scripts_sweep, ClusterSpec, Placement, RankScript, SimDuration, SimReport, Simulation,
    SweepJob, TimelineAction, TimelineEvent,
};
use serde::Serialize;
use std::time::Instant;

/// How far into the simulated timeline the points diverge. The issue
/// floor is "the last quarter"; 80% leaves headroom for the event's own
/// effects to finish inside the horizon.
const DIVERGENCE_AT: f64 = 0.8;

#[derive(Debug, Clone, Serialize)]
pub struct SweepBenchReport {
    /// Build profile of this binary; debug-build numbers are not
    /// comparable to release floors.
    pub profile: &'static str,
    pub fast: bool,
    /// `std::thread::available_parallelism()` of the benchmarking host.
    /// The prefix-reuse fraction is host-independent; wall-clock speedup
    /// beyond the algorithmic savings needs > 1.
    pub host_parallelism: usize,
    /// Sweep points (16: the issue's headline shape).
    pub points: usize,
    pub ranks: usize,
    /// Engine events one serial point processes.
    pub events_per_point: u64,
    /// Fraction of the timeline shared before the points diverge.
    pub divergence_at: f64,
    pub reps: usize,
    /// Best-of-`reps` wall seconds executing every point serially.
    pub serial_secs: f64,
    /// Best-of-`reps` wall seconds for the forked sweep executor.
    pub forked_secs: f64,
    pub serial_points_per_sec: f64,
    pub forked_points_per_sec: f64,
    /// `serial_secs / forked_secs` (> 1 means the forked executor won).
    pub speedup: f64,
    /// `1 - executed_events / serial_events` over the forked run: the
    /// share of per-point serial work the shared prefix amortized away.
    pub prefix_reuse: f64,
    /// Fork points the divergence tree took.
    pub forks: u64,
    /// Points answered by fanning another point's report.
    pub dedup_hits: u64,
    /// Whether every point was bit-identical between the two paths.
    pub identical: bool,
}

/// Compressed loop-nest scripts (signature/skeleton shape): an outer
/// iteration loop of compute + ring exchange + allreduce.
fn loop_nest_scripts(nranks: usize, iters: u64, sw_overhead_secs: f64) -> Vec<RankScript> {
    (0..nranks)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, nranks, sw_overhead_secs);
            b.begin_loop(iters);
            MpiOps::compute(&mut b, 1.5e-5);
            let s = MpiOps::isend(&mut b, (rank + 1) % nranks, 3, 10_000);
            let r = MpiOps::irecv(&mut b, Some((rank + nranks - 1) % nranks), Some(3), 10_000);
            MpiOps::waitall(&mut b, vec![s, r]);
            MpiOps::allreduce(&mut b, 512);
            b.end_loop();
            b.finish()
        })
        .collect()
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// Run the sweep-execution benchmark. `fast` shrinks the workload and
/// repetitions for smoke jobs; the 16-point shape is kept either way so
/// the headline number stays comparable.
pub fn run_sweep_bench(fast: bool) -> SweepBenchReport {
    let points = 16;
    let nranks = 8;
    let nodes = 2;
    let iters: u64 = if fast { 80 } else { 400 };
    let reps = if fast { 2 } else { 3 };

    let base = ClusterSpec::homogeneous(nodes);
    let placement = Placement::blocked(nranks, nodes);
    let scripts = loop_nest_scripts(nranks, iters, base.net.sw_overhead.as_secs_f64());

    // Probe the undisturbed horizon once so the divergence events land at
    // a fixed fraction of the simulated timeline regardless of workload
    // size.
    let horizon = Simulation::new(base.clone(), placement.clone())
        .try_run_scripts(&scripts)
        .expect("probe run completes")
        .total_time
        .as_secs_f64();
    let specs: Vec<ClusterSpec> = (0..points)
        .map(|k| {
            let mut spec = base.clone();
            spec.timeline.events.push(TimelineEvent {
                at: SimDuration::from_secs_f64(horizon * DIVERGENCE_AT),
                node: 0,
                action: TimelineAction::AddCompeting(1 + k as i64),
                fault: false,
            });
            spec
        })
        .collect();

    let (serial_secs, serial_reports) = time_best(reps, || {
        specs
            .iter()
            .map(|spec| {
                Simulation::new(spec.clone(), placement.clone())
                    .try_run_scripts(&scripts)
                    .expect("serial point completes")
            })
            .collect::<Vec<SimReport>>()
    });
    let (forked_secs, outcome) = time_best(reps, || {
        let jobs: Vec<SweepJob<'_>> = specs
            .iter()
            .map(|spec| SweepJob {
                spec: spec.clone(),
                placement: placement.clone(),
                scripts: &scripts,
            })
            .collect();
        try_run_scripts_sweep(&jobs)
    });

    let identical = outcome.reports.len() == serial_reports.len()
        && outcome
            .reports
            .iter()
            .zip(&serial_reports)
            .all(|(forked, serial)| forked.as_ref().ok() == Some(serial));

    SweepBenchReport {
        profile: build_profile(),
        fast,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        points,
        ranks: nranks,
        events_per_point: serial_reports[0].events,
        divergence_at: DIVERGENCE_AT,
        reps,
        serial_secs,
        forked_secs,
        serial_points_per_sec: points as f64 / serial_secs,
        forked_points_per_sec: points as f64 / forked_secs,
        speedup: serial_secs / forked_secs,
        prefix_reuse: outcome.stats.reuse_fraction(),
        forks: outcome.stats.forks,
        dedup_hits: outcome.stats.dedup_hits,
        identical,
    }
}

impl SweepBenchReport {
    /// Serialize to pretty-printed JSON. Hand-rolled like
    /// [`crate::CompressBenchReport::to_json`] so emission works even
    /// where serde_json is unavailable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(s, "  \"fast\": {},", self.fast);
        let _ = writeln!(s, "  \"host_parallelism\": {},", self.host_parallelism);
        let _ = writeln!(s, "  \"points\": {},", self.points);
        let _ = writeln!(s, "  \"ranks\": {},", self.ranks);
        let _ = writeln!(s, "  \"events_per_point\": {},", self.events_per_point);
        let _ = writeln!(s, "  \"divergence_at\": {},", self.divergence_at);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(s, "  \"serial_secs\": {},", self.serial_secs);
        let _ = writeln!(s, "  \"forked_secs\": {},", self.forked_secs);
        let _ = writeln!(
            s,
            "  \"serial_points_per_sec\": {},",
            self.serial_points_per_sec
        );
        let _ = writeln!(
            s,
            "  \"forked_points_per_sec\": {},",
            self.forked_points_per_sec
        );
        let _ = writeln!(s, "  \"speedup\": {},", self.speedup);
        let _ = writeln!(s, "  \"prefix_reuse\": {},", self.prefix_reuse);
        let _ = writeln!(s, "  \"forks\": {},", self.forks);
        let _ = writeln!(s, "  \"dedup_hits\": {},", self.dedup_hits);
        let _ = writeln!(s, "  \"identical\": {}", self.identical);
        s.push('}');
        s.push('\n');
        s
    }

    /// Render the human-readable table printed by the CLI.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}-point sweep, {} ranks, divergence at {:.0}% of the timeline \
             (host parallelism {}):",
            self.points,
            self.ranks,
            self.divergence_at * 100.0,
            self.host_parallelism
        );
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>12} {:>12}",
            "path", "secs", "points/s", "events/pt"
        );
        let _ = writeln!(
            s,
            "{:<10} {:>10.4} {:>12.1} {:>12}",
            "serial", self.serial_secs, self.serial_points_per_sec, self.events_per_point
        );
        let _ = writeln!(
            s,
            "{:<10} {:>10.4} {:>12.1} {:>12}",
            "forked", self.forked_secs, self.forked_points_per_sec, self.events_per_point
        );
        let _ = writeln!(
            s,
            "speedup {:.2}x  prefix reuse {:.1}%  forks {}  dedup hits {}  identical {}",
            self.speedup,
            self.prefix_reuse * 100.0,
            self.forks,
            self.dedup_hits,
            self.identical
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_bit_identical_and_reuses_the_prefix() {
        let report = run_sweep_bench(true);
        assert!(report.identical, "forked sweep diverged from serial");
        assert_eq!(report.points, 16);
        assert!(report.events_per_point > 0);
        assert!(report.serial_secs > 0.0 && report.forked_secs > 0.0);
        // The algorithmic savings are host-independent: with divergence
        // at 80%, the shared prefix amortizes most per-point serial work
        // regardless of how many cores ran the suffixes.
        assert!(
            report.prefix_reuse > 0.5,
            "late-divergence sweep reused too little: {}",
            report.prefix_reuse
        );
        assert!(report.forks >= 1, "no fork point was taken");
        let json = report.to_json();
        assert!(json.contains("\"prefix_reuse\""), "json: {json}");
        assert!(json.contains("\"speedup\""), "json: {json}");
        assert!(json.contains("\"identical\": true"), "json: {json}");
        // Banner, header, two path rows, summary line.
        assert_eq!(report.table().lines().count(), 5);
    }
}
