//! # pskel-bench — figure regeneration and performance benchmarks
//!
//! One binary per figure of the paper (`fig2` … `fig7`, plus `all_figures`)
//! and Criterion benchmarks for the framework's own components. Run e.g.:
//!
//! ```text
//! cargo run --release -p pskel-bench --bin fig3
//! cargo bench -p pskel-bench
//! ```
//!
//! Pass `--class W` (or `S`/`A`) to figure binaries for a faster,
//! smaller-scale run; default is the paper's Class B.

pub mod compress;
pub mod ingest;
pub mod mc;
pub mod profile;
pub mod sim;
pub mod sweep;

use pskel_apps::Class;
use pskel_predict::{EvalContext, PAPER_SKELETON_SIZES};
use pskel_store::Store;
use serde::Serialize;
use std::sync::Arc;

pub use compress::{run_compress_bench, CompressBenchReport, CompressBenchResult};
pub use ingest::{run_ingest_bench, IngestBenchReport, IngestBenchResult};
pub use mc::{run_mc_bench, McBenchReport};
pub use profile::build_profile;
pub use sim::{
    run_sim_bench, run_sim_bench_threads, SimBenchReport, SimBenchResult, SimScaleResult,
};
pub use sweep::{run_sweep_bench, SweepBenchReport};

/// Parse common CLI options of the figure binaries: `--class S|W|A|B`
/// scales the run, `--store <dir>` attaches a content-addressed artifact
/// cache so repeated invocations replay measurements instead of
/// re-simulating.
pub fn context_from_args() -> EvalContext {
    let args: Vec<String> = std::env::args().collect();
    let mut class = Class::B;
    let mut store_dir: Option<String> = None;
    for i in 0..args.len() {
        if args[i] == "--class" {
            class = match args.get(i + 1).map(String::as_str) {
                Some("S") => Class::S,
                Some("W") => Class::W,
                Some("A") => Class::A,
                Some("B") => Class::B,
                other => panic!("unknown class {other:?}; use S, W, A or B"),
            };
        }
        if args[i] == "--store" {
            store_dir = Some(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("--store needs a directory argument"))
                    .clone(),
            );
        }
    }
    // Skeleton sizes scale with the class so smaller runs stay meaningful.
    let scale = match class {
        Class::B => 1.0,
        Class::A => 0.25,
        Class::W => 0.05,
        Class::S => 0.001,
    };
    let sizes: Vec<f64> = PAPER_SKELETON_SIZES.iter().map(|s| s * scale).collect();
    let mut ctx = EvalContext::new(class, &sizes);
    if let Some(dir) = store_dir {
        let store = Store::open(&dir)
            .unwrap_or_else(|e| panic!("cannot open artifact store at {dir}: {e}"));
        ctx.set_store(Arc::new(store));
    }
    ctx
}

/// If `--json` was passed, print the figure's data as JSON (in addition to
/// the table, which goes to stderr in that mode being unnecessary — the
/// caller already printed it to stdout; here we simply emit the JSON after
/// it, separated by a marker line).
pub fn maybe_emit_json<T: Serialize>(data: &T) {
    if std::env::args().any(|a| a == "--json") {
        println!("--- json ---");
        println!(
            "{}",
            serde_json::to_string_pretty(data).expect("figure data serializes")
        );
    }
}
