//! Wall-clock benchmark of signature compression (`pskel bench compress`).
//!
//! Times the full `compress_process`/`compress_app` hot path — clustering,
//! loop folding, threshold search — on deterministic workloads and reports
//! speedup against recorded pre-optimization baselines. Complements the
//! Criterion benches in `benches/components.rs`: this runner is cheap
//! enough for CI smoke jobs and emits machine-readable JSON
//! (`BENCH_compress.json`) for artifact tracking.

use pskel_apps::{Class, NasBenchmark};
use pskel_mpi::{run_mpi, TraceConfig};
use pskel_signature::{compress_app, compress_process, SignatureOptions};
use pskel_sim::{ClusterSpec, Placement};
use pskel_trace::{synthetic_app_trace, synthetic_process_trace};
use serde::Serialize;
use std::time::Instant;

/// Pre-optimization wall times in seconds, measured at the commit before
/// the indexed-clustering / incremental-folding rewrite on the development
/// machine (single core, best of 5). `None` where no baseline run was
/// recorded; speedups are only reported against these fixed references,
/// so they are comparable across runs of the same machine class.
const BASELINE_SYNTH_CG_SIZED: Option<f64> = Some(0.0229);
const BASELINE_SYNTH_100K: Option<f64> = Some(3.0141);
const BASELINE_APP_SYNTH_4X25K: Option<f64> = Some(2.6248);
const BASELINE_CG_W_RANK0: Option<f64> = None;

#[derive(Debug, Clone, Serialize)]
pub struct CompressBenchResult {
    pub name: String,
    pub events: usize,
    /// Best-of-`reps` wall time in seconds.
    pub secs: f64,
    pub reps: usize,
    pub events_per_sec: f64,
    /// Achieved compression ratio (minimum across ranks for app runs).
    pub ratio: f64,
    /// Similarity threshold the search settled on (max across ranks).
    pub threshold: f64,
    pub baseline_secs: Option<f64>,
    /// `baseline_secs / secs` when a baseline is recorded.
    pub speedup: Option<f64>,
}

#[derive(Debug, Clone, Serialize)]
pub struct CompressBenchReport {
    /// Build profile the benchmark binary was compiled with. Debug-build
    /// numbers are not comparable to the recorded baselines; consumers
    /// should gate on `"release"`.
    pub profile: &'static str,
    pub fast: bool,
    pub results: Vec<CompressBenchResult>,
}

pub use crate::profile::build_profile;

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

fn result(
    name: &str,
    events: usize,
    secs: f64,
    reps: usize,
    ratio: f64,
    threshold: f64,
    baseline_secs: Option<f64>,
) -> CompressBenchResult {
    CompressBenchResult {
        name: name.to_string(),
        events,
        secs,
        reps,
        events_per_sec: events as f64 / secs,
        ratio,
        threshold,
        baseline_secs,
        speedup: baseline_secs.map(|b| b / secs),
    }
}

/// Run the compression benchmark suite.
///
/// `fast` lowers the repetition count for smoke jobs; `include_nas` adds
/// the traced CG.W workload (requires simulating the benchmark first,
/// which dominates the run time of the suite).
pub fn run_compress_bench(fast: bool, include_nas: bool) -> CompressBenchReport {
    let reps = if fast { 2 } else { 5 };
    let mut results = Vec::new();

    if include_nas {
        let trace = run_mpi(
            ClusterSpec::paper_testbed(),
            Placement::round_robin(4, 4),
            "CG.W",
            TraceConfig::on(),
            NasBenchmark::Cg.program(Class::W),
        )
        .trace
        .expect("tracing enabled");
        let p = &trace.procs[0];
        let (secs, out) = time_best(reps, || {
            compress_process(p, 20.0, SignatureOptions::default())
        });
        results.push(result(
            "compress_cg_w_rank0",
            p.n_events(),
            secs,
            reps,
            out.signature.compression_ratio(),
            out.signature.threshold,
            BASELINE_CG_W_RANK0,
        ));
    }

    // About the event count of one CG.W rank, but fully deterministic and
    // simulator-free, so the number isolates the compression stack.
    let cg_sized = synthetic_process_trace(0, 3_000, 0xC6);
    let (secs, out) = time_best(reps, || {
        compress_process(&cg_sized, 20.0, SignatureOptions::default())
    });
    results.push(result(
        "compress_synth_cg_sized",
        cg_sized.n_events(),
        secs,
        reps,
        out.signature.compression_ratio(),
        out.signature.threshold,
        BASELINE_SYNTH_CG_SIZED,
    ));

    let big = synthetic_process_trace(0, 100_000, 0xB16);
    let (secs, out) = time_best(reps, || {
        compress_process(&big, 50.0, SignatureOptions::default())
    });
    results.push(result(
        "compress_synth_100k",
        big.n_events(),
        secs,
        reps,
        out.signature.compression_ratio(),
        out.signature.threshold,
        BASELINE_SYNTH_100K,
    ));

    let app = synthetic_app_trace(4, 25_000, 0xA44);
    let (secs, out) = time_best(reps, || {
        compress_app(&app, 50.0, SignatureOptions::default())
    });
    results.push(result(
        "compress_app_synth_4x25k",
        app.n_events(),
        secs,
        reps,
        out.signature.min_compression_ratio(),
        out.signature
            .sigs
            .iter()
            .map(|s| s.threshold)
            .fold(0.0f64, f64::max),
        BASELINE_APP_SYNTH_4X25K,
    ));

    CompressBenchReport {
        profile: build_profile(),
        fast,
        results,
    }
}

impl CompressBenchReport {
    /// Serialize to pretty-printed JSON. Hand-rolled (the schema is flat
    /// and the names are identifiers) so report emission works even where
    /// serde_json is unavailable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn opt(v: Option<f64>) -> String {
            match v {
                Some(x) => format!("{x}"),
                None => "null".to_string(),
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(s, "  \"fast\": {},", self.fast);
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"events\": {},", r.events);
            let _ = writeln!(s, "      \"secs\": {},", r.secs);
            let _ = writeln!(s, "      \"reps\": {},", r.reps);
            let _ = writeln!(s, "      \"events_per_sec\": {},", r.events_per_sec);
            let _ = writeln!(s, "      \"ratio\": {},", r.ratio);
            let _ = writeln!(s, "      \"threshold\": {},", r.threshold);
            let _ = writeln!(s, "      \"baseline_secs\": {},", opt(r.baseline_secs));
            let _ = writeln!(s, "      \"speedup\": {}", opt(r.speedup));
            let _ = writeln!(
                s,
                "    }}{}",
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s.push('\n');
        s
    }

    /// Render the human-readable table printed by the CLI.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<26} {:>8} {:>10} {:>12} {:>8} {:>9}",
            "workload", "events", "secs", "events/s", "ratio", "speedup"
        );
        for r in &self.results {
            let speedup = match r.speedup {
                Some(x) => format!("{x:.1}x"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                s,
                "{:<26} {:>8} {:>10.4} {:>12.0} {:>8.1} {:>9}",
                r.name, r.events, r.secs, r.events_per_sec, r.ratio, speedup
            );
        }
        s
    }
}
