//! Wall-clock benchmark of the simulator's execution paths
//! (`pskel bench sim`).
//!
//! Runs the same deterministic replays on the single-threaded script fast
//! path and the thread-per-rank reference path, reports simulated engine
//! events per wall second for each, and checks the two paths still
//! produce bit-identical [`SimReport`]s (the equivalence the proptests in
//! `pskel-sim` pin down; here it doubles as a guard that the benchmark
//! measured the same work twice). A rank-count scaling series then pits
//! the serial script engine against the time-sliced parallel driver on
//! the same loop-nest workload at growing sizes, recording events/sec,
//! speedup and bit-identity per size plus the host parallelism the run
//! had available (so CI floors can be host-aware: a single-core runner
//! cannot show wall-clock fan-out gains, only the algorithmic ones).
//! Cheap enough for CI smoke jobs; emits machine-readable JSON
//! (`BENCH_sim.json`) for artifact tracking.

use crate::profile::build_profile;
use pskel_apps::{Class, NasBenchmark};
use pskel_core::{replay_trace, replay_trace_threaded, ReplayScale};
use pskel_mpi::{run_mpi, MpiOps, ScriptBuilder, TraceConfig};
use pskel_sim::{ClusterSpec, Placement, RankScript, SimReport, Simulation};
use pskel_trace::AppTrace;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
pub struct SimBenchResult {
    pub name: String,
    pub ranks: usize,
    /// Engine events one run processes (identical on both paths).
    pub events: u64,
    /// Best-of-`reps` wall seconds on the script fast path.
    pub script_secs: f64,
    /// Best-of-`reps` wall seconds on the thread-per-rank path.
    pub threaded_secs: f64,
    pub reps: usize,
    pub script_events_per_sec: f64,
    pub threaded_events_per_sec: f64,
    /// `threaded_secs / script_secs`.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical reports.
    pub identical: bool,
}

/// One point of the serial-vs-parallel rank scaling series.
#[derive(Debug, Clone, Serialize)]
pub struct SimScaleResult {
    pub ranks: usize,
    /// Simulated nodes (= node-local rank groups the parallel driver can
    /// shard across).
    pub nodes: usize,
    /// Outer loop iterations of the per-rank loop nest.
    pub iters: u64,
    /// Engine events one run processes (identical on both engines).
    pub events: u64,
    pub reps: usize,
    /// Best-of-`reps` wall seconds on the serial script engine.
    pub serial_secs: f64,
    /// Best-of-`reps` wall seconds on the time-sliced parallel driver.
    pub parallel_secs: f64,
    pub serial_events_per_sec: f64,
    pub parallel_events_per_sec: f64,
    /// `serial_secs / parallel_secs` (> 1 means the parallel driver won).
    pub speedup: f64,
    /// Whether the two engines produced bit-identical reports.
    pub identical: bool,
}

#[derive(Debug, Clone, Serialize)]
pub struct SimBenchReport {
    /// Build profile of this binary; debug-build events/sec numbers are
    /// not comparable to release floors.
    pub profile: &'static str,
    pub fast: bool,
    /// Pool size handed to the parallel driver in the scaling series.
    pub sim_threads: usize,
    /// `std::thread::available_parallelism()` of the benchmarking host.
    /// Wall-clock fan-out gains need > 1; CI floors key off this.
    pub host_parallelism: usize,
    pub results: Vec<SimBenchResult>,
    /// Serial vs parallel engine at growing rank counts.
    pub scaling: Vec<SimScaleResult>,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

fn result(
    name: &str,
    ranks: usize,
    reps: usize,
    (script_secs, script): (f64, SimReport),
    (threaded_secs, threaded): (f64, SimReport),
) -> SimBenchResult {
    SimBenchResult {
        name: name.to_string(),
        ranks,
        events: script.events,
        script_secs,
        threaded_secs,
        reps,
        script_events_per_sec: script.events as f64 / script_secs,
        threaded_events_per_sec: threaded.events as f64 / threaded_secs,
        speedup: threaded_secs / script_secs,
        identical: script == threaded,
    }
}

/// A 4-rank NAS-shaped trace to replay. The real CG benchmark when the
/// runtime RNG is available (its compute jitter needs it); otherwise a
/// deterministic CG-shaped loop with the same communication skeleton, so
/// offline builds can still smoke the harness.
fn nas_shaped_trace(fast: bool) -> (&'static str, AppTrace) {
    let cluster = ClusterSpec::paper_testbed();
    let placement = Placement::round_robin(4, 4);
    if pskel_sim::script::rng_runtime_available() {
        let class = if fast { Class::S } else { Class::W };
        let name = if fast {
            "replay_cg_s_4rank"
        } else {
            "replay_cg_w_4rank"
        };
        let out = run_mpi(
            cluster,
            placement,
            "CG",
            TraceConfig::on(),
            NasBenchmark::Cg.program(class),
        );
        (name, out.trace.expect("tracing enabled"))
    } else {
        let iters = if fast { 400u64 } else { 2_000 };
        let out = run_mpi(
            cluster,
            placement,
            "CGish",
            TraceConfig::on(),
            move |comm| {
                let (n, me) = (comm.size(), comm.rank());
                for i in 0..iters {
                    comm.compute(2e-5 * (1 + (i + me as u64) % 3) as f64);
                    let s = comm.isend((me + 1) % n, i, 12_000);
                    let r = comm.irecv(Some((me + n - 1) % n), Some(i), 12_000);
                    comm.waitall(vec![s, r]);
                    comm.allreduce(64);
                }
            },
        );
        ("replay_cgish_4rank", out.trace.expect("tracing enabled"))
    }
}

/// Compressed loop-nest scripts shaped like a signature replay: an outer
/// iteration loop whose body is a ring exchange plus an allreduce, stored
/// once and iterated lazily by both paths.
fn loop_nest_scripts(nranks: usize, iters: u64, sw_overhead_secs: f64) -> Vec<RankScript> {
    (0..nranks)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, nranks, sw_overhead_secs);
            b.begin_loop(iters);
            MpiOps::compute(&mut b, 1.5e-5);
            let s = MpiOps::isend(&mut b, (rank + 1) % nranks, 3, 10_000);
            let r = MpiOps::irecv(&mut b, Some((rank + nranks - 1) % nranks), Some(3), 10_000);
            MpiOps::waitall(&mut b, vec![s, r]);
            MpiOps::allreduce(&mut b, 512);
            b.end_loop();
            b.finish()
        })
        .collect()
}

/// Run the simulator-path benchmark suite with a default thread count
/// (the host's available parallelism). `fast` shrinks workloads and
/// repetitions for smoke jobs.
pub fn run_sim_bench(fast: bool) -> SimBenchReport {
    let threads = pskel_sim::resolve_sim_threads(None).unwrap_or(1);
    run_sim_bench_threads(fast, threads)
}

/// Run the simulator-path benchmark suite, handing `sim_threads` pool
/// members to the parallel driver in the scaling series (a floor of 2 is
/// applied there — a 1-thread "parallel" run would dispatch to the serial
/// engine and measure nothing).
pub fn run_sim_bench_threads(fast: bool, sim_threads: usize) -> SimBenchReport {
    let reps = if fast { 3 } else { 5 };
    let mut results = Vec::new();

    // Case 1: replay a traced 4-rank NAS-shaped application, the workload
    // `pskel predict` and the figure binaries replay constantly.
    let (name, trace) = nas_shaped_trace(fast);
    let cluster = ClusterSpec::paper_testbed();
    let placement = Placement::round_robin(4, 4);
    let script = time_best(reps, || {
        replay_trace(
            &trace,
            cluster.clone(),
            placement.clone(),
            ReplayScale::full(),
        )
        .report
    });
    let threaded = time_best(reps, || {
        replay_trace_threaded(
            &trace,
            cluster.clone(),
            placement.clone(),
            ReplayScale::full(),
        )
        .report
    });
    results.push(result(name, 4, reps, script, threaded));

    // Case 2: a compressed loop-nest script (signature/skeleton shape) on
    // more ranks, where per-rank threads and channel round-trips dominate
    // the threaded path.
    let nranks = 8;
    let iters = if fast { 150 } else { 600 };
    let c = ClusterSpec::homogeneous(nranks);
    let p = Placement::round_robin(nranks, nranks);
    let scripts = loop_nest_scripts(nranks, iters, c.net.sw_overhead.as_secs_f64());
    let script = time_best(reps, || {
        Simulation::new(c.clone(), p.clone()).run_scripts(&scripts)
    });
    let threaded = time_best(reps, || {
        Simulation::new(c.clone(), p.clone()).run_scripts_threaded(&scripts)
    });
    results.push(result(
        "skeleton_loop_nest_8rank",
        nranks,
        reps,
        script,
        threaded,
    ));

    // Rank-count scaling series: the serial script engine vs the
    // time-sliced parallel driver on one loop-nest workload at growing
    // sizes. Iteration counts shrink as ranks grow so every point stays
    // CI-cheap while the event counts keep climbing.
    let threads = sim_threads.max(2);
    let sizes: &[(usize, u64)] = if fast {
        &[(8, 60), (32, 30), (64, 20)]
    } else {
        &[(8, 400), (32, 200), (64, 120), (128, 50), (512, 12)]
    };
    let scale_reps = if fast { 2 } else { 3 };
    let mut scaling = Vec::new();
    for &(nranks, iters) in sizes {
        // Multi-rank nodes give the parallel driver real node-local
        // groups to shard (8 ranks per node, the dense end of the
        // paper's testbed shapes).
        let nodes = (nranks / 8).max(2);
        let c = ClusterSpec::homogeneous(nodes);
        let p = Placement::blocked(nranks, nodes);
        let scripts = loop_nest_scripts(nranks, iters, c.net.sw_overhead.as_secs_f64());
        let (serial_secs, serial) = time_best(scale_reps, || {
            Simulation::new(c.clone(), p.clone()).run_scripts(&scripts)
        });
        let (parallel_secs, parallel) = time_best(scale_reps, || {
            Simulation::new(c.clone(), p.clone()).run_scripts_parallel(&scripts, threads)
        });
        scaling.push(SimScaleResult {
            ranks: nranks,
            nodes,
            iters,
            events: serial.events,
            reps: scale_reps,
            serial_secs,
            parallel_secs,
            serial_events_per_sec: serial.events as f64 / serial_secs,
            parallel_events_per_sec: parallel.events as f64 / parallel_secs,
            speedup: serial_secs / parallel_secs,
            identical: serial == parallel,
        });
    }

    SimBenchReport {
        profile: build_profile(),
        fast,
        sim_threads: threads,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        results,
        scaling,
    }
}

impl SimBenchReport {
    /// Serialize to pretty-printed JSON. Hand-rolled like
    /// [`crate::CompressBenchReport::to_json`] so emission works even
    /// where serde_json is unavailable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(s, "  \"fast\": {},", self.fast);
        let _ = writeln!(s, "  \"sim_threads\": {},", self.sim_threads);
        let _ = writeln!(s, "  \"host_parallelism\": {},", self.host_parallelism);
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"ranks\": {},", r.ranks);
            let _ = writeln!(s, "      \"events\": {},", r.events);
            let _ = writeln!(s, "      \"script_secs\": {},", r.script_secs);
            let _ = writeln!(s, "      \"threaded_secs\": {},", r.threaded_secs);
            let _ = writeln!(s, "      \"reps\": {},", r.reps);
            let _ = writeln!(
                s,
                "      \"script_events_per_sec\": {},",
                r.script_events_per_sec
            );
            let _ = writeln!(
                s,
                "      \"threaded_events_per_sec\": {},",
                r.threaded_events_per_sec
            );
            let _ = writeln!(s, "      \"speedup\": {},", r.speedup);
            let _ = writeln!(s, "      \"identical\": {}", r.identical);
            let _ = writeln!(
                s,
                "    }}{}",
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"scaling\": [");
        for (i, r) in self.scaling.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"ranks\": {},", r.ranks);
            let _ = writeln!(s, "      \"nodes\": {},", r.nodes);
            let _ = writeln!(s, "      \"iters\": {},", r.iters);
            let _ = writeln!(s, "      \"events\": {},", r.events);
            let _ = writeln!(s, "      \"reps\": {},", r.reps);
            let _ = writeln!(s, "      \"serial_secs\": {},", r.serial_secs);
            let _ = writeln!(s, "      \"parallel_secs\": {},", r.parallel_secs);
            let _ = writeln!(
                s,
                "      \"serial_events_per_sec\": {},",
                r.serial_events_per_sec
            );
            let _ = writeln!(
                s,
                "      \"parallel_events_per_sec\": {},",
                r.parallel_events_per_sec
            );
            let _ = writeln!(s, "      \"speedup\": {},", r.speedup);
            let _ = writeln!(s, "      \"identical\": {}", r.identical);
            let _ = writeln!(
                s,
                "    }}{}",
                if i + 1 < self.scaling.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s.push('\n');
        s
    }

    /// Render the human-readable table printed by the CLI.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<24} {:>5} {:>9} {:>11} {:>11} {:>12} {:>8} {:>9}",
            "workload",
            "ranks",
            "events",
            "script_s",
            "threaded_s",
            "script_ev/s",
            "speedup",
            "identical"
        );
        for r in &self.results {
            let _ = writeln!(
                s,
                "{:<24} {:>5} {:>9} {:>11.4} {:>11.4} {:>12.0} {:>7.1}x {:>9}",
                r.name,
                r.ranks,
                r.events,
                r.script_secs,
                r.threaded_secs,
                r.script_events_per_sec,
                r.speedup,
                r.identical
            );
        }
        let _ = writeln!(
            s,
            "\nrank scaling, serial vs parallel ({} sim threads, host parallelism {}):",
            self.sim_threads, self.host_parallelism
        );
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>9} {:>12} {:>14} {:>8} {:>9}",
            "ranks", "nodes", "events", "serial_ev/s", "parallel_ev/s", "speedup", "identical"
        );
        for r in &self.scaling {
            let _ = writeln!(
                s,
                "{:>6} {:>6} {:>9} {:>12.0} {:>14.0} {:>7.2}x {:>9}",
                r.ranks,
                r.nodes,
                r.events,
                r.serial_events_per_sec,
                r.parallel_events_per_sec,
                r.speedup,
                r.identical
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_identical_reports_and_valid_json() {
        let report = run_sim_bench_threads(true, 2);
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert!(r.identical, "{}: paths diverged", r.name);
            assert!(r.events > 0, "{}: no events", r.name);
            assert!(r.script_secs > 0.0 && r.threaded_secs > 0.0);
        }
        assert!(!report.scaling.is_empty());
        assert!(report.sim_threads >= 2);
        assert!(report.host_parallelism >= 1);
        let mut last_ranks = 0;
        for r in &report.scaling {
            assert!(r.ranks > last_ranks, "sizes must grow");
            last_ranks = r.ranks;
            assert!(r.identical, "{} ranks: engines diverged", r.ranks);
            assert!(r.events > 0 && r.serial_secs > 0.0 && r.parallel_secs > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"profile\""), "json: {json}");
        assert!(json.contains("skeleton_loop_nest_8rank"), "json: {json}");
        assert!(json.contains("\"scaling\""), "json: {json}");
        assert!(json.contains("\"host_parallelism\""), "json: {json}");
        // The table renders the path results, then a blank line, the
        // scaling banner, its header and one line per scaling point.
        assert_eq!(
            report.table().lines().count(),
            1 + report.results.len() + 3 + report.scaling.len()
        );
    }
}
