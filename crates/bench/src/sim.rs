//! Wall-clock benchmark of the simulator's execution paths
//! (`pskel bench sim`).
//!
//! Runs the same deterministic replays on the single-threaded script fast
//! path and the thread-per-rank reference path, reports simulated engine
//! events per wall second for each, and checks the two paths still
//! produce bit-identical [`SimReport`]s (the equivalence the proptests in
//! `pskel-sim` pin down; here it doubles as a guard that the benchmark
//! measured the same work twice). Cheap enough for CI smoke jobs; emits
//! machine-readable JSON (`BENCH_sim.json`) for artifact tracking.

use crate::compress::build_profile;
use pskel_apps::{Class, NasBenchmark};
use pskel_core::{replay_trace, replay_trace_threaded, ReplayScale};
use pskel_mpi::{run_mpi, MpiOps, ScriptBuilder, TraceConfig};
use pskel_sim::{ClusterSpec, Placement, RankScript, SimReport, Simulation};
use pskel_trace::AppTrace;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
pub struct SimBenchResult {
    pub name: String,
    pub ranks: usize,
    /// Engine events one run processes (identical on both paths).
    pub events: u64,
    /// Best-of-`reps` wall seconds on the script fast path.
    pub script_secs: f64,
    /// Best-of-`reps` wall seconds on the thread-per-rank path.
    pub threaded_secs: f64,
    pub reps: usize,
    pub script_events_per_sec: f64,
    pub threaded_events_per_sec: f64,
    /// `threaded_secs / script_secs`.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical reports.
    pub identical: bool,
}

#[derive(Debug, Clone, Serialize)]
pub struct SimBenchReport {
    /// Build profile of this binary; debug-build events/sec numbers are
    /// not comparable to release floors.
    pub profile: &'static str,
    pub fast: bool,
    pub results: Vec<SimBenchResult>,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

fn result(
    name: &str,
    ranks: usize,
    reps: usize,
    (script_secs, script): (f64, SimReport),
    (threaded_secs, threaded): (f64, SimReport),
) -> SimBenchResult {
    SimBenchResult {
        name: name.to_string(),
        ranks,
        events: script.events,
        script_secs,
        threaded_secs,
        reps,
        script_events_per_sec: script.events as f64 / script_secs,
        threaded_events_per_sec: threaded.events as f64 / threaded_secs,
        speedup: threaded_secs / script_secs,
        identical: script == threaded,
    }
}

/// A 4-rank NAS-shaped trace to replay. The real CG benchmark when the
/// runtime RNG is available (its compute jitter needs it); otherwise a
/// deterministic CG-shaped loop with the same communication skeleton, so
/// offline builds can still smoke the harness.
fn nas_shaped_trace(fast: bool) -> (&'static str, AppTrace) {
    let cluster = ClusterSpec::paper_testbed();
    let placement = Placement::round_robin(4, 4);
    if pskel_sim::script::rng_runtime_available() {
        let class = if fast { Class::S } else { Class::W };
        let name = if fast {
            "replay_cg_s_4rank"
        } else {
            "replay_cg_w_4rank"
        };
        let out = run_mpi(
            cluster,
            placement,
            "CG",
            TraceConfig::on(),
            NasBenchmark::Cg.program(class),
        );
        (name, out.trace.expect("tracing enabled"))
    } else {
        let iters = if fast { 400u64 } else { 2_000 };
        let out = run_mpi(
            cluster,
            placement,
            "CGish",
            TraceConfig::on(),
            move |comm| {
                let (n, me) = (comm.size(), comm.rank());
                for i in 0..iters {
                    comm.compute(2e-5 * (1 + (i + me as u64) % 3) as f64);
                    let s = comm.isend((me + 1) % n, i, 12_000);
                    let r = comm.irecv(Some((me + n - 1) % n), Some(i), 12_000);
                    comm.waitall(vec![s, r]);
                    comm.allreduce(64);
                }
            },
        );
        ("replay_cgish_4rank", out.trace.expect("tracing enabled"))
    }
}

/// Compressed loop-nest scripts shaped like a signature replay: an outer
/// iteration loop whose body is a ring exchange plus an allreduce, stored
/// once and iterated lazily by both paths.
fn loop_nest_scripts(nranks: usize, iters: u64, sw_overhead_secs: f64) -> Vec<RankScript> {
    (0..nranks)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, nranks, sw_overhead_secs);
            b.begin_loop(iters);
            MpiOps::compute(&mut b, 1.5e-5);
            let s = MpiOps::isend(&mut b, (rank + 1) % nranks, 3, 10_000);
            let r = MpiOps::irecv(&mut b, Some((rank + nranks - 1) % nranks), Some(3), 10_000);
            MpiOps::waitall(&mut b, vec![s, r]);
            MpiOps::allreduce(&mut b, 512);
            b.end_loop();
            b.finish()
        })
        .collect()
}

/// Run the simulator-path benchmark suite. `fast` shrinks workloads and
/// repetitions for smoke jobs.
pub fn run_sim_bench(fast: bool) -> SimBenchReport {
    let reps = if fast { 3 } else { 5 };
    let mut results = Vec::new();

    // Case 1: replay a traced 4-rank NAS-shaped application, the workload
    // `pskel predict` and the figure binaries replay constantly.
    let (name, trace) = nas_shaped_trace(fast);
    let cluster = ClusterSpec::paper_testbed();
    let placement = Placement::round_robin(4, 4);
    let script = time_best(reps, || {
        replay_trace(
            &trace,
            cluster.clone(),
            placement.clone(),
            ReplayScale::full(),
        )
        .report
    });
    let threaded = time_best(reps, || {
        replay_trace_threaded(
            &trace,
            cluster.clone(),
            placement.clone(),
            ReplayScale::full(),
        )
        .report
    });
    results.push(result(name, 4, reps, script, threaded));

    // Case 2: a compressed loop-nest script (signature/skeleton shape) on
    // more ranks, where per-rank threads and channel round-trips dominate
    // the threaded path.
    let nranks = 8;
    let iters = if fast { 150 } else { 600 };
    let c = ClusterSpec::homogeneous(nranks);
    let p = Placement::round_robin(nranks, nranks);
    let scripts = loop_nest_scripts(nranks, iters, c.net.sw_overhead.as_secs_f64());
    let script = time_best(reps, || {
        Simulation::new(c.clone(), p.clone()).run_scripts(&scripts)
    });
    let threaded = time_best(reps, || {
        Simulation::new(c.clone(), p.clone()).run_scripts_threaded(&scripts)
    });
    results.push(result(
        "skeleton_loop_nest_8rank",
        nranks,
        reps,
        script,
        threaded,
    ));

    SimBenchReport {
        profile: build_profile(),
        fast,
        results,
    }
}

impl SimBenchReport {
    /// Serialize to pretty-printed JSON. Hand-rolled like
    /// [`crate::CompressBenchReport::to_json`] so emission works even
    /// where serde_json is unavailable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(s, "  \"fast\": {},", self.fast);
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"ranks\": {},", r.ranks);
            let _ = writeln!(s, "      \"events\": {},", r.events);
            let _ = writeln!(s, "      \"script_secs\": {},", r.script_secs);
            let _ = writeln!(s, "      \"threaded_secs\": {},", r.threaded_secs);
            let _ = writeln!(s, "      \"reps\": {},", r.reps);
            let _ = writeln!(
                s,
                "      \"script_events_per_sec\": {},",
                r.script_events_per_sec
            );
            let _ = writeln!(
                s,
                "      \"threaded_events_per_sec\": {},",
                r.threaded_events_per_sec
            );
            let _ = writeln!(s, "      \"speedup\": {},", r.speedup);
            let _ = writeln!(s, "      \"identical\": {}", r.identical);
            let _ = writeln!(
                s,
                "    }}{}",
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s.push('\n');
        s
    }

    /// Render the human-readable table printed by the CLI.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<24} {:>5} {:>9} {:>11} {:>11} {:>12} {:>8} {:>9}",
            "workload",
            "ranks",
            "events",
            "script_s",
            "threaded_s",
            "script_ev/s",
            "speedup",
            "identical"
        );
        for r in &self.results {
            let _ = writeln!(
                s,
                "{:<24} {:>5} {:>9} {:>11.4} {:>11.4} {:>12.0} {:>7.1}x {:>9}",
                r.name,
                r.ranks,
                r.events,
                r.script_secs,
                r.threaded_secs,
                r.script_events_per_sec,
                r.speedup,
                r.identical
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_identical_reports_and_valid_json() {
        let report = run_sim_bench(true);
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert!(r.identical, "{}: paths diverged", r.name);
            assert!(r.events > 0, "{}: no events", r.name);
            assert!(r.script_secs > 0.0 && r.threaded_secs > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"profile\""), "json: {json}");
        assert!(json.contains("skeleton_loop_nest_8rank"), "json: {json}");
        // The table renders one line per result plus the header.
        assert_eq!(report.table().lines().count(), 1 + report.results.len());
    }
}
