//! Wall-clock benchmark of Monte-Carlo ensemble execution
//! (`pskel bench mc`).
//!
//! Expands one stochastic scenario program into a K-member seeded
//! ensemble ([`pskel_mc::ensemble_specs`]) and times two ways of running
//! it: K independent serial simulations versus one pass through the
//! forked sweep executor ([`pskel_sim::try_run_scripts_sweep`]). The
//! noise window is confined to the tail of the run, so the members share
//! a long deterministic timeline prefix — the structure the forked
//! executor amortizes. Reports samples per wall second on both paths,
//! the speedup, the prefix-reuse fraction, the estimated percentiles,
//! and two determinism guards: `identical` (every forked member report
//! is bit-identical to its serial twin) and `seed_deterministic` (two
//! full expand + simulate + estimate passes under the same seed produce
//! byte-identical distribution JSON). Cheap enough for CI smoke jobs;
//! emits machine-readable JSON (`BENCH_mc.json`) for artifact tracking.

use crate::profile::build_profile;
use pskel_mc::{ensemble_specs, Distribution};
use pskel_mpi::{MpiOps, ScriptBuilder};
use pskel_scenario::{NodeSel, NoiseDist, NoiseSeg, ScenarioProgram};
use pskel_sim::{
    try_run_scripts_sweep, ClusterSpec, Placement, RankScript, SimReport, Simulation, SweepJob,
};
use serde::Serialize;
use std::time::Instant;

/// Base seed of the benchmark ensemble (any value works; fixed so the
/// report is reproducible).
const SEED: u64 = 0x5eed;

/// Where the noise window opens, as a fraction of the undisturbed
/// horizon. Late noise keeps a long shared prefix — the regime the
/// forked executor is built for (cf. the sweep bench's late divergence).
const NOISE_FROM: f64 = 0.8;

#[derive(Debug, Clone, Serialize)]
pub struct McBenchReport {
    /// Build profile of this binary; debug-build numbers are not
    /// comparable to release floors.
    pub profile: &'static str,
    pub fast: bool,
    /// `std::thread::available_parallelism()` of the benchmarking host.
    pub host_parallelism: usize,
    /// Ensemble members.
    pub samples: usize,
    pub ranks: usize,
    /// Base seed of the ensemble.
    pub seed: u64,
    pub reps: usize,
    /// Best-of-`reps` wall seconds simulating every member serially.
    pub serial_secs: f64,
    /// Best-of-`reps` wall seconds for the forked sweep executor.
    pub forked_secs: f64,
    pub serial_samples_per_sec: f64,
    pub forked_samples_per_sec: f64,
    /// `serial_secs / forked_secs` (> 1 means the forked executor won).
    pub speedup: f64,
    /// `1 - executed_events / serial_events` over the forked run.
    pub prefix_reuse: f64,
    /// Fork points the divergence tree took.
    pub forks: u64,
    /// Members answered by fanning another member's report.
    pub dedup_hits: u64,
    /// Estimated percentiles of the member runtimes (simulated seconds).
    pub p50_secs: f64,
    pub p90_secs: f64,
    pub p99_secs: f64,
    /// Every forked member report bit-identical to its serial twin.
    pub identical: bool,
    /// Two full passes under the same seed produced byte-identical
    /// distribution JSON.
    pub seed_deterministic: bool,
}

/// Compressed loop-nest scripts (signature/skeleton shape): an outer
/// iteration loop of compute + ring exchange + allreduce.
fn loop_nest_scripts(nranks: usize, iters: u64, sw_overhead_secs: f64) -> Vec<RankScript> {
    (0..nranks)
        .map(|rank| {
            let mut b = ScriptBuilder::new(rank, nranks, sw_overhead_secs);
            b.begin_loop(iters);
            MpiOps::compute(&mut b, 1.5e-5);
            let s = MpiOps::isend(&mut b, (rank + 1) % nranks, 3, 10_000);
            let r = MpiOps::irecv(&mut b, Some((rank + nranks - 1) % nranks), Some(3), 10_000);
            MpiOps::waitall(&mut b, vec![s, r]);
            MpiOps::allreduce(&mut b, 512);
            b.end_loop();
            b.finish()
        })
        .collect()
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// The stochastic program: one CPU-noise block per run whose bursts land
/// in the last fifth of the undisturbed horizon.
fn noisy_program(horizon: f64) -> ScenarioProgram {
    let mut p = ScenarioProgram::empty("bench-mc");
    p.noise.push(NoiseSeg::Cpu {
        node: NodeSel::Id(0),
        procs: 2,
        interarrival: NoiseDist::Uniform {
            min: horizon * NOISE_FROM,
            max: horizon * (NOISE_FROM + 0.1),
        },
        duration: NoiseDist::Uniform {
            min: horizon * 0.05,
            max: horizon * 0.10,
        },
        until: horizon,
    });
    p
}

fn member_times(reports: &[SimReport]) -> Vec<f64> {
    reports.iter().map(|r| r.total_time.as_secs_f64()).collect()
}

/// Run the Monte-Carlo benchmark. `fast` shrinks the ensemble and
/// repetitions for smoke jobs.
pub fn run_mc_bench(fast: bool) -> McBenchReport {
    let samples = if fast { 16 } else { 64 };
    let nranks = 8;
    let nodes = 2;
    let iters: u64 = if fast { 80 } else { 400 };
    let reps = if fast { 2 } else { 3 };

    let base = ClusterSpec::homogeneous(nodes);
    let placement = Placement::blocked(nranks, nodes);
    let scripts = loop_nest_scripts(nranks, iters, base.net.sw_overhead.as_secs_f64());

    // Probe the undisturbed horizon once so the noise window scales with
    // the workload size.
    let horizon = Simulation::new(base.clone(), placement.clone())
        .try_run_scripts(&scripts)
        .expect("probe run completes")
        .total_time
        .as_secs_f64();
    let program = noisy_program(horizon);
    let ensemble = ensemble_specs(&program, &base, SEED, samples).expect("ensemble expands");

    let (serial_secs, serial_reports) = time_best(reps, || {
        ensemble
            .specs
            .iter()
            .map(|spec| {
                Simulation::new(spec.clone(), placement.clone())
                    .try_run_scripts(&scripts)
                    .expect("serial member completes")
            })
            .collect::<Vec<SimReport>>()
    });
    let (forked_secs, outcome) = time_best(reps, || {
        let jobs: Vec<SweepJob<'_>> = ensemble
            .specs
            .iter()
            .map(|spec| SweepJob {
                spec: spec.clone(),
                placement: placement.clone(),
                scripts: &scripts,
            })
            .collect();
        try_run_scripts_sweep(&jobs)
    });

    let forked_reports: Vec<SimReport> = outcome
        .reports
        .into_iter()
        .map(|r| r.expect("forked member completes"))
        .collect();
    let identical = forked_reports == serial_reports;

    let distribution =
        Distribution::estimate(&member_times(&forked_reports), SEED).expect("finite runtimes");
    // Full second pass — expansion included — under the same seed: the
    // distribution JSON must come back byte for byte.
    let seed_deterministic = {
        let again = ensemble_specs(&program, &base, SEED, samples).expect("ensemble expands");
        let jobs: Vec<SweepJob<'_>> = again
            .specs
            .iter()
            .map(|spec| SweepJob {
                spec: spec.clone(),
                placement: placement.clone(),
                scripts: &scripts,
            })
            .collect();
        let reports: Vec<SimReport> = try_run_scripts_sweep(&jobs)
            .reports
            .into_iter()
            .map(|r| r.expect("repeat member completes"))
            .collect();
        let repeat = Distribution::estimate(&member_times(&reports), SEED).expect("finite");
        repeat.to_json() == distribution.to_json()
    };

    McBenchReport {
        profile: build_profile(),
        fast,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        samples,
        ranks: nranks,
        seed: SEED,
        reps,
        serial_secs,
        forked_secs,
        serial_samples_per_sec: samples as f64 / serial_secs,
        forked_samples_per_sec: samples as f64 / forked_secs,
        speedup: serial_secs / forked_secs,
        prefix_reuse: outcome.stats.reuse_fraction(),
        forks: outcome.stats.forks,
        dedup_hits: outcome.stats.dedup_hits,
        p50_secs: distribution.p50.value,
        p90_secs: distribution.p90.value,
        p99_secs: distribution.p99.value,
        identical,
        seed_deterministic,
    }
}

impl McBenchReport {
    /// Serialize to pretty-printed JSON. Hand-rolled like
    /// [`crate::CompressBenchReport::to_json`] so emission works even
    /// where serde_json is unavailable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(s, "  \"fast\": {},", self.fast);
        let _ = writeln!(s, "  \"host_parallelism\": {},", self.host_parallelism);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(s, "  \"ranks\": {},", self.ranks);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(s, "  \"serial_secs\": {},", self.serial_secs);
        let _ = writeln!(s, "  \"forked_secs\": {},", self.forked_secs);
        let _ = writeln!(
            s,
            "  \"serial_samples_per_sec\": {},",
            self.serial_samples_per_sec
        );
        let _ = writeln!(
            s,
            "  \"forked_samples_per_sec\": {},",
            self.forked_samples_per_sec
        );
        let _ = writeln!(s, "  \"speedup\": {},", self.speedup);
        let _ = writeln!(s, "  \"prefix_reuse\": {},", self.prefix_reuse);
        let _ = writeln!(s, "  \"forks\": {},", self.forks);
        let _ = writeln!(s, "  \"dedup_hits\": {},", self.dedup_hits);
        let _ = writeln!(s, "  \"p50_secs\": {},", self.p50_secs);
        let _ = writeln!(s, "  \"p90_secs\": {},", self.p90_secs);
        let _ = writeln!(s, "  \"p99_secs\": {},", self.p99_secs);
        let _ = writeln!(s, "  \"identical\": {},", self.identical);
        let _ = writeln!(s, "  \"seed_deterministic\": {}", self.seed_deterministic);
        s.push('}');
        s.push('\n');
        s
    }

    /// Render the human-readable table printed by the CLI.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}-member ensemble, {} ranks, seed 0x{:x} \
             (host parallelism {}):",
            self.samples, self.ranks, self.seed, self.host_parallelism
        );
        let _ = writeln!(s, "{:<10} {:>10} {:>12}", "path", "secs", "samples/s");
        let _ = writeln!(
            s,
            "{:<10} {:>10.4} {:>12.1}",
            "serial", self.serial_secs, self.serial_samples_per_sec
        );
        let _ = writeln!(
            s,
            "{:<10} {:>10.4} {:>12.1}",
            "forked", self.forked_secs, self.forked_samples_per_sec
        );
        let _ = writeln!(
            s,
            "speedup {:.2}x  prefix reuse {:.1}%  forks {}  dedup hits {}",
            self.speedup,
            self.prefix_reuse * 100.0,
            self.forks,
            self.dedup_hits
        );
        let _ = writeln!(
            s,
            "p50 {:.6}s  p90 {:.6}s  p99 {:.6}s  identical {}  seed-deterministic {}",
            self.p50_secs, self.p90_secs, self.p99_secs, self.identical, self.seed_deterministic
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_and_reuses_the_prefix() {
        let report = run_mc_bench(true);
        assert!(report.identical, "forked members diverged from serial");
        assert!(report.seed_deterministic, "same seed, different bytes");
        assert_eq!(report.samples, 16);
        assert!(report.serial_secs > 0.0 && report.forked_secs > 0.0);
        // Algorithmic, host-independent: with the noise window in the
        // last fifth, the shared prefix amortizes most member work.
        assert!(
            report.prefix_reuse > 0.5,
            "tail-noise ensemble reused too little: {}",
            report.prefix_reuse
        );
        assert!(report.forks >= 1, "no fork point was taken");
        assert!(report.p50_secs <= report.p90_secs && report.p90_secs <= report.p99_secs);
        let json = report.to_json();
        assert!(
            json.contains("\"seed_deterministic\": true"),
            "json: {json}"
        );
        assert!(json.contains("\"prefix_reuse\""), "json: {json}");
        // Banner, header, two path rows, reuse line, percentile line.
        assert_eq!(report.table().lines().count(), 6);
    }
}
