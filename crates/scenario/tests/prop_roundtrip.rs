//! Round-trip properties: any valid `ScenarioProgram` survives
//! serialization to the TOML spec language and to JSON, re-parsing,
//! and re-compilation with its canonical identity intact.
//!
//! The proptest block exercises randomized programs in CI; the
//! LCG-driven sweep below covers the same property deterministically
//! so it also runs in environments without the proptest runtime.

use proptest::prelude::*;
use pskel_scenario::{CpuSeg, Fault, LinkSeg, NetSeg, NodeSel, ScenarioProgram, ScenarioSource};

/// Build a structurally valid program from dial settings. Distinct
/// per-index times keep segments non-overlapping; ranks are distinct
/// by construction; caps sit on the exact-round-trip megabit grid.
fn build_program(
    name_tag: u32,
    nodes: u32,
    cpu: Vec<(u8, u8, u8)>,           // (sel, quarter-seconds, procs)
    link: Vec<(u8, u8, Option<u16>)>, // (sel, quarter-seconds, mbps or restore)
    net: Vec<(u8, u8)>,               // (quarter-seconds, latency millis)
    faults: Vec<(u8, u8, u8, u8)>,    // (kind, sel, at-quarters, dur-quarters)
) -> ScenarioProgram {
    let sel = |s: u8| {
        let s = s as u32;
        if s % (nodes + 1) == nodes {
            NodeSel::All
        } else {
            NodeSel::Id(s % nodes)
        }
    };
    let mut program = ScenarioProgram::empty(&format!("prop-{name_tag}"));
    program.nodes = Some(nodes);
    for (i, &(s, _, procs)) in cpu.iter().enumerate() {
        program.cpu.push(CpuSeg {
            node: sel(s),
            // Index-scaled times can never collide, even for equal selectors.
            at: i as f64 * 0.25,
            procs: procs as i64 % 9,
        });
    }
    for (i, &(s, _, cap)) in link.iter().enumerate() {
        program.link.push(LinkSeg {
            node: sel(s),
            at: i as f64 * 0.5,
            cap: cap.map(|mbps| (mbps as f64 % 1000.0 + 1.0) * 1e6 / 8.0),
        });
    }
    for (i, &(_, lat_ms)) in net.iter().enumerate() {
        program.net.push(NetSeg {
            at: i as f64 * 0.75,
            latency: lat_ms as f64 * 0.001,
        });
    }
    for (i, &(kind, s, at_q, dur_q)) in faults.iter().enumerate() {
        let at = 0.25 + at_q as f64 * 0.25;
        let dur = 0.25 + dur_q as f64 * 0.25;
        program.faults.push(match kind % 3 {
            0 => Fault::LinkOutage {
                node: sel(s),
                at,
                dur,
            },
            1 => Fault::SlowdownBurst {
                node: sel(s),
                at,
                dur,
                factor: 0.25 + (s as f64 % 4.0) * 0.25,
            },
            _ => Fault::DelayedStart {
                rank: i as u32, // distinct by construction
                delay: at,
            },
        });
    }
    program.validate().expect("generated program must be valid");
    program
}

fn assert_round_trips(program: &ScenarioProgram) {
    let via_toml = ScenarioSource::from_toml(&program.to_toml())
        .expect("emitted TOML parses")
        .compile()
        .expect("emitted TOML compiles");
    assert_eq!(program, &via_toml, "TOML round-trip changed the program");
    assert_eq!(program.canonical_bytes(), via_toml.canonical_bytes());
    assert_eq!(program.short_id(), via_toml.short_id());

    let via_json = ScenarioSource::from_json(&program.to_json())
        .expect("emitted JSON parses")
        .compile()
        .expect("emitted JSON compiles");
    assert_eq!(program, &via_json, "JSON round-trip changed the program");
    assert_eq!(program.short_id(), via_json.short_id());
}

fn arb_program() -> BoxedStrategy<ScenarioProgram> {
    (
        0u32..1000,
        1u32..6,
        prop::collection::vec((0u8..8, 0u8..40, 0u8..9), 0..5),
        prop::collection::vec(
            (
                0u8..8,
                0u8..40,
                prop_oneof![Just(None::<u16>), (1u16..1000).prop_map(Some)],
            ),
            0..4,
        ),
        prop::collection::vec((0u8..40, 0u8..50), 0..3),
        prop::collection::vec((0u8..3, 0u8..8, 0u8..20, 0u8..8), 0..4),
    )
        .prop_map(|(tag, nodes, cpu, link, net, faults)| {
            build_program(tag, nodes, cpu, link, net, faults)
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_round_trip(program in arb_program()) {
        assert_round_trips(&program);
    }
}

/// Deterministic version of the property: a fixed LCG drives the same
/// generator through 60 cases, so the round-trip is exercised even
/// where the proptest runtime is unavailable.
#[test]
fn lcg_round_trip_sweep() {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for case in 0..60 {
        let nodes = 1 + next() % 5;
        let cpu: Vec<_> = (0..next() % 5)
            .map(|_| (next() as u8, next() as u8, next() as u8))
            .collect();
        let link: Vec<_> = (0..next() % 4)
            .map(|_| {
                let cap = if next() % 3 == 0 {
                    None
                } else {
                    Some(1 + (next() % 999) as u16)
                };
                (next() as u8, next() as u8, cap)
            })
            .collect();
        let net: Vec<_> = (0..next() % 3)
            .map(|_| (next() as u8, next() as u8))
            .collect();
        let faults: Vec<_> = (0..next() % 4)
            .map(|_| (next() as u8, next() as u8, next() as u8, next() as u8))
            .collect();
        let program = build_program(case, nodes, cpu, link, net, faults);
        assert_round_trips(&program);
    }
}
