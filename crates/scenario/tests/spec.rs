//! Spec-language tests: the five classic spec mistakes produce
//! line/column-bearing errors naming the bad field; well-formed specs
//! compile, expand, and apply as documented.

use pskel_scenario::{Fault, NodeSel, ScenarioProgram, ScenarioSource};
use pskel_sim::{ClusterSpec, TimelineAction};

fn compile_toml(src: &str) -> ScenarioProgram {
    ScenarioSource::from_toml(src)
        .expect("parse")
        .compile()
        .expect("compile")
}

fn compile_err(src: &str) -> pskel_scenario::SpecError {
    match ScenarioSource::from_toml(src) {
        Err(e) => e,
        Ok(source) => source
            .expand()
            .expect_err("expected a compile error")
            .clone(),
    }
}

// ---------------------------------------------------------------------------
// The top-5 spec mistakes (satellite: lint diagnostics)
// ---------------------------------------------------------------------------

#[test]
fn mistake_unknown_key() {
    let err = compile_err("name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\nprcs = 3\n");
    assert_eq!(err.line, 7, "error should point at the bad line: {err}");
    assert_eq!(err.col, 1);
    assert_eq!(err.field, "cpu[0].prcs");
    assert!(err.msg.contains("unknown key `prcs`"), "{err}");
}

#[test]
fn mistake_negative_time() {
    let err = compile_err("name = \"x\"\n\n[[cpu]]\nnode = 0\nat = -1.5\nprocs = 2\n");
    assert_eq!(err.line, 5, "{err}");
    assert_eq!(err.field, "cpu[0].at");
    assert!(err.msg.contains("must be >= 0"), "{err}");
}

#[test]
fn mistake_overlapping_segments() {
    let err = compile_err(
        "name = \"x\"\n\n[[cpu]]\nnode = 1\nat = 2.0\nprocs = 2\n\n[[cpu]]\nnode = 1\nat = 2.0\nprocs = 4\n",
    );
    assert_eq!(err.line, 8, "error points at the second segment: {err}");
    assert_eq!(err.field, "cpu[1].at");
    assert!(err.msg.contains("overlapping segments"), "{err}");
}

#[test]
fn mistake_unknown_node_id() {
    let err =
        compile_err("name = \"x\"\nnodes = 4\n\n[[link]]\nnode = 7\nat = 0.0\ncap_mbps = 10.0\n");
    assert_eq!(err.line, 5, "{err}");
    assert_eq!(err.field, "link[0].node");
    assert!(err.msg.contains("unknown node id 7"), "{err}");
}

#[test]
fn mistake_empty_sweep_range() {
    let err = compile_err(
        "name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = \"$p\"\n\n[[sweep]]\nvar = \"p\"\nfrom = 8\nto = 1\n",
    );
    assert_eq!(err.line, 8, "{err}");
    assert_eq!(err.field, "sweep[0]");
    assert!(err.msg.contains("empty sweep range"), "{err}");
}

// ---------------------------------------------------------------------------
// More diagnostics
// ---------------------------------------------------------------------------

#[test]
fn error_display_has_line_column_and_field() {
    let err = compile_err("name = \"x\"\n\n[[net]]\nat = 1.0\nlatency = -0.1\n");
    let text = err.to_string();
    assert!(text.contains("line 5"), "{text}");
    assert!(text.contains("net[0].latency"), "{text}");
}

#[test]
fn unknown_variable_is_an_error() {
    let err = compile_err("name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = \"$zap\"\n");
    assert_eq!(err.field, "cpu[0].procs");
    assert!(err.msg.contains("unknown variable `$zap`"), "{err}");
}

#[test]
fn fault_at_zero_is_rejected() {
    let err = compile_err(
        "name = \"x\"\n\n[[fault]]\nkind = \"slowdown\"\nnode = 0\nat = 0.0\nfor = 1.0\nfactor = 0.5\n",
    );
    assert_eq!(err.field, "fault[0].at");
    assert!(err.msg.contains("must be > 0"), "{err}");
}

#[test]
fn unknown_fault_kind_is_rejected() {
    let err = compile_err("name = \"x\"\n\n[[fault]]\nkind = \"meteor\"\nnode = 0\n");
    assert_eq!(err.field, "fault[0].kind");
    assert!(err.msg.contains("unknown fault kind `meteor`"), "{err}");
}

#[test]
fn missing_name_is_rejected() {
    let err = compile_err("[[cpu]]\nnode = 0\nat = 0.0\nprocs = 1\n");
    assert_eq!(err.field, "name");
    assert!(err.msg.contains("missing required field"), "{err}");
}

#[test]
fn link_needs_cap_or_restore() {
    let err = compile_err("name = \"x\"\n\n[[link]]\nnode = 0\nat = 1.0\n");
    assert_eq!(err.field, "link[0]");
    assert!(err.msg.contains("cap_mbps"), "{err}");
}

#[test]
fn duplicate_toml_key_is_a_parse_error() {
    let err = ScenarioSource::from_toml("name = \"x\"\nname = \"y\"\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.msg.contains("duplicate key"), "{err}");
}

// ---------------------------------------------------------------------------
// Compilation and application semantics
// ---------------------------------------------------------------------------

#[test]
fn t0_settings_fold_into_static_spec() {
    let program = compile_toml(
        "name = \"combo\"\nnodes = 2\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n\n[[link]]\nnode = 0\nat = 0.0\ncap_mbps = 10.0\n",
    );
    assert!(program.is_constant());
    let base = ClusterSpec::homogeneous(2);
    let applied = program.apply(&base).unwrap();
    assert_eq!(applied.nodes[0].competing_processes, 2);
    assert_eq!(applied.nodes[0].link_cap, Some(pskel_sim::THROTTLED_10MBPS));
    assert_eq!(applied.nodes[1].competing_processes, 0);
    assert!(applied.timeline.is_empty());
}

#[test]
fn later_segments_become_timeline_events() {
    let program = compile_toml(
        "name = \"ramp\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 1\n\n[[cpu]]\nnode = 0\nat = 5.0\nprocs = 3\n\n[[cpu]]\nnode = 0\nat = 9.0\nprocs = 0\n",
    );
    let applied = program.apply(&ClusterSpec::homogeneous(2)).unwrap();
    assert_eq!(applied.nodes[0].competing_processes, 1);
    let events = &applied.timeline.events;
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].action, TimelineAction::AddCompeting(2)); // 1 -> 3
    assert_eq!(events[1].action, TimelineAction::AddCompeting(-3)); // 3 -> 0
    assert!(!events[0].fault);
}

#[test]
fn all_selector_reaches_every_node() {
    let program = compile_toml("name = \"x\"\n\n[[cpu]]\nnode = \"all\"\nat = 0.0\nprocs = 2\n");
    let applied = program.apply(&ClusterSpec::homogeneous(3)).unwrap();
    for node in &applied.nodes {
        assert_eq!(node.competing_processes, 2);
    }
}

#[test]
fn link_outage_emits_paired_fault_events() {
    let program = compile_toml(
        "name = \"flap\"\n\n[[fault]]\nkind = \"link-outage\"\nnode = 1\nat = 2.0\nfor = 0.5\n",
    );
    let applied = program.apply(&ClusterSpec::homogeneous(2)).unwrap();
    let events = &applied.timeline.events;
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].action, TimelineAction::SetLinkCap(Some(0.0)));
    assert!(events[0].fault);
    // Restore returns to the base spec's (uncapped) state.
    assert_eq!(events[1].action, TimelineAction::SetLinkCap(None));
    assert!(events[1].fault);
}

#[test]
fn outage_restores_the_scheduled_cap_not_the_base_cap() {
    let program = compile_toml(
        "name = \"x\"\n\n[[link]]\nnode = 0\nat = 0.0\ncap_mbps = 10.0\n\n[[fault]]\nkind = \"link-outage\"\nnode = 0\nat = 1.0\nfor = 1.0\n",
    );
    let applied = program.apply(&ClusterSpec::homogeneous(2)).unwrap();
    let restore = applied.timeline.events.last().unwrap();
    assert_eq!(
        restore.action,
        TimelineAction::SetLinkCap(Some(pskel_sim::THROTTLED_10MBPS))
    );
}

#[test]
fn delayed_start_becomes_a_start_delay() {
    let program = compile_toml(
        "name = \"x\"\n\n[[fault]]\nkind = \"delayed-start\"\nrank = 3\ndelay = 0.25\n",
    );
    let applied = program.apply(&ClusterSpec::homogeneous(4)).unwrap();
    assert_eq!(applied.timeline.start_delays.len(), 1);
    assert_eq!(applied.timeline.start_delays[0].rank, 3);
}

#[test]
fn apply_rejects_wrong_cluster_size() {
    let program = compile_toml("name = \"x\"\nnodes = 4\n");
    let err = program.apply(&ClusterSpec::homogeneous(2)).unwrap_err();
    assert!(err.contains("declares 4 nodes"), "{err}");
}

#[test]
fn apply_rejects_out_of_range_node_without_declaration() {
    let program = compile_toml("name = \"x\"\n\n[[cpu]]\nnode = 9\nat = 0.0\nprocs = 1\n");
    let err = program.apply(&ClusterSpec::homogeneous(2)).unwrap_err();
    assert!(err.contains("out of range"), "{err}");
}

// ---------------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------------

#[test]
fn sweep_expands_deterministically() {
    let source = ScenarioSource::from_toml(
        "name = \"load\"\n\n[[cpu]]\nnode = \"all\"\nat = 0.0\nprocs = \"$p\"\n\n[[sweep]]\nvar = \"p\"\nfrom = 1\nto = 8\n",
    )
    .unwrap();
    assert!(source.has_sweep());
    let points = source.expand().unwrap();
    assert_eq!(points.len(), 8);
    for (i, point) in points.iter().enumerate() {
        assert_eq!(point.value, Some(i as i64 + 1));
        assert_eq!(point.program.name, format!("load-p{}", i + 1));
        assert_eq!(point.program.cpu[0].procs, i as i64 + 1);
    }
    // Deterministic: a second expansion is identical.
    let again = source.expand().unwrap();
    for (a, b) in points.iter().zip(again.iter()) {
        assert_eq!(a.program, b.program);
    }
}

#[test]
fn sweep_step_is_respected() {
    let source = ScenarioSource::from_toml(
        "name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = \"$n\"\n\n[[sweep]]\nvar = \"n\"\nfrom = 0\nto = 10\nstep = 5\n",
    )
    .unwrap();
    let values: Vec<_> = source.expand().unwrap().iter().map(|p| p.value).collect();
    assert_eq!(values, vec![Some(0), Some(5), Some(10)]);
}

#[test]
fn compile_refuses_sweep_specs() {
    let source =
        ScenarioSource::from_toml("name = \"x\"\n\n[[sweep]]\nvar = \"n\"\nfrom = 1\nto = 2\n")
            .unwrap();
    let err = source.compile().unwrap_err();
    assert!(err.msg.contains("declares a sweep"), "{err}");
}

// ---------------------------------------------------------------------------
// Round-trips and canonical identity
// ---------------------------------------------------------------------------

fn rich_program() -> ScenarioProgram {
    compile_toml(
        "name = \"rich\"\nnodes = 4\n\n\
         [[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n\n\
         [[cpu]]\nnode = \"all\"\nat = 3.5\nprocs = 1\n\n\
         [[link]]\nnode = 1\nat = 0.0\ncap_mbps = 10.0\n\n\
         [[link]]\nnode = 1\nat = 6.0\nrestore = true\n\n\
         [[net]]\nat = 2.0\nlatency = 0.001\n\n\
         [[fault]]\nkind = \"link-outage\"\nnode = 2\nat = 1.0\nfor = 0.5\n\n\
         [[fault]]\nkind = \"slowdown\"\nnode = \"all\"\nat = 4.0\nfor = 1.0\nfactor = 0.25\n\n\
         [[fault]]\nkind = \"delayed-start\"\nrank = 7\ndelay = 0.125\n",
    )
}

#[test]
fn toml_round_trip_preserves_the_program() {
    let program = rich_program();
    let back = ScenarioSource::from_toml(&program.to_toml())
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(program, back);
    assert_eq!(program.canonical_bytes(), back.canonical_bytes());
}

#[test]
fn json_round_trip_preserves_the_program() {
    let program = rich_program();
    let back = ScenarioSource::from_json(&program.to_json())
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(program, back);
}

#[test]
fn auto_detects_json_vs_toml() {
    let program = rich_program();
    let via_json = ScenarioSource::auto(&program.to_json())
        .unwrap()
        .compile()
        .unwrap();
    let via_toml = ScenarioSource::auto(&program.to_toml())
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(via_json, via_toml);
}

#[test]
fn canonical_identity_ignores_declaration_order() {
    let a = compile_toml(
        "name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 1.0\nprocs = 1\n\n[[cpu]]\nnode = 1\nat = 2.0\nprocs = 2\n",
    );
    let b = compile_toml(
        "name = \"x\"\n\n[[cpu]]\nnode = 1\nat = 2.0\nprocs = 2\n\n[[cpu]]\nnode = 0\nat = 1.0\nprocs = 1\n",
    );
    assert_eq!(a, b);
    assert_eq!(a.short_id(), b.short_id());
}

#[test]
fn short_id_distinguishes_different_programs() {
    let a = compile_toml("name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n");
    let b = compile_toml("name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 3\n");
    assert_ne!(a.short_id(), b.short_id());
    assert_eq!(a.short_id().len(), 16);
}

#[test]
fn behavior_id_ignores_the_name_but_not_the_schedule() {
    let a = compile_toml("name = \"x-procs2\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n");
    let b = compile_toml("name = \"y-procs2\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n");
    let c = compile_toml("name = \"x-procs3\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 3\n");
    // Same schedule under different names: short ids differ, behavior
    // ids coincide — the sweep dedup key.
    assert_ne!(a.short_id(), b.short_id());
    assert_eq!(a.behavior_id(), b.behavior_id());
    assert_ne!(a.behavior_id(), c.behavior_id());
    assert_eq!(a.behavior_id().len(), 16);
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

#[test]
fn compose_adds_cpu_and_overrides_link() {
    let a = compile_toml(
        "name = \"a\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 1\n\n[[link]]\nnode = 0\nat = 0.0\ncap_mbps = 10.0\n",
    );
    let b = compile_toml(
        "name = \"b\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n\n[[link]]\nnode = 0\nat = 0.0\ncap_mbps = 100.0\n",
    );
    let c = a.compose(&b).unwrap();
    assert_eq!(c.name, "a+b");
    assert_eq!(c.cpu.len(), 1);
    assert_eq!(c.cpu[0].procs, 3);
    assert_eq!(c.link.len(), 1);
    assert_eq!(c.link[0].cap, Some(100.0 * 1e6 / 8.0));
}

#[test]
fn compose_rejects_conflicting_delayed_starts() {
    let a = compile_toml(
        "name = \"a\"\n\n[[fault]]\nkind = \"delayed-start\"\nrank = 0\ndelay = 1.0\n",
    );
    let b = compile_toml(
        "name = \"b\"\n\n[[fault]]\nkind = \"delayed-start\"\nrank = 0\ndelay = 2.0\n",
    );
    assert!(a.compose(&b).is_err());
}

#[test]
fn scale_stretches_times_and_load() {
    let program = compile_toml(
        "name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 4.0\nprocs = 2\n\n[[fault]]\nkind = \"slowdown\"\nnode = 0\nat = 2.0\nfor = 1.0\nfactor = 0.5\n",
    );
    let scaled = program.scale(2.0, 1.5).unwrap();
    assert_eq!(scaled.cpu[0].at, 8.0);
    assert_eq!(scaled.cpu[0].procs, 3);
    match scaled.faults[0] {
        Fault::SlowdownBurst {
            at, dur, factor, ..
        } => {
            assert_eq!(at, 4.0);
            assert_eq!(dur, 2.0);
            assert_eq!(factor, 0.5);
        }
        ref other => panic!("unexpected fault {other:?}"),
    }
}

#[test]
fn mirror_widens_selectors_to_all_nodes() {
    let program = compile_toml(
        "name = \"x\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n\n[[link]]\nnode = 1\nat = 0.0\ncap_mbps = 10.0\n",
    );
    let mirrored = program.mirror_across_nodes().unwrap();
    assert_eq!(mirrored.cpu[0].node, NodeSel::All);
    assert_eq!(mirrored.link[0].node, NodeSel::All);
    let applied = mirrored.apply(&ClusterSpec::homogeneous(3)).unwrap();
    for node in &applied.nodes {
        assert_eq!(node.competing_processes, 2);
        assert_eq!(node.link_cap, Some(pskel_sim::THROTTLED_10MBPS));
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

#[test]
fn compiles_are_counted() {
    let before = pskel_scenario::counters::snapshot().programs_compiled;
    compile_toml("name = \"counted\"\n");
    compile_toml("name = \"counted2\"\n");
    let after = pskel_scenario::counters::snapshot().programs_compiled;
    assert!(after >= before + 2, "before={before} after={after}");
}

// ---------------------------------------------------------------------------
// Noise blocks
// ---------------------------------------------------------------------------

const NOISY: &str = "name = \"noisy\"\nnodes = 2\nsamples = 32\n\n\
    [[noise]]\nkind = \"cpu\"\nnode = \"all\"\nprocs = 1\n\
    interarrival = \"exp\"\ninterarrival_mean = 0.25\n\
    duration = \"lognormal\"\nduration_p50 = 0.01\nduration_p90 = 0.04\n\
    until = 5.0\n\n\
    [[noise]]\nkind = \"latency\"\nbase = 0.001\n\
    jitter = \"uniform\"\njitter_min = 0.0\njitter_max = 0.002\n\
    interarrival = \"uniform\"\ninterarrival_min = 0.5\ninterarrival_max = 1.5\n\
    until = 5.0\n";

#[test]
fn noise_blocks_compile() {
    let program = compile_toml(NOISY);
    assert_eq!(program.noise.len(), 2);
    assert_eq!(program.samples, Some(32));
    assert!(program.is_stochastic());
    assert!(!program.is_constant());
    assert!(
        program.summary().contains("2 noise block(s)"),
        "{}",
        program.summary()
    );
}

#[test]
fn noise_round_trips_through_both_emitters() {
    let program = compile_toml(NOISY);
    let back_toml = ScenarioSource::from_toml(&program.to_toml())
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(program, back_toml);
    assert_eq!(program.canonical_bytes(), back_toml.canonical_bytes());
    let back_json = ScenarioSource::from_json(&program.to_json())
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(program, back_json);
    assert_eq!(program.canonical_bytes(), back_json.canonical_bytes());
}

#[test]
fn noise_free_canonical_encoding_is_unchanged() {
    // The stochastic sections only appear when used: a noise-free
    // program must keep the exact identity it had before noise existed
    // (provenance tokens and store keys depend on this).
    let program = compile_toml("name = \"plain\"\n\n[[cpu]]\nnode = 0\nat = 0.0\nprocs = 2\n");
    let bytes = program.canonical_bytes();
    assert_eq!(&bytes[bytes.len() - 5..], &[b'F', 0, 0, 0, 0]);
}

#[test]
fn seeded_apply_is_deterministic_and_noise_free_at_apply() {
    let program = compile_toml(NOISY);
    let base = ClusterSpec::homogeneous(2);
    let plain = program.apply(&base).unwrap();
    assert!(plain.timeline.events.is_empty(), "apply() ignores noise");
    let a = program.apply_seeded(&base, 0x5eed).unwrap();
    let b = program.apply_seeded(&base, 0x5eed).unwrap();
    assert_eq!(a.timeline.events, b.timeline.events);
    assert!(!a.timeline.events.is_empty());
    let c = program.apply_seeded(&base, 1).unwrap();
    assert_ne!(a.timeline.events, c.timeline.events);
}

#[test]
fn noise_block_order_is_part_of_the_identity() {
    let a = compile_toml(NOISY);
    let mut b = a.clone();
    b.noise.swap(0, 1);
    assert_ne!(a.canonical_bytes(), b.canonical_bytes());
}

#[test]
fn noise_negative_scale_is_rejected_with_a_span() {
    let err = compile_err(
        "name = \"x\"\n\n[[noise]]\nnode = 0\nprocs = 1\n\
         interarrival = \"exp\"\ninterarrival_mean = -0.5\n\
         duration = \"exp\"\nduration_mean = 0.01\nuntil = 2.0\n",
    );
    assert!(err.msg.contains("must be > 0"), "{err}");
    assert!(err.field.contains("interarrival_mean"), "{err}");
    assert!(err.line > 0);
}

#[test]
fn noise_p90_below_p50_is_rejected() {
    let err = compile_err(
        "name = \"x\"\n\n[[noise]]\nnode = 0\nprocs = 1\n\
         interarrival = \"exp\"\ninterarrival_mean = 0.5\n\
         duration = \"lognormal\"\nduration_p50 = 0.1\nduration_p90 = 0.05\nuntil = 2.0\n",
    );
    assert!(err.msg.contains("p90"), "{err}");
    assert!(err.field.contains("duration_p90"), "{err}");
}

#[test]
fn zero_samples_is_rejected() {
    let err = compile_err("name = \"x\"\nsamples = 0\n");
    assert!(err.msg.contains("sample count"), "{err}");
    assert_eq!(err.field, "samples");
}

#[test]
fn noise_unknown_distribution_is_rejected() {
    let err = compile_err(
        "name = \"x\"\n\n[[noise]]\nnode = 0\nprocs = 1\n\
         interarrival = \"pareto\"\nduration = \"exp\"\nduration_mean = 0.1\nuntil = 2.0\n",
    );
    assert!(err.msg.contains("unknown distribution"), "{err}");
}

#[test]
fn noise_zero_width_interarrival_is_rejected() {
    let err = compile_err(
        "name = \"x\"\n\n[[noise]]\nnode = 0\nprocs = 1\n\
         interarrival = \"uniform\"\ninterarrival_min = 0.0\ninterarrival_max = 0.0\n\
         duration = \"exp\"\nduration_mean = 0.1\nuntil = 2.0\n",
    );
    assert!(err.msg.contains("interarrival"), "{err}");
}

#[test]
fn noise_unknown_key_is_rejected_with_the_block_path() {
    let err = compile_err(
        "name = \"x\"\n\n[[noise]]\nnode = 0\nprocs = 1\nbogus = 3\n\
         interarrival = \"exp\"\ninterarrival_mean = 0.5\n\
         duration = \"exp\"\nduration_mean = 0.01\nuntil = 2.0\n",
    );
    assert!(err.msg.contains("unknown key"), "{err}");
    assert!(err.field.contains("noise[0]"), "{err}");
}

#[test]
fn noise_supports_sweep_variables() {
    let source = ScenarioSource::from_toml(
        "name = \"nsweep\"\n\n[[noise]]\nnode = 0\nprocs = \"$p\"\n\
         interarrival = \"exp\"\ninterarrival_mean = 0.5\n\
         duration = \"exp\"\nduration_mean = 0.01\nuntil = 2.0\n\n\
         [[sweep]]\nvar = \"p\"\nfrom = 1\nto = 3\n",
    )
    .unwrap();
    let points = source.expand().unwrap();
    assert_eq!(points.len(), 3);
    for (i, point) in points.iter().enumerate() {
        match point.program.noise[0] {
            pskel_scenario::NoiseSeg::Cpu { procs, .. } => assert_eq!(procs, i as i64 + 1),
            _ => panic!("expected cpu noise"),
        }
    }
}
