//! # pskel-scenario — programmable resource-sharing scenarios
//!
//! The paper's evaluation (Sodhi & Subhlok, IPPS 2005) uses five fixed
//! resource-sharing scenarios: competing CPU load on one or all nodes,
//! a throttled link on one or all nodes, and a combined case. This
//! crate generalizes that hard-coded set into a small declarative
//! language: a TOML (or JSON) spec describing *time-varying* CPU
//! contention, link bandwidth/latency schedules, and fault injections,
//! compiled into a validated [`ScenarioProgram`].
//!
//! Applying a program to a [`ClusterSpec`](pskel_sim::ClusterSpec)
//! folds every t=0 setting into the static spec and lowers the rest
//! into `pskel-sim` timeline events, which both simulation paths
//! (threaded and script fast path) execute identically. A constant
//! program therefore reproduces a builtin paper scenario bit-for-bit.
//!
//! ```
//! use pskel_scenario::ScenarioSource;
//! use pskel_sim::ClusterSpec;
//!
//! let spec = r#"
//! name = "ramp"
//! nodes = 2
//!
//! [[cpu]]          # one competitor from the start...
//! node = 0
//! at = 0.0
//! procs = 1
//!
//! [[cpu]]          # ...two more arrive at t=5s
//! node = 0
//! at = 5.0
//! procs = 3
//! "#;
//! let program = ScenarioSource::from_toml(spec).unwrap().compile().unwrap();
//! let cluster = program.apply(&ClusterSpec::homogeneous(2)).unwrap();
//! assert_eq!(cluster.nodes[0].competing_processes, 1); // t=0 folded
//! assert_eq!(cluster.timeline.events.len(), 1);        // t=5 step
//! ```

pub mod compile;
pub mod counters;
pub mod noise;
mod parse;
pub mod program;
pub mod value;

pub use compile::{ScenarioSource, SweepDef, SweepPoint};
pub use counters::ScenarioCounters;
pub use noise::{derive_seed, expand_noise, NoiseDist, NoiseSeg, SplitMix64};
pub use program::{CpuSeg, Fault, LinkSeg, NetSeg, NodeSel, ScenarioProgram};
pub use value::SpecError;
