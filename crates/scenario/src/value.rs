//! A small span-tracking document tree shared by the TOML-subset and JSON
//! parsers. Every value and table key remembers the line/column it came
//! from, so compilation errors can point at the offending field — the
//! scenario linter's whole contract.
//!
//! Hand-rolled on purpose: the workspace's serde-based decoders cannot
//! report source positions, and the spec language is deliberately tiny.

use std::fmt;

/// A parse or compile error anchored to a source position and field name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    pub line: u32,
    pub col: u32,
    /// Dotted path of the field at fault (empty for pure syntax errors).
    pub field: String,
    pub msg: String,
}

impl SpecError {
    pub fn at(line: u32, col: u32, field: &str, msg: impl Into<String>) -> SpecError {
        SpecError {
            line,
            col,
            field: field.to_string(),
            msg: msg.into(),
        }
    }

    pub fn of(val: &Val, field: &str, msg: impl Into<String>) -> SpecError {
        SpecError::at(val.line, val.col, field, msg)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.field.is_empty() {
            write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
        } else {
            write!(
                f,
                "line {}, column {}: field `{}`: {}",
                self.line, self.col, self.field, self.msg
            )
        }
    }
}

impl std::error::Error for SpecError {}

/// A table key with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Key {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// A parsed value with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Val {
    pub kind: Kind,
    pub line: u32,
    pub col: u32,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Kind {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Arr(Vec<Val>),
    /// Insertion-ordered; duplicate keys are a parse error.
    Table(Vec<(Key, Val)>),
}

impl Val {
    pub fn new(kind: Kind, line: u32, col: u32) -> Val {
        Val { kind, line, col }
    }

    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.kind {
            Kind::Str(_) => "string",
            Kind::Int(_) => "integer",
            Kind::Float(_) => "float",
            Kind::Bool(_) => "boolean",
            Kind::Arr(_) => "array",
            Kind::Table(_) => "table",
        }
    }

    pub fn as_table(&self) -> Option<&[(Key, Val)]> {
        match &self.kind {
            Kind::Table(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Val]> {
        match &self.kind {
            Kind::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            Kind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen to f64.
    pub fn as_num(&self) -> Option<f64> {
        match self.kind {
            Kind::Int(i) => Some(i as f64),
            Kind::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Table lookup by key name.
    pub fn get(&self, name: &str) -> Option<&Val> {
        self.as_table()?
            .iter()
            .find(|(k, _)| k.name == name)
            .map(|(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// Shared cursor
// ---------------------------------------------------------------------------

pub(crate) struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    pub fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    pub fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    pub fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    pub fn mark(&self) -> (u32, u32) {
        (self.line, self.col)
    }

    pub fn err(&self, msg: impl Into<String>) -> SpecError {
        SpecError::at(self.line, self.col, "", msg)
    }

    /// Skip spaces and tabs (not newlines).
    pub fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r')) {
            self.bump();
        }
    }

    /// Skip whitespace including newlines, plus `#` comments when asked.
    pub fn skip_ws(&mut self, comments: bool) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') if comments => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    pub fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Parse a quoted string (supports \" \\ \n \t \r escapes).
    pub fn quoted_string(&mut self) -> Result<String, SpecError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'/') => out.push(b'/'),
                    other => {
                        return Err(self.err(format!(
                            "unsupported string escape {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b'\n') => return Err(self.err("unterminated string (newline)")),
                Some(b) => out.push(b),
            }
        }
        String::from_utf8(out).map_err(|_| self.err("string is not valid UTF-8"))
    }

    /// Parse a number (integer or float, optional sign/exponent).
    pub fn number(&mut self) -> Result<Kind, SpecError> {
        let start = self.pos;
        let (line, col) = self.mark();
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Kind::Float)
                .map_err(|_| SpecError::at(line, col, "", format!("invalid number {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Kind::Int)
                .map_err(|_| SpecError::at(line, col, "", format!("invalid integer {text:?}")))
        }
    }
}
