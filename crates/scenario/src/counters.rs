//! Process-wide scenario-engine counters, following the pskel-sim
//! counter pattern: cheap relaxed atomics, snapshot on demand, exported
//! through `/metrics` and `--selftest` in pskel-serve.

use std::sync::atomic::{AtomicU64, Ordering};

static PROGRAMS_COMPILED: AtomicU64 = AtomicU64::new(0);
static SWEEPS_EXPANDED: AtomicU64 = AtomicU64::new(0);
static SWEEP_POINTS_DEDUPED: AtomicU64 = AtomicU64::new(0);

/// Point-in-time snapshot of the scenario-engine counters.
///
/// Schedule events fired and faults injected are counted by the
/// simulator itself (see `pskel_sim::counters::SimCounters`), since
/// that is where timeline events actually execute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScenarioCounters {
    /// Scenario programs successfully compiled from spec sources.
    pub programs_compiled: u64,
    /// `[[sweep]]` declarations expanded into their point sets (one per
    /// expansion, however many points it produced).
    pub sweeps_expanded: u64,
    /// Sweep points answered without their own evaluation because an
    /// earlier point had the same [`behavior_id`] (identical compiled
    /// program modulo name).
    ///
    /// [`behavior_id`]: crate::ScenarioProgram::behavior_id
    pub sweep_points_deduped: u64,
}

pub(crate) fn record_program_compiled() {
    PROGRAMS_COMPILED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_sweep_expanded() {
    SWEEPS_EXPANDED.fetch_add(1, Ordering::Relaxed);
}

/// Record sweep points answered by behavior-id dedup. Public because the
/// dedup happens in the consumers (serve, CLI) that fan results back out.
pub fn record_sweep_points_deduped(n: u64) {
    SWEEP_POINTS_DEDUPED.fetch_add(n, Ordering::Relaxed);
}

/// Read the current counter values.
pub fn snapshot() -> ScenarioCounters {
    ScenarioCounters {
        programs_compiled: PROGRAMS_COMPILED.load(Ordering::Relaxed),
        sweeps_expanded: SWEEPS_EXPANDED.load(Ordering::Relaxed),
        sweep_points_deduped: SWEEP_POINTS_DEDUPED.load(Ordering::Relaxed),
    }
}
