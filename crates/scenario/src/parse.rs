//! Source-text parsers for the scenario spec language: a TOML subset
//! (top-level `key = value` plus `[[section]]` array-of-table headers)
//! and plain JSON. Both produce the same span-tracking [`Val`] tree.

use crate::value::{Cursor, Key, Kind, SpecError, Val};

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

fn ident(cur: &mut Cursor<'_>) -> Result<(String, u32, u32), SpecError> {
    let (line, col) = cur.mark();
    let mut name = String::new();
    while let Some(b) = cur.peek() {
        if is_ident_byte(b) {
            name.push(b as char);
            cur.bump();
        } else {
            break;
        }
    }
    if name.is_empty() {
        return Err(cur.err("expected an identifier"));
    }
    Ok((name, line, col))
}

/// Parse a scalar TOML value: string, bool, or number.
fn toml_scalar(cur: &mut Cursor<'_>) -> Result<Val, SpecError> {
    let (line, col) = cur.mark();
    match cur.peek() {
        Some(b'"') => {
            let s = cur.quoted_string()?;
            Ok(Val::new(Kind::Str(s), line, col))
        }
        Some(b't') | Some(b'f') => {
            let (word, wline, wcol) = ident(cur)?;
            match word.as_str() {
                "true" => Ok(Val::new(Kind::Bool(true), wline, wcol)),
                "false" => Ok(Val::new(Kind::Bool(false), wline, wcol)),
                other => Err(SpecError::at(
                    wline,
                    wcol,
                    "",
                    format!("unexpected value `{other}` (strings must be quoted)"),
                )),
            }
        }
        Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => {
            let kind = cur.number()?;
            Ok(Val::new(kind, line, col))
        }
        Some(b) => Err(cur.err(format!("unexpected character {:?} in value", b as char))),
        None => Err(cur.err("unexpected end of input while reading a value")),
    }
}

fn insert_unique(table: &mut Vec<(Key, Val)>, key: Key, val: Val) -> Result<(), SpecError> {
    if table.iter().any(|(k, _)| k.name == key.name) {
        return Err(SpecError::at(
            key.line,
            key.col,
            &key.name,
            format!("duplicate key `{}`", key.name),
        ));
    }
    table.push((key, val));
    Ok(())
}

/// Parse the TOML subset. Supports comments, `key = value` lines, and
/// `[[section]]` array-of-table headers; nested `[table]` headers and
/// inline tables/arrays are outside the spec language and rejected.
pub fn parse_toml(src: &str) -> Result<Val, SpecError> {
    let mut cur = Cursor::new(src);
    let mut root: Vec<(Key, Val)> = Vec::new();
    // Index into `root` of the section whose last element is open.
    let mut current: Option<usize> = None;

    loop {
        cur.skip_ws(true);
        if cur.at_end() {
            break;
        }
        if cur.peek() == Some(b'[') {
            let (line, col) = cur.mark();
            cur.bump();
            if cur.peek() != Some(b'[') {
                return Err(SpecError::at(
                    line,
                    col,
                    "",
                    "expected `[[section]]` (plain `[table]` headers are not part of the spec language)",
                ));
            }
            cur.bump();
            let (name, nline, ncol) = ident(&mut cur)?;
            if cur.bump() != Some(b']') || cur.bump() != Some(b']') {
                return Err(cur.err("expected `]]` to close the section header"));
            }
            let elem = Val::new(Kind::Table(Vec::new()), line, col);
            let idx = match root.iter().position(|(k, _)| k.name == name) {
                Some(idx) => {
                    match &mut root[idx].1.kind {
                        Kind::Arr(items) => items.push(elem),
                        _ => {
                            return Err(SpecError::at(
                                nline,
                                ncol,
                                &name,
                                format!("`{name}` is already defined as a value, not a section"),
                            ))
                        }
                    }
                    idx
                }
                None => {
                    root.push((
                        Key {
                            name,
                            line: nline,
                            col: ncol,
                        },
                        Val::new(Kind::Arr(vec![elem]), line, col),
                    ));
                    root.len() - 1
                }
            };
            current = Some(idx);
        } else {
            let (name, kline, kcol) = ident(&mut cur)?;
            cur.skip_inline_ws();
            if cur.bump() != Some(b'=') {
                return Err(SpecError::at(
                    kline,
                    kcol,
                    &name,
                    format!("expected `=` after key `{name}`"),
                ));
            }
            cur.skip_inline_ws();
            let val = toml_scalar(&mut cur)?;
            cur.skip_inline_ws();
            match cur.peek() {
                None | Some(b'\n') | Some(b'#') => {}
                Some(b) => {
                    return Err(cur.err(format!(
                        "unexpected trailing character {:?} after value",
                        b as char
                    )))
                }
            }
            let key = Key {
                name,
                line: kline,
                col: kcol,
            };
            match current {
                None => insert_unique(&mut root, key, val)?,
                Some(idx) => match &mut root[idx].1.kind {
                    Kind::Arr(items) => match &mut items.last_mut().unwrap().kind {
                        Kind::Table(entries) => insert_unique(entries, key, val)?,
                        _ => unreachable!("section elements are always tables"),
                    },
                    _ => unreachable!("sections are always arrays"),
                },
            }
        }
    }
    Ok(Val::new(Kind::Table(root), 1, 1))
}

/// Parse a JSON document into the same [`Val`] tree.
pub fn parse_json(src: &str) -> Result<Val, SpecError> {
    let mut cur = Cursor::new(src);
    cur.skip_ws(false);
    let val = json_value(&mut cur)?;
    cur.skip_ws(false);
    if !cur.at_end() {
        return Err(cur.err("unexpected trailing content after JSON document"));
    }
    Ok(val)
}

fn json_value(cur: &mut Cursor<'_>) -> Result<Val, SpecError> {
    let (line, col) = cur.mark();
    match cur.peek() {
        Some(b'{') => {
            cur.bump();
            let mut entries: Vec<(Key, Val)> = Vec::new();
            cur.skip_ws(false);
            if cur.peek() == Some(b'}') {
                cur.bump();
                return Ok(Val::new(Kind::Table(entries), line, col));
            }
            loop {
                cur.skip_ws(false);
                let (kline, kcol) = cur.mark();
                if cur.peek() != Some(b'"') {
                    return Err(cur.err("expected a quoted object key"));
                }
                let name = cur.quoted_string()?;
                cur.skip_ws(false);
                if cur.bump() != Some(b':') {
                    return Err(cur.err("expected `:` after object key"));
                }
                cur.skip_ws(false);
                let val = json_value(cur)?;
                insert_unique(
                    &mut entries,
                    Key {
                        name,
                        line: kline,
                        col: kcol,
                    },
                    val,
                )?;
                cur.skip_ws(false);
                match cur.bump() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(cur.err("expected `,` or `}` in object")),
                }
            }
            Ok(Val::new(Kind::Table(entries), line, col))
        }
        Some(b'[') => {
            cur.bump();
            let mut items = Vec::new();
            cur.skip_ws(false);
            if cur.peek() == Some(b']') {
                cur.bump();
                return Ok(Val::new(Kind::Arr(items), line, col));
            }
            loop {
                cur.skip_ws(false);
                items.push(json_value(cur)?);
                cur.skip_ws(false);
                match cur.bump() {
                    Some(b',') => continue,
                    Some(b']') => break,
                    _ => return Err(cur.err("expected `,` or `]` in array")),
                }
            }
            Ok(Val::new(Kind::Arr(items), line, col))
        }
        Some(b'"') => {
            let s = cur.quoted_string()?;
            Ok(Val::new(Kind::Str(s), line, col))
        }
        Some(b't') | Some(b'f') => {
            let (word, _, _) = ident(cur)?;
            match word.as_str() {
                "true" => Ok(Val::new(Kind::Bool(true), line, col)),
                "false" => Ok(Val::new(Kind::Bool(false), line, col)),
                other => Err(SpecError::at(
                    line,
                    col,
                    "",
                    format!("unexpected JSON token `{other}`"),
                )),
            }
        }
        Some(b) if b.is_ascii_digit() || b == b'-' => {
            let kind = cur.number()?;
            Ok(Val::new(kind, line, col))
        }
        Some(b) => Err(cur.err(format!("unexpected character {:?} in JSON", b as char))),
        None => Err(cur.err("unexpected end of JSON input")),
    }
}
