//! Compilation from a parsed spec document ([`Val`]) to a validated
//! [`ScenarioProgram`], with every diagnostic carrying the line/column
//! and dotted field path of the offending spec entry, plus
//! deterministic sweep expansion (`[[sweep]]` → one program per value).

use crate::noise::{NoiseDist, NoiseSeg};
use crate::program::{CpuSeg, Fault, LinkSeg, NetSeg, NodeSel, ScenarioProgram};
use crate::value::{Key, SpecError, Val};

/// A parsed-but-not-yet-compiled scenario spec.
#[derive(Clone, Debug)]
pub struct ScenarioSource {
    root: Val,
}

/// The single sweep declaration a spec may carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepDef {
    pub var: String,
    pub from: i64,
    pub to: i64,
    pub step: i64,
}

impl SweepDef {
    pub fn values(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut v = self.from;
        while v <= self.to {
            out.push(v);
            v += self.step;
        }
        out
    }
}

/// One expanded sweep point: the variable's value (None when the spec
/// has no sweep) and the program compiled with it substituted.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    pub value: Option<i64>,
    pub program: ScenarioProgram,
}

const TOP_KEYS: &[&str] = &[
    "name", "nodes", "samples", "cpu", "link", "net", "fault", "noise", "sweep",
];
const CPU_KEYS: &[&str] = &["node", "at", "procs"];
const LINK_KEYS: &[&str] = &["node", "at", "cap_mbps", "restore"];
const NET_KEYS: &[&str] = &["at", "latency"];
const SWEEP_KEYS: &[&str] = &["var", "from", "to", "step"];

impl ScenarioSource {
    pub fn from_toml(src: &str) -> Result<ScenarioSource, SpecError> {
        Ok(ScenarioSource {
            root: crate::parse::parse_toml(src)?,
        })
    }

    pub fn from_json(src: &str) -> Result<ScenarioSource, SpecError> {
        Ok(ScenarioSource {
            root: crate::parse::parse_json(src)?,
        })
    }

    /// Sniff the format: a document whose first non-blank byte is `{`
    /// is JSON, anything else is treated as TOML.
    pub fn auto(src: &str) -> Result<ScenarioSource, SpecError> {
        if src.trim_start().starts_with('{') {
            ScenarioSource::from_json(src)
        } else {
            ScenarioSource::from_toml(src)
        }
    }

    pub fn has_sweep(&self) -> bool {
        self.root.get("sweep").is_some()
    }

    /// Extract and validate the sweep declaration, if any.
    pub fn sweep(&self) -> Result<Option<SweepDef>, SpecError> {
        let Some(arr_val) = self.root.get("sweep") else {
            return Ok(None);
        };
        let arr = arr_val
            .as_arr()
            .ok_or_else(|| SpecError::of(arr_val, "sweep", "`sweep` must be an array of tables"))?;
        if arr.len() > 1 {
            return Err(SpecError::of(
                &arr[1],
                "sweep",
                "at most one sweep is allowed per spec",
            ));
        }
        let entry = &arr[0];
        let path = "sweep[0]";
        let entries = expect_table(entry, path)?;
        check_keys(entries, SWEEP_KEYS, path)?;
        let var_val = get_req(entry, path, "var")?;
        let var = var_val
            .as_str()
            .ok_or_else(|| type_err(var_val, &format!("{path}.var"), "a string"))?
            .to_string();
        if var.is_empty() || !var.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::of(
                var_val,
                &format!("{path}.var"),
                "sweep variable must be a non-empty identifier",
            ));
        }
        let from = plain_int(get_req(entry, path, "from")?, &format!("{path}.from"))?;
        let to = plain_int(get_req(entry, path, "to")?, &format!("{path}.to"))?;
        let step = match entry.get("step") {
            Some(v) => plain_int(v, &format!("{path}.step"))?,
            None => 1,
        };
        if step < 1 {
            return Err(SpecError::of(
                entry.get("step").unwrap_or(entry),
                &format!("{path}.step"),
                format!("sweep step {step} must be >= 1"),
            ));
        }
        if from > to {
            return Err(SpecError::of(
                entry,
                path,
                format!("empty sweep range: from {from} to {to} produces no values"),
            ));
        }
        Ok(Some(SweepDef {
            var,
            from,
            to,
            step,
        }))
    }

    /// Compile a sweep-free spec to a single program. Specs with a
    /// sweep must go through [`expand`] instead.
    ///
    /// [`expand`]: ScenarioSource::expand
    pub fn compile(&self) -> Result<ScenarioProgram, SpecError> {
        if let Some(sweep_val) = self.root.get("sweep") {
            self.sweep()?; // surface sweep-shape errors first
            return Err(SpecError::of(
                sweep_val,
                "sweep",
                "this spec declares a sweep; expand it into its points instead of compiling it directly",
            ));
        }
        self.compile_with(&[], "")
    }

    /// Compile the spec once per sweep value (or once, with no
    /// substitution, when there is no sweep). Deterministic: points
    /// come out in ascending variable order.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, SpecError> {
        match self.sweep()? {
            None => Ok(vec![SweepPoint {
                value: None,
                program: self.compile_with(&[], "")?,
            }]),
            Some(def) => {
                let points = def
                    .values()
                    .into_iter()
                    .map(|v| {
                        Ok(SweepPoint {
                            value: Some(v),
                            program: self.compile_with(
                                &[(def.var.as_str(), v)],
                                &format!("-{}{v}", def.var),
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                crate::counters::record_sweep_expanded();
                Ok(points)
            }
        }
    }

    fn compile_with(
        &self,
        vars: &[(&str, i64)],
        name_suffix: &str,
    ) -> Result<ScenarioProgram, SpecError> {
        let entries = expect_table(&self.root, "")?;
        check_keys(entries, TOP_KEYS, "")?;

        let name_val = self
            .root
            .get("name")
            .ok_or_else(|| SpecError::of(&self.root, "name", "missing required field `name`"))?;
        let name = name_val
            .as_str()
            .ok_or_else(|| type_err(name_val, "name", "a string"))?;
        if name.is_empty() {
            return Err(SpecError::of(
                name_val,
                "name",
                "scenario name must not be empty",
            ));
        }

        let nodes = match self.root.get("nodes") {
            None => None,
            Some(v) => {
                let n = plain_int(v, "nodes")?;
                if n < 1 {
                    return Err(SpecError::of(
                        v,
                        "nodes",
                        format!("node count {n} must be >= 1"),
                    ));
                }
                Some(n as u32)
            }
        };

        let samples = match self.root.get("samples") {
            None => None,
            Some(v) => {
                let k = plain_int(v, "samples")?;
                if k < 1 {
                    return Err(SpecError::of(
                        v,
                        "samples",
                        format!("sample count {k} must be >= 1"),
                    ));
                }
                Some(k as u32)
            }
        };

        let mut program = ScenarioProgram::empty(&format!("{name}{name_suffix}"));
        program.nodes = nodes;
        program.samples = samples;

        let mut cpu_seen: Vec<(NodeSel, u64)> = Vec::new();
        for (i, entry) in section(&self.root, "cpu")?.iter().enumerate() {
            let path = format!("cpu[{i}]");
            let fields = expect_table(entry, &path)?;
            check_keys(fields, CPU_KEYS, &path)?;
            let node = node_sel(
                vars,
                get_req(entry, &path, "node")?,
                &format!("{path}.node"),
                nodes,
            )?;
            let at = time_ge0(vars, get_req(entry, &path, "at")?, &format!("{path}.at"))?;
            let procs_val = get_req(entry, &path, "procs")?;
            let procs = int_field(vars, procs_val, &format!("{path}.procs"))?;
            if procs < 0 {
                return Err(SpecError::of(
                    procs_val,
                    &format!("{path}.procs"),
                    format!("competing process count {procs} must be >= 0"),
                ));
            }
            if cpu_seen.contains(&(node, at.to_bits())) {
                return Err(SpecError::of(
                    entry,
                    &format!("{path}.at"),
                    format!(
                        "overlapping segments: node {node} already has a cpu segment at t={at}"
                    ),
                ));
            }
            cpu_seen.push((node, at.to_bits()));
            program.cpu.push(CpuSeg { node, at, procs });
        }

        let mut link_seen: Vec<(NodeSel, u64)> = Vec::new();
        for (i, entry) in section(&self.root, "link")?.iter().enumerate() {
            let path = format!("link[{i}]");
            let fields = expect_table(entry, &path)?;
            check_keys(fields, LINK_KEYS, &path)?;
            let node = node_sel(
                vars,
                get_req(entry, &path, "node")?,
                &format!("{path}.node"),
                nodes,
            )?;
            let at = time_ge0(vars, get_req(entry, &path, "at")?, &format!("{path}.at"))?;
            let cap = match (entry.get("cap_mbps"), entry.get("restore")) {
                (Some(cap_val), None) => {
                    let mbps = num_field(vars, cap_val, &format!("{path}.cap_mbps"))?;
                    if !(mbps.is_finite() && mbps > 0.0) {
                        return Err(SpecError::of(
                            cap_val,
                            &format!("{path}.cap_mbps"),
                            format!("bandwidth cap {mbps} must be > 0 (megabits/sec)"),
                        ));
                    }
                    Some(mbps * 1e6 / 8.0)
                }
                (None, Some(restore_val)) => match restore_val.kind {
                    crate::value::Kind::Bool(true) => None,
                    _ => {
                        return Err(SpecError::of(
                            restore_val,
                            &format!("{path}.restore"),
                            "`restore` must be `true` (or omit it and set `cap_mbps`)",
                        ))
                    }
                },
                (None, None) => {
                    return Err(SpecError::of(
                        entry,
                        &path,
                        "link segment needs either `cap_mbps` or `restore = true`",
                    ))
                }
                (Some(_), Some(restore_val)) => {
                    return Err(SpecError::of(
                        restore_val,
                        &format!("{path}.restore"),
                        "`cap_mbps` and `restore` are mutually exclusive",
                    ))
                }
            };
            if link_seen.contains(&(node, at.to_bits())) {
                return Err(SpecError::of(
                    entry,
                    &format!("{path}.at"),
                    format!(
                        "overlapping segments: node {node} already has a link segment at t={at}"
                    ),
                ));
            }
            link_seen.push((node, at.to_bits()));
            program.link.push(LinkSeg { node, at, cap });
        }

        let mut net_seen: Vec<u64> = Vec::new();
        for (i, entry) in section(&self.root, "net")?.iter().enumerate() {
            let path = format!("net[{i}]");
            let fields = expect_table(entry, &path)?;
            check_keys(fields, NET_KEYS, &path)?;
            let at = time_ge0(vars, get_req(entry, &path, "at")?, &format!("{path}.at"))?;
            let lat_val = get_req(entry, &path, "latency")?;
            let latency = num_field(vars, lat_val, &format!("{path}.latency"))?;
            if !(latency.is_finite() && latency >= 0.0) {
                return Err(SpecError::of(
                    lat_val,
                    &format!("{path}.latency"),
                    format!("latency {latency} must be >= 0 (seconds)"),
                ));
            }
            if net_seen.contains(&at.to_bits()) {
                return Err(SpecError::of(
                    entry,
                    &format!("{path}.at"),
                    format!("overlapping segments: a net segment at t={at} already exists"),
                ));
            }
            net_seen.push(at.to_bits());
            program.net.push(NetSeg { at, latency });
        }

        let mut delayed: Vec<u32> = Vec::new();
        for (i, entry) in section(&self.root, "fault")?.iter().enumerate() {
            let path = format!("fault[{i}]");
            expect_table(entry, &path)?;
            let kind_val = get_req(entry, &path, "kind")?;
            let kind = kind_val
                .as_str()
                .ok_or_else(|| type_err(kind_val, &format!("{path}.kind"), "a string"))?;
            let fields = expect_table(entry, &path)?;
            match kind {
                "link-outage" => {
                    check_keys(fields, &["kind", "node", "at", "for"], &path)?;
                    let node =
                        node_sel(vars, get_req(entry, &path, "node")?, &format!("{path}.node"), nodes)?;
                    let at = time_gt0(vars, get_req(entry, &path, "at")?, &format!("{path}.at"))?;
                    let dur =
                        dur_gt0(vars, get_req(entry, &path, "for")?, &format!("{path}.for"))?;
                    program.faults.push(Fault::LinkOutage { node, at, dur });
                }
                "slowdown" => {
                    check_keys(fields, &["kind", "node", "at", "for", "factor"], &path)?;
                    let node =
                        node_sel(vars, get_req(entry, &path, "node")?, &format!("{path}.node"), nodes)?;
                    let at = time_gt0(vars, get_req(entry, &path, "at")?, &format!("{path}.at"))?;
                    let dur =
                        dur_gt0(vars, get_req(entry, &path, "for")?, &format!("{path}.for"))?;
                    let factor_val = get_req(entry, &path, "factor")?;
                    let factor = num_field(vars, factor_val, &format!("{path}.factor"))?;
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(SpecError::of(
                            factor_val,
                            &format!("{path}.factor"),
                            format!("slowdown factor {factor} must be > 0"),
                        ));
                    }
                    program.faults.push(Fault::SlowdownBurst {
                        node,
                        at,
                        dur,
                        factor,
                    });
                }
                "delayed-start" => {
                    check_keys(fields, &["kind", "rank", "delay"], &path)?;
                    let rank_val = get_req(entry, &path, "rank")?;
                    let rank = int_field(vars, rank_val, &format!("{path}.rank"))?;
                    if rank < 0 {
                        return Err(SpecError::of(
                            rank_val,
                            &format!("{path}.rank"),
                            format!("rank {rank} must be >= 0"),
                        ));
                    }
                    let delay =
                        dur_gt0(vars, get_req(entry, &path, "delay")?, &format!("{path}.delay"))?;
                    if delayed.contains(&(rank as u32)) {
                        return Err(SpecError::of(
                            rank_val,
                            &format!("{path}.rank"),
                            format!("rank {rank} has more than one delayed-start fault"),
                        ));
                    }
                    delayed.push(rank as u32);
                    program.faults.push(Fault::DelayedStart {
                        rank: rank as u32,
                        delay,
                    });
                }
                other => {
                    return Err(SpecError::of(
                        kind_val,
                        &format!("{path}.kind"),
                        format!(
                            "unknown fault kind `{other}` (expected `link-outage`, `slowdown`, or `delayed-start`)"
                        ),
                    ))
                }
            }
        }

        for (i, entry) in section(&self.root, "noise")?.iter().enumerate() {
            let path = format!("noise[{i}]");
            let fields = expect_table(entry, &path)?;
            let kind = match entry.get("kind") {
                None => "cpu",
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| type_err(v, &format!("{path}.kind"), "a string"))?,
            };
            // The allowed key set depends on the block kind and on each
            // distribution's family, so it is collected while parsing
            // and checked at the end for precise unknown-key spans.
            let mut allowed: Vec<String> = vec!["kind".into(), "until".into()];
            let until_val = get_req(entry, &path, "until")?;
            let until = num_field(vars, until_val, &format!("{path}.until"))?;
            if !(until.is_finite() && until > 0.0) {
                return Err(SpecError::of(
                    until_val,
                    &format!("{path}.until"),
                    format!("noise horizon `until` {until} must be > 0 (seconds)"),
                ));
            }
            match kind {
                "cpu" => {
                    allowed.push("node".into());
                    allowed.push("procs".into());
                    let node = node_sel(
                        vars,
                        get_req(entry, &path, "node")?,
                        &format!("{path}.node"),
                        nodes,
                    )?;
                    let procs_val = get_req(entry, &path, "procs")?;
                    let procs = int_field(vars, procs_val, &format!("{path}.procs"))?;
                    if procs < 1 {
                        return Err(SpecError::of(
                            procs_val,
                            &format!("{path}.procs"),
                            format!("noise burst procs {procs} must be >= 1"),
                        ));
                    }
                    let interarrival =
                        noise_dist(vars, entry, &path, "interarrival", &mut allowed)?;
                    check_interarrival(entry, &path, &interarrival)?;
                    let duration = noise_dist(vars, entry, &path, "duration", &mut allowed)?;
                    program.noise.push(NoiseSeg::Cpu {
                        node,
                        procs,
                        interarrival,
                        duration,
                        until,
                    });
                }
                "latency" => {
                    allowed.push("base".into());
                    let base_val = get_req(entry, &path, "base")?;
                    let base = num_field(vars, base_val, &format!("{path}.base"))?;
                    if !(base.is_finite() && base >= 0.0) {
                        return Err(SpecError::of(
                            base_val,
                            &format!("{path}.base"),
                            format!("base latency {base} must be >= 0 (seconds)"),
                        ));
                    }
                    let jitter = noise_dist(vars, entry, &path, "jitter", &mut allowed)?;
                    let interarrival =
                        noise_dist(vars, entry, &path, "interarrival", &mut allowed)?;
                    check_interarrival(entry, &path, &interarrival)?;
                    program.noise.push(NoiseSeg::Latency {
                        base,
                        jitter,
                        interarrival,
                        until,
                    });
                }
                other => {
                    return Err(SpecError::of(
                        entry.get("kind").unwrap_or(entry),
                        &format!("{path}.kind"),
                        format!("unknown noise kind `{other}` (expected `cpu` or `latency`)"),
                    ))
                }
            }
            let refs: Vec<&str> = allowed.iter().map(String::as_str).collect();
            check_keys(fields, &refs, &path)?;
        }

        // Structural backstop: everything above should already have
        // caught spec-level mistakes with spans; this guards invariants
        // the compiler cannot express (and programmatic misuse).
        program
            .validate()
            .map_err(|msg| SpecError::of(&self.root, "", msg))?;
        crate::counters::record_program_compiled();
        Ok(program)
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn type_err(val: &Val, path: &str, expected: &str) -> SpecError {
    SpecError::of(
        val,
        path,
        format!("expected {expected}, found {}", val.type_name()),
    )
}

fn expect_table<'v>(val: &'v Val, path: &str) -> Result<&'v [(Key, Val)], SpecError> {
    val.as_table().ok_or_else(|| type_err(val, path, "a table"))
}

fn check_keys(entries: &[(Key, Val)], allowed: &[&str], path: &str) -> Result<(), SpecError> {
    for (key, _) in entries {
        if !allowed.contains(&key.name.as_str()) {
            let field = if path.is_empty() {
                key.name.clone()
            } else {
                format!("{path}.{}", key.name)
            };
            return Err(SpecError::at(
                key.line,
                key.col,
                &field,
                format!(
                    "unknown key `{}` (expected one of: {})",
                    key.name,
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn get_req<'v>(table: &'v Val, path: &str, key: &str) -> Result<&'v Val, SpecError> {
    table.get(key).ok_or_else(|| {
        let field = if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        };
        SpecError::of(table, &field, format!("missing required field `{key}`"))
    })
}

/// Resolve a `"$var"` reference against the substitution map.
fn substitute(vars: &[(&str, i64)], val: &Val, path: &str) -> Result<Option<i64>, SpecError> {
    let Some(s) = val.as_str() else {
        return Ok(None);
    };
    let Some(name) = s.strip_prefix('$') else {
        return Err(SpecError::of(
            val,
            path,
            format!("expected a number or a `$variable` reference, found string {s:?}"),
        ));
    };
    match vars.iter().find(|(v, _)| *v == name) {
        Some((_, value)) => Ok(Some(*value)),
        None => Err(SpecError::of(
            val,
            path,
            format!("unknown variable `${name}` (no sweep declares it)"),
        )),
    }
}

fn num_field(vars: &[(&str, i64)], val: &Val, path: &str) -> Result<f64, SpecError> {
    if let Some(v) = substitute(vars, val, path)? {
        return Ok(v as f64);
    }
    val.as_num().ok_or_else(|| type_err(val, path, "a number"))
}

fn int_field(vars: &[(&str, i64)], val: &Val, path: &str) -> Result<i64, SpecError> {
    if let Some(v) = substitute(vars, val, path)? {
        return Ok(v);
    }
    match val.kind {
        crate::value::Kind::Int(i) => Ok(i),
        _ => Err(type_err(val, path, "an integer")),
    }
}

/// An integer field where `$var` substitution is not allowed (sweep
/// bounds, node counts).
fn plain_int(val: &Val, path: &str) -> Result<i64, SpecError> {
    match val.kind {
        crate::value::Kind::Int(i) => Ok(i),
        _ => Err(type_err(val, path, "an integer")),
    }
}

fn time_ge0(vars: &[(&str, i64)], val: &Val, path: &str) -> Result<f64, SpecError> {
    let t = num_field(vars, val, path)?;
    if !(t.is_finite() && t >= 0.0) {
        return Err(SpecError::of(
            val,
            path,
            format!("time {t} must be >= 0 (seconds)"),
        ));
    }
    Ok(t)
}

fn time_gt0(vars: &[(&str, i64)], val: &Val, path: &str) -> Result<f64, SpecError> {
    let t = num_field(vars, val, path)?;
    if !(t.is_finite() && t > 0.0) {
        return Err(SpecError::of(
            val,
            path,
            format!("fault start time {t} must be > 0 (seconds; t=0 state belongs in a schedule segment)"),
        ));
    }
    Ok(t)
}

fn dur_gt0(vars: &[(&str, i64)], val: &Val, path: &str) -> Result<f64, SpecError> {
    let d = num_field(vars, val, path)?;
    if !(d.is_finite() && d > 0.0) {
        return Err(SpecError::of(
            val,
            path,
            format!("duration {d} must be > 0 (seconds)"),
        ));
    }
    Ok(d)
}

/// Parse one prefixed distribution from a noise block: the `<prefix>`
/// key names the family (`exp`, `uniform`, `lognormal`) and
/// `<prefix>_mean` / `<prefix>_min`+`<prefix>_max` /
/// `<prefix>_p50`+`<prefix>_p90` carry its parameters. Every key the
/// chosen family accepts is appended to `allowed` so the block's
/// unknown-key check matches exactly what was parsed.
fn noise_dist(
    vars: &[(&str, i64)],
    entry: &Val,
    path: &str,
    prefix: &str,
    allowed: &mut Vec<String>,
) -> Result<NoiseDist, SpecError> {
    allowed.push(prefix.to_string());
    let family_val = get_req(entry, path, prefix)?;
    let family = family_val.as_str().ok_or_else(|| {
        type_err(
            family_val,
            &format!("{path}.{prefix}"),
            "a distribution name (`exp`, `uniform`, or `lognormal`)",
        )
    })?;
    let mut param = |key: String| -> Result<(f64, String), SpecError> {
        allowed.push(key.clone());
        let field = format!("{path}.{key}");
        let v = num_field(vars, get_req(entry, path, &key)?, &field)?;
        Ok((v, field))
    };
    match family {
        "exp" => {
            let (mean, field) = param(format!("{prefix}_mean"))?;
            if !(mean.is_finite() && mean > 0.0) {
                return Err(SpecError::of(
                    entry.get(&format!("{prefix}_mean")).unwrap_or(entry),
                    &field,
                    format!("distribution scale {mean} must be > 0 (seconds)"),
                ));
            }
            Ok(NoiseDist::Exp { mean })
        }
        "uniform" => {
            let (min, min_field) = param(format!("{prefix}_min"))?;
            let (max, max_field) = param(format!("{prefix}_max"))?;
            if !(min.is_finite() && min >= 0.0) {
                return Err(SpecError::of(
                    entry.get(&format!("{prefix}_min")).unwrap_or(entry),
                    &min_field,
                    format!("distribution scale {min} must be >= 0 (seconds)"),
                ));
            }
            if !(max.is_finite() && max >= min) {
                return Err(SpecError::of(
                    entry.get(&format!("{prefix}_max")).unwrap_or(entry),
                    &max_field,
                    format!("uniform max {max} must be >= min {min}"),
                ));
            }
            Ok(NoiseDist::Uniform { min, max })
        }
        "lognormal" => {
            let (p50, p50_field) = param(format!("{prefix}_p50"))?;
            let (p90, p90_field) = param(format!("{prefix}_p90"))?;
            if !(p50.is_finite() && p50 > 0.0) {
                return Err(SpecError::of(
                    entry.get(&format!("{prefix}_p50")).unwrap_or(entry),
                    &p50_field,
                    format!("distribution scale {p50} must be > 0 (seconds)"),
                ));
            }
            if !(p90.is_finite() && p90 >= p50) {
                return Err(SpecError::of(
                    entry.get(&format!("{prefix}_p90")).unwrap_or(entry),
                    &p90_field,
                    format!("lognormal p90 {p90} must be >= p50 {p50}"),
                ));
            }
            Ok(NoiseDist::Lognormal { p50, p90 })
        }
        other => Err(SpecError::of(
            family_val,
            &format!("{path}.{prefix}"),
            format!("unknown distribution `{other}` (expected `exp`, `uniform`, or `lognormal`)"),
        )),
    }
}

/// A gap distribution stuck at zero would never advance time; reject it
/// at compile time rather than relying on the expansion's step floor.
fn check_interarrival(entry: &Val, path: &str, d: &NoiseDist) -> Result<(), SpecError> {
    if let NoiseDist::Uniform { max, .. } = *d {
        if max <= 0.0 {
            return Err(SpecError::of(
                entry,
                &format!("{path}.interarrival_max"),
                format!("interarrival uniform max {max} must be > 0 (seconds)"),
            ));
        }
    }
    Ok(())
}

fn node_sel(
    vars: &[(&str, i64)],
    val: &Val,
    path: &str,
    declared: Option<u32>,
) -> Result<NodeSel, SpecError> {
    if let Some(s) = val.as_str() {
        if s == "all" {
            return Ok(NodeSel::All);
        }
    }
    let id = int_field(vars, val, path).map_err(|mut e| {
        e.msg = "expected a node id, `\"all\"`, or a `$variable` reference".to_string();
        e
    })?;
    if id < 0 {
        return Err(SpecError::of(
            val,
            path,
            format!("node id {id} must be >= 0"),
        ));
    }
    if let Some(n) = declared {
        if id >= n as i64 {
            return Err(SpecError::of(
                val,
                path,
                format!(
                    "unknown node id {id}: this scenario declares {n} node(s) (0..={})",
                    n - 1
                ),
            ));
        }
    }
    Ok(NodeSel::Id(id as u32))
}

/// A section array (`[[cpu]]`, …); absent sections are empty.
fn section<'v>(root: &'v Val, name: &str) -> Result<&'v [Val], SpecError> {
    match root.get(name) {
        None => Ok(&[]),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| type_err(v, name, "an array of tables")),
    }
}
