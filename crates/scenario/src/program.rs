//! The validated scenario program: an executable description of how
//! cluster resource availability changes over simulated time.
//!
//! A [`ScenarioProgram`] is a set of piecewise-constant schedules plus
//! fault injections. Applying it to a base [`ClusterSpec`] folds every
//! t=0 setting into the static spec fields and lowers everything later
//! into [`Timeline`] events, so a *constant* program (all segments at
//! t=0, no faults) produces a cluster spec whose timeline is empty —
//! and therefore simulates bit-identically to a hand-edited static spec.
//!
//! Times are f64 seconds, bandwidth caps are bytes/second (matching
//! `NodeSpec::link_cap`), CPU contention is expressed as a number of
//! competing processes *added on top of* whatever the base spec has.

use crate::noise::{NoiseDist, NoiseSeg};
use pskel_sim::{ClusterSpec, SimDuration, StartDelay, Timeline, TimelineAction, TimelineEvent};
use std::fmt;

/// Which nodes a schedule segment or fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeSel {
    /// Every node in the cluster.
    All,
    /// A single node by index.
    Id(u32),
}

impl NodeSel {
    fn resolve(self, n_nodes: usize) -> std::ops::Range<usize> {
        match self {
            NodeSel::All => 0..n_nodes,
            NodeSel::Id(i) => i as usize..i as usize + 1,
        }
    }

    /// Sort key: `All` first, then ids in order.
    fn key(self) -> (u8, u32) {
        match self {
            NodeSel::All => (0, 0),
            NodeSel::Id(i) => (1, i),
        }
    }
}

impl fmt::Display for NodeSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeSel::All => write!(f, "all"),
            NodeSel::Id(i) => write!(f, "{i}"),
        }
    }
}

/// From `at` onward, the scenario contributes `procs` competing
/// processes on the selected nodes (replacing this scenario's previous
/// contribution there, not the base spec's own competing processes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuSeg {
    pub node: NodeSel,
    pub at: f64,
    pub procs: i64,
}

/// From `at` onward, the selected nodes' NIC bandwidth cap is `cap`
/// bytes/second (`None` = uncapped).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSeg {
    pub node: NodeSel,
    pub at: f64,
    pub cap: Option<f64>,
}

/// From `at` onward, the network one-way latency is `latency` seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetSeg {
    pub at: f64,
    pub latency: f64,
}

/// An injected fault. Unlike schedule segments, faults are transient:
/// they fire, hold for a duration, and restore the prevailing state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Link carries zero bandwidth during `[at, at + dur)`, then the cap
    /// prevailing per the link schedule is restored.
    LinkOutage { node: NodeSel, at: f64, dur: f64 },
    /// CPU speed is multiplied by `factor` during `[at, at + dur)`.
    SlowdownBurst {
        node: NodeSel,
        at: f64,
        dur: f64,
        factor: f64,
    },
    /// Rank `rank` begins executing `delay` seconds late.
    DelayedStart { rank: u32, delay: f64 },
}

/// A validated, time-varying contention scenario.
#[derive(Clone, Debug)]
pub struct ScenarioProgram {
    pub name: String,
    /// Declared cluster size; when set, `apply` rejects mismatched clusters.
    pub nodes: Option<u32>,
    pub cpu: Vec<CpuSeg>,
    pub link: Vec<LinkSeg>,
    pub net: Vec<NetSeg>,
    pub faults: Vec<Fault>,
    /// Stochastic noise blocks; expanded by [`apply_seeded`] and
    /// ignored by [`apply`], which yields the noise-free baseline.
    /// Block order is semantic (it selects PRNG substreams), so the
    /// canonical encoding preserves it rather than sorting.
    ///
    /// [`apply_seeded`]: ScenarioProgram::apply_seeded
    /// [`apply`]: ScenarioProgram::apply
    pub noise: Vec<NoiseSeg>,
    /// Suggested Monte-Carlo ensemble size for this program; callers
    /// that ask for a distribution without an explicit sample count
    /// fall back to this hint.
    pub samples: Option<u32>,
}

fn finite_nonneg(x: f64) -> bool {
    x.is_finite() && x >= 0.0
}

impl ScenarioProgram {
    /// An empty (dedicated-cluster) program.
    pub fn empty(name: &str) -> ScenarioProgram {
        ScenarioProgram {
            name: name.to_string(),
            nodes: None,
            cpu: Vec::new(),
            link: Vec::new(),
            net: Vec::new(),
            faults: Vec::new(),
            noise: Vec::new(),
            samples: None,
        }
    }

    /// Structural validation, independent of any concrete cluster.
    /// Node-index range checks against a real cluster happen in [`apply`].
    ///
    /// [`apply`]: ScenarioProgram::apply
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        self.check_ids(|sel| match (self.nodes, sel) {
            (Some(n), NodeSel::Id(i)) if i >= n => Err(format!(
                "node id {i} out of range for declared {n}-node scenario"
            )),
            _ => Ok(()),
        })?;
        let mut cpu_at: Vec<(NodeSel, u64)> = Vec::new();
        for seg in &self.cpu {
            if !finite_nonneg(seg.at) {
                return Err(format!("cpu segment time {} must be >= 0", seg.at));
            }
            if seg.procs < 0 {
                return Err(format!("cpu segment procs {} must be >= 0", seg.procs));
            }
            let key = (seg.node, seg.at.to_bits());
            if cpu_at.contains(&key) {
                return Err(format!(
                    "overlapping cpu segments: node {} has two segments at t={}",
                    seg.node, seg.at
                ));
            }
            cpu_at.push(key);
        }
        let mut link_at: Vec<(NodeSel, u64)> = Vec::new();
        for seg in &self.link {
            if !finite_nonneg(seg.at) {
                return Err(format!("link segment time {} must be >= 0", seg.at));
            }
            if let Some(cap) = seg.cap {
                if !cap.is_finite() || cap <= 0.0 {
                    return Err(format!(
                        "link segment cap {cap} must be a positive, finite bytes/sec value"
                    ));
                }
            }
            let key = (seg.node, seg.at.to_bits());
            if link_at.contains(&key) {
                return Err(format!(
                    "overlapping link segments: node {} has two segments at t={}",
                    seg.node, seg.at
                ));
            }
            link_at.push(key);
        }
        let mut net_at: Vec<u64> = Vec::new();
        for seg in &self.net {
            if !finite_nonneg(seg.at) {
                return Err(format!("net segment time {} must be >= 0", seg.at));
            }
            if !finite_nonneg(seg.latency) {
                return Err(format!("net latency {} must be >= 0", seg.latency));
            }
            if net_at.contains(&seg.at.to_bits()) {
                return Err(format!("overlapping net segments at t={}", seg.at));
            }
            net_at.push(seg.at.to_bits());
        }
        let mut delayed: Vec<u32> = Vec::new();
        for fault in &self.faults {
            match *fault {
                Fault::LinkOutage { at, dur, .. } => {
                    if !(at.is_finite() && at > 0.0) {
                        return Err(format!("link-outage start time {at} must be > 0"));
                    }
                    if !(dur.is_finite() && dur > 0.0) {
                        return Err(format!("link-outage duration {dur} must be > 0"));
                    }
                }
                Fault::SlowdownBurst {
                    at, dur, factor, ..
                } => {
                    if !(at.is_finite() && at > 0.0) {
                        return Err(format!("slowdown start time {at} must be > 0"));
                    }
                    if !(dur.is_finite() && dur > 0.0) {
                        return Err(format!("slowdown duration {dur} must be > 0"));
                    }
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!("slowdown factor {factor} must be > 0"));
                    }
                }
                Fault::DelayedStart { rank, delay } => {
                    if !(delay.is_finite() && delay > 0.0) {
                        return Err(format!("delayed-start delay {delay} must be > 0"));
                    }
                    if delayed.contains(&rank) {
                        return Err(format!("rank {rank} has more than one delayed-start"));
                    }
                    delayed.push(rank);
                }
            }
        }
        for seg in &self.noise {
            seg.validate()?;
        }
        if self.samples == Some(0) {
            return Err("sample count must be >= 1".into());
        }
        Ok(())
    }

    fn check_ids(&self, check: impl Fn(NodeSel) -> Result<(), String>) -> Result<(), String> {
        for seg in &self.cpu {
            check(seg.node)?;
        }
        for seg in &self.link {
            check(seg.node)?;
        }
        for fault in &self.faults {
            match *fault {
                Fault::LinkOutage { node, .. } | Fault::SlowdownBurst { node, .. } => check(node)?,
                Fault::DelayedStart { .. } => {}
            }
        }
        for seg in &self.noise {
            if let NoiseSeg::Cpu { node, .. } = seg {
                check(*node)?;
            }
        }
        Ok(())
    }

    /// True when the program never changes anything after t=0: applying
    /// it yields an empty timeline, so the simulation is bit-identical
    /// to one with the equivalent static spec edits.
    pub fn is_constant(&self) -> bool {
        self.faults.is_empty()
            && self.noise.is_empty()
            && self.cpu.iter().all(|s| s.at == 0.0)
            && self.link.iter().all(|s| s.at == 0.0)
            && self.net.iter().all(|s| s.at == 0.0)
    }

    /// True when the program carries stochastic noise blocks, i.e.
    /// [`apply`] and [`apply_seeded`] diverge.
    ///
    /// [`apply`]: ScenarioProgram::apply
    /// [`apply_seeded`]: ScenarioProgram::apply_seeded
    pub fn is_stochastic(&self) -> bool {
        !self.noise.is_empty()
    }

    /// Apply the program to a base cluster: fold t=0 settings into the
    /// static spec, lower everything later into timeline events.
    pub fn apply(&self, base: &ClusterSpec) -> Result<ClusterSpec, String> {
        self.validate()?;
        let n = base.nodes.len();
        if let Some(decl) = self.nodes {
            if decl as usize != n {
                return Err(format!(
                    "scenario `{}` declares {decl} nodes but the cluster has {n}",
                    self.name
                ));
            }
        }
        self.check_ids(|sel| match sel {
            NodeSel::Id(i) if i as usize >= n => {
                Err(format!("node id {i} out of range for {n}-node cluster"))
            }
            _ => Ok(()),
        })?;

        let mut spec = base.clone();
        let mut events: Vec<TimelineEvent> = Vec::new();

        // CPU contention: per-node step function of *added* competing
        // processes. t=0 folds into `competing_processes`; later steps
        // become AddCompeting deltas relative to the previous step.
        let mut per_node: Vec<Vec<(u64, i64)>> = vec![Vec::new(); n];
        for seg in &self.cpu {
            for node in seg.node.resolve(n) {
                per_node[node].push((seg.at.to_bits(), seg.procs));
            }
        }
        for (node, segs) in per_node.iter_mut().enumerate() {
            segs.sort_by(|a, b| {
                f64::from_bits(a.0)
                    .partial_cmp(&f64::from_bits(b.0))
                    .unwrap()
            });
            let mut prev = 0i64;
            for &(at_bits, procs) in segs.iter() {
                let at = f64::from_bits(at_bits);
                if at == 0.0 {
                    spec.nodes[node].competing_processes = spec.nodes[node]
                        .competing_processes
                        .saturating_add(procs as u32);
                } else {
                    let delta = procs - prev;
                    if delta != 0 {
                        events.push(TimelineEvent {
                            at: SimDuration::from_secs_f64(at),
                            node,
                            action: TimelineAction::AddCompeting(delta),
                            fault: false,
                        });
                    }
                }
                prev = procs;
            }
        }

        // Link caps: absolute settings; t=0 folds, later become SetLinkCap.
        let mut link_per_node: Vec<Vec<(f64, Option<f64>)>> = vec![Vec::new(); n];
        for seg in &self.link {
            for node in seg.node.resolve(n) {
                link_per_node[node].push((seg.at, seg.cap));
            }
        }
        for (node, segs) in link_per_node.iter_mut().enumerate() {
            segs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for &(at, cap) in segs.iter() {
                if at == 0.0 {
                    spec.nodes[node].link_cap = cap;
                } else {
                    events.push(TimelineEvent {
                        at: SimDuration::from_secs_f64(at),
                        node,
                        action: TimelineAction::SetLinkCap(cap),
                        fault: false,
                    });
                }
            }
        }

        // Network latency.
        let mut net = self.net.clone();
        net.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap());
        for seg in &net {
            if seg.at == 0.0 {
                spec.net.latency = SimDuration::from_secs_f64(seg.latency);
            } else {
                events.push(TimelineEvent {
                    at: SimDuration::from_secs_f64(seg.at),
                    node: 0,
                    action: TimelineAction::SetLatency(SimDuration::from_secs_f64(seg.latency)),
                    fault: false,
                });
            }
        }

        // Faults.
        let mut start_delays: Vec<StartDelay> = Vec::new();
        for fault in &self.faults {
            match *fault {
                Fault::LinkOutage { node, at, dur } => {
                    for id in node.resolve(n) {
                        // A zero cap starves the link's max-min share, so
                        // flows through it stall for the outage window.
                        events.push(TimelineEvent {
                            at: SimDuration::from_secs_f64(at),
                            node: id,
                            action: TimelineAction::SetLinkCap(Some(0.0)),
                            fault: true,
                        });
                        events.push(TimelineEvent {
                            at: SimDuration::from_secs_f64(at + dur),
                            node: id,
                            action: TimelineAction::SetLinkCap(self.prevailing_cap(
                                base,
                                id,
                                at + dur,
                            )),
                            fault: true,
                        });
                    }
                }
                Fault::SlowdownBurst {
                    node,
                    at,
                    dur,
                    factor,
                } => {
                    for id in node.resolve(n) {
                        events.push(TimelineEvent {
                            at: SimDuration::from_secs_f64(at),
                            node: id,
                            action: TimelineAction::SetSpeedFactor(factor),
                            fault: true,
                        });
                        events.push(TimelineEvent {
                            at: SimDuration::from_secs_f64(at + dur),
                            node: id,
                            action: TimelineAction::SetSpeedFactor(1.0),
                            fault: true,
                        });
                    }
                }
                Fault::DelayedStart { rank, delay } => {
                    start_delays.push(StartDelay {
                        rank: rank as usize,
                        delay: SimDuration::from_secs_f64(delay),
                    });
                }
            }
        }

        spec.timeline = Timeline {
            events,
            start_delays,
        };
        spec.validate();
        Ok(spec)
    }

    /// Like [`apply`], but additionally expands the program's noise
    /// blocks under `seed` into timeline events. The result is a fully
    /// deterministic cluster spec: the same `(program, base, seed)`
    /// triple always produces bit-identical timelines. A program
    /// without noise returns exactly what [`apply`] returns, at every
    /// seed.
    ///
    /// [`apply`]: ScenarioProgram::apply
    pub fn apply_seeded(&self, base: &ClusterSpec, seed: u64) -> Result<ClusterSpec, String> {
        let mut spec = self.apply(base)?;
        if self.noise.is_empty() {
            return Ok(spec);
        }
        let events = crate::noise::expand_noise(&self.noise, base.nodes.len(), seed)?;
        spec.timeline.events.extend(events);
        spec.validate();
        Ok(spec)
    }

    /// The link cap in force on `node` at time `t` per the link schedule
    /// (ignoring faults), used to end an outage correctly.
    fn prevailing_cap(&self, base: &ClusterSpec, node: usize, t: f64) -> Option<f64> {
        let mut cap = base.nodes[node].link_cap;
        let mut best_at = -1.0f64;
        for seg in &self.link {
            let covers = match seg.node {
                NodeSel::All => true,
                NodeSel::Id(i) => i as usize == node,
            };
            if covers && seg.at <= t && seg.at >= best_at {
                best_at = seg.at;
                cap = seg.cap;
            }
        }
        cap
    }

    // -- combinators --------------------------------------------------------

    /// Merge two programs into one. Schedules are concatenated; where
    /// both set the same node at the same instant, CPU contributions
    /// add and link/net settings from `other` win. Faults concatenate.
    pub fn compose(&self, other: &ScenarioProgram) -> Result<ScenarioProgram, String> {
        let nodes = match (self.nodes, other.nodes) {
            (Some(a), Some(b)) if a != b => {
                return Err(format!(
                    "cannot compose scenarios declaring different node counts ({a} vs {b})"
                ))
            }
            (a, b) => a.or(b),
        };
        let mut out = ScenarioProgram {
            name: format!("{}+{}", self.name, other.name),
            nodes,
            cpu: self.cpu.clone(),
            link: self.link.clone(),
            net: self.net.clone(),
            faults: self.faults.clone(),
            // Noise blocks concatenate (each keeps its own substream);
            // the larger ensemble-size hint wins.
            noise: self
                .noise
                .iter()
                .chain(other.noise.iter())
                .copied()
                .collect(),
            samples: match (self.samples, other.samples) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
        };
        for seg in &other.cpu {
            if let Some(existing) = out
                .cpu
                .iter_mut()
                .find(|s| s.node == seg.node && s.at.to_bits() == seg.at.to_bits())
            {
                existing.procs += seg.procs;
            } else {
                out.cpu.push(*seg);
            }
        }
        for seg in &other.link {
            if let Some(existing) = out
                .link
                .iter_mut()
                .find(|s| s.node == seg.node && s.at.to_bits() == seg.at.to_bits())
            {
                existing.cap = seg.cap;
            } else {
                out.link.push(*seg);
            }
        }
        for seg in &other.net {
            if let Some(existing) = out
                .net
                .iter_mut()
                .find(|s| s.at.to_bits() == seg.at.to_bits())
            {
                existing.latency = seg.latency;
            } else {
                out.net.push(*seg);
            }
        }
        for fault in &other.faults {
            match *fault {
                Fault::DelayedStart { rank, .. }
                    if out.faults.iter().any(
                        |f| matches!(f, Fault::DelayedStart { rank: r, .. } if *r == rank),
                    ) =>
                {
                    return Err(format!(
                        "cannot compose: rank {rank} has a delayed-start in both scenarios"
                    ));
                }
                _ => out.faults.push(*fault),
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Stretch the schedule in time and/or intensity: every schedule and
    /// fault time is multiplied by `time_factor`; CPU contention counts
    /// are scaled by `load_factor` and rounded to the nearest integer.
    pub fn scale(&self, time_factor: f64, load_factor: f64) -> Result<ScenarioProgram, String> {
        if !(time_factor.is_finite() && time_factor > 0.0) {
            return Err(format!("time factor {time_factor} must be > 0"));
        }
        if !(load_factor.is_finite() && load_factor >= 0.0) {
            return Err(format!("load factor {load_factor} must be >= 0"));
        }
        let mut out = self.clone();
        out.name = format!("{}*t{time_factor}l{load_factor}", self.name);
        for seg in &mut out.cpu {
            seg.at *= time_factor;
            seg.procs = (seg.procs as f64 * load_factor).round() as i64;
        }
        for seg in &mut out.link {
            seg.at *= time_factor;
        }
        for seg in &mut out.net {
            seg.at *= time_factor;
        }
        for fault in &mut out.faults {
            match fault {
                Fault::LinkOutage { at, dur, .. } => {
                    *at *= time_factor;
                    *dur *= time_factor;
                }
                Fault::SlowdownBurst { at, dur, .. } => {
                    *at *= time_factor;
                    *dur *= time_factor;
                }
                Fault::DelayedStart { delay, .. } => *delay *= time_factor,
            }
        }
        // Noise horizons and gap/burst lengths are schedule times and
        // scale; latency values (base, jitter) are not schedule times
        // and stay put, matching how net-segment latencies behave.
        for seg in &mut out.noise {
            match seg {
                NoiseSeg::Cpu {
                    procs,
                    interarrival,
                    duration,
                    until,
                    ..
                } => {
                    *procs = (*procs as f64 * load_factor).round() as i64;
                    scale_dist(interarrival, time_factor);
                    scale_dist(duration, time_factor);
                    *until *= time_factor;
                }
                NoiseSeg::Latency {
                    interarrival,
                    until,
                    ..
                } => {
                    scale_dist(interarrival, time_factor);
                    *until *= time_factor;
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Replace every per-node selector with `all`, turning a scenario
    /// authored against one node into a cluster-wide one. CPU segments
    /// that collide after widening add; link segments last-wins; exact
    /// duplicate faults are removed.
    pub fn mirror_across_nodes(&self) -> Result<ScenarioProgram, String> {
        let mut out = ScenarioProgram::empty(&format!("{}@all", self.name));
        out.nodes = self.nodes;
        for seg in &self.cpu {
            let widened = CpuSeg {
                node: NodeSel::All,
                ..*seg
            };
            if let Some(existing) = out
                .cpu
                .iter_mut()
                .find(|s| s.at.to_bits() == widened.at.to_bits())
            {
                existing.procs += widened.procs;
            } else {
                out.cpu.push(widened);
            }
        }
        for seg in &self.link {
            let widened = LinkSeg {
                node: NodeSel::All,
                ..*seg
            };
            if let Some(existing) = out
                .link
                .iter_mut()
                .find(|s| s.at.to_bits() == widened.at.to_bits())
            {
                existing.cap = widened.cap;
            } else {
                out.link.push(widened);
            }
        }
        out.net = self.net.clone();
        for fault in &self.faults {
            let widened = match *fault {
                Fault::LinkOutage { at, dur, .. } => Fault::LinkOutage {
                    node: NodeSel::All,
                    at,
                    dur,
                },
                Fault::SlowdownBurst {
                    at, dur, factor, ..
                } => Fault::SlowdownBurst {
                    node: NodeSel::All,
                    at,
                    dur,
                    factor,
                },
                delayed @ Fault::DelayedStart { .. } => delayed,
            };
            if !out.faults.contains(&widened) {
                out.faults.push(widened);
            }
        }
        // Noise blocks widen but never dedupe: block index selects the
        // PRNG substream, so "identical" blocks are distinct sources.
        for seg in &self.noise {
            out.noise.push(match *seg {
                NoiseSeg::Cpu {
                    procs,
                    interarrival,
                    duration,
                    until,
                    ..
                } => NoiseSeg::Cpu {
                    node: NodeSel::All,
                    procs,
                    interarrival,
                    duration,
                    until,
                },
                lat @ NoiseSeg::Latency { .. } => lat,
            });
        }
        out.samples = self.samples;
        out.validate()?;
        Ok(out)
    }

    // -- canonical identity -------------------------------------------------

    /// A canonical byte encoding: schedules are sorted, floats encoded
    /// as IEEE-754 bit patterns, so two structurally-equal programs
    /// (regardless of declaration order or source syntax) encode
    /// identically. This is the program's identity for provenance keys.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::with_capacity(128);
        buf.extend_from_slice(b"PSCN1");
        put_str(&mut buf, &self.name);
        match self.nodes {
            None => buf.push(0),
            Some(n) => {
                buf.push(1);
                buf.extend_from_slice(&n.to_le_bytes());
            }
        }

        let mut cpu = self.cpu.clone();
        cpu.sort_by(|a, b| {
            (a.node.key(), a.at.to_bits(), a.procs).cmp(&(b.node.key(), b.at.to_bits(), b.procs))
        });
        buf.push(b'C');
        buf.extend_from_slice(&(cpu.len() as u32).to_le_bytes());
        for seg in &cpu {
            put_sel(&mut buf, seg.node);
            put_f64(&mut buf, seg.at);
            buf.extend_from_slice(&seg.procs.to_le_bytes());
        }

        let mut link = self.link.clone();
        link.sort_by_key(|a| (a.node.key(), a.at.to_bits()));
        buf.push(b'L');
        buf.extend_from_slice(&(link.len() as u32).to_le_bytes());
        for seg in &link {
            put_sel(&mut buf, seg.node);
            put_f64(&mut buf, seg.at);
            match seg.cap {
                None => buf.push(0),
                Some(cap) => {
                    buf.push(1);
                    put_f64(&mut buf, cap);
                }
            }
        }

        let mut net = self.net.clone();
        net.sort_by_key(|s| s.at.to_bits());
        buf.push(b'N');
        buf.extend_from_slice(&(net.len() as u32).to_le_bytes());
        for seg in &net {
            put_f64(&mut buf, seg.at);
            put_f64(&mut buf, seg.latency);
        }

        let mut faults: Vec<Vec<u8>> = self
            .faults
            .iter()
            .map(|fault| {
                let mut fb = Vec::new();
                match *fault {
                    Fault::LinkOutage { node, at, dur } => {
                        fb.push(1);
                        put_sel(&mut fb, node);
                        put_f64(&mut fb, at);
                        put_f64(&mut fb, dur);
                    }
                    Fault::SlowdownBurst {
                        node,
                        at,
                        dur,
                        factor,
                    } => {
                        fb.push(2);
                        put_sel(&mut fb, node);
                        put_f64(&mut fb, at);
                        put_f64(&mut fb, dur);
                        put_f64(&mut fb, factor);
                    }
                    Fault::DelayedStart { rank, delay } => {
                        fb.push(3);
                        fb.extend_from_slice(&rank.to_le_bytes());
                        put_f64(&mut fb, delay);
                    }
                }
                fb
            })
            .collect();
        faults.sort();
        buf.push(b'F');
        buf.extend_from_slice(&(faults.len() as u32).to_le_bytes());
        for fb in faults {
            buf.extend_from_slice(&fb);
        }

        // Stochastic extensions are emitted only when present, so every
        // noise-free program keeps the encoding (and thus the short_id
        // and provenance token) it had before noise existed. Blocks are
        // NOT sorted: their index selects the PRNG substream, so order
        // is part of the program's behavior.
        if self.samples.is_some() || !self.noise.is_empty() {
            buf.push(b'K');
            match self.samples {
                None => buf.push(0),
                Some(k) => {
                    buf.push(1);
                    buf.extend_from_slice(&k.to_le_bytes());
                }
            }
            buf.push(b'S');
            buf.extend_from_slice(&(self.noise.len() as u32).to_le_bytes());
            for seg in &self.noise {
                match *seg {
                    NoiseSeg::Cpu {
                        node,
                        procs,
                        interarrival,
                        duration,
                        until,
                    } => {
                        buf.push(1);
                        put_sel(&mut buf, node);
                        buf.extend_from_slice(&procs.to_le_bytes());
                        put_dist(&mut buf, interarrival);
                        put_dist(&mut buf, duration);
                        put_f64(&mut buf, until);
                    }
                    NoiseSeg::Latency {
                        base,
                        jitter,
                        interarrival,
                        until,
                    } => {
                        buf.push(2);
                        put_f64(&mut buf, base);
                        put_dist(&mut buf, jitter);
                        put_dist(&mut buf, interarrival);
                        put_f64(&mut buf, until);
                    }
                }
            }
        }
        buf
    }

    /// A short stable hex identifier derived from [`canonical_bytes`]
    /// (FNV-1a 64). Used in provenance keys and the serve API.
    ///
    /// [`canonical_bytes`]: ScenarioProgram::canonical_bytes
    pub fn short_id(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Like [`short_id`], but independent of the program's *name*: two
    /// sweep points whose compiled behavior is identical — e.g. the
    /// sweep variable is never referenced, or two values collapse to the
    /// same schedule — share a behavior id even though expansion gave
    /// them distinct `-var` suffixed names. Sweep executors dedupe on
    /// this before simulating.
    ///
    /// [`short_id`]: ScenarioProgram::short_id
    pub fn behavior_id(&self) -> String {
        let mut anon = self.clone();
        anon.name = String::new();
        anon.short_id()
    }

    /// One-line summary for CLI/registry listings.
    pub fn summary(&self) -> String {
        let noise = if self.noise.is_empty() {
            String::new()
        } else {
            format!(", {} noise block(s)", self.noise.len())
        };
        format!(
            "{} cpu seg(s), {} link seg(s), {} net seg(s), {} fault(s){noise}{}",
            self.cpu.len(),
            self.link.len(),
            self.net.len(),
            self.faults.len(),
            if self.is_constant() { ", constant" } else { "" }
        )
    }

    // -- emitters -----------------------------------------------------------

    /// Serialize to the TOML-subset spec language. Round-trips through
    /// [`crate::ScenarioSource::from_toml`] to an equal program.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", toml_str(&self.name)));
        if let Some(n) = self.nodes {
            out.push_str(&format!("nodes = {n}\n"));
        }
        if let Some(k) = self.samples {
            out.push_str(&format!("samples = {k}\n"));
        }
        for seg in &self.cpu {
            out.push_str(&format!(
                "\n[[cpu]]\nnode = {}\nat = {}\nprocs = {}\n",
                sel_toml(seg.node),
                fmt_f64(seg.at),
                seg.procs
            ));
        }
        for seg in &self.link {
            out.push_str(&format!(
                "\n[[link]]\nnode = {}\nat = {}\n",
                sel_toml(seg.node),
                fmt_f64(seg.at)
            ));
            match seg.cap {
                Some(cap) => out.push_str(&format!("cap_mbps = {}\n", fmt_f64(cap * 8.0 / 1e6))),
                None => out.push_str("restore = true\n"),
            }
        }
        for seg in &self.net {
            out.push_str(&format!(
                "\n[[net]]\nat = {}\nlatency = {}\n",
                fmt_f64(seg.at),
                fmt_f64(seg.latency)
            ));
        }
        for fault in &self.faults {
            match *fault {
                Fault::LinkOutage { node, at, dur } => out.push_str(&format!(
                    "\n[[fault]]\nkind = \"link-outage\"\nnode = {}\nat = {}\nfor = {}\n",
                    sel_toml(node),
                    fmt_f64(at),
                    fmt_f64(dur)
                )),
                Fault::SlowdownBurst {
                    node,
                    at,
                    dur,
                    factor,
                } => out.push_str(&format!(
                    "\n[[fault]]\nkind = \"slowdown\"\nnode = {}\nat = {}\nfor = {}\nfactor = {}\n",
                    sel_toml(node),
                    fmt_f64(at),
                    fmt_f64(dur),
                    fmt_f64(factor)
                )),
                Fault::DelayedStart { rank, delay } => out.push_str(&format!(
                    "\n[[fault]]\nkind = \"delayed-start\"\nrank = {rank}\ndelay = {}\n",
                    fmt_f64(delay)
                )),
            }
        }
        for seg in &self.noise {
            match *seg {
                NoiseSeg::Cpu {
                    node,
                    procs,
                    interarrival,
                    duration,
                    until,
                } => {
                    out.push_str(&format!(
                        "\n[[noise]]\nkind = \"cpu\"\nnode = {}\nprocs = {procs}\n",
                        sel_toml(node)
                    ));
                    out.push_str(&dist_toml("interarrival", interarrival));
                    out.push_str(&dist_toml("duration", duration));
                    out.push_str(&format!("until = {}\n", fmt_f64(until)));
                }
                NoiseSeg::Latency {
                    base,
                    jitter,
                    interarrival,
                    until,
                } => {
                    out.push_str(&format!(
                        "\n[[noise]]\nkind = \"latency\"\nbase = {}\n",
                        fmt_f64(base)
                    ));
                    out.push_str(&dist_toml("jitter", jitter));
                    out.push_str(&dist_toml("interarrival", interarrival));
                    out.push_str(&format!("until = {}\n", fmt_f64(until)));
                }
            }
        }
        out
    }

    /// Serialize to JSON. Round-trips through
    /// [`crate::ScenarioSource::from_json`] to an equal program.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"name\":{}", json_str(&self.name)));
        if let Some(n) = self.nodes {
            out.push_str(&format!(",\"nodes\":{n}"));
        }
        if let Some(k) = self.samples {
            out.push_str(&format!(",\"samples\":{k}"));
        }
        if !self.cpu.is_empty() {
            out.push_str(",\"cpu\":[");
            for (i, seg) in self.cpu.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"node\":{},\"at\":{},\"procs\":{}}}",
                    sel_json(seg.node),
                    fmt_f64(seg.at),
                    seg.procs
                ));
            }
            out.push(']');
        }
        if !self.link.is_empty() {
            out.push_str(",\"link\":[");
            for (i, seg) in self.link.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"node\":{},\"at\":{}",
                    sel_json(seg.node),
                    fmt_f64(seg.at)
                ));
                match seg.cap {
                    Some(cap) => {
                        out.push_str(&format!(",\"cap_mbps\":{}}}", fmt_f64(cap * 8.0 / 1e6)))
                    }
                    None => out.push_str(",\"restore\":true}"),
                }
            }
            out.push(']');
        }
        if !self.net.is_empty() {
            out.push_str(",\"net\":[");
            for (i, seg) in self.net.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"at\":{},\"latency\":{}}}",
                    fmt_f64(seg.at),
                    fmt_f64(seg.latency)
                ));
            }
            out.push(']');
        }
        if !self.faults.is_empty() {
            out.push_str(",\"fault\":[");
            for (i, fault) in self.faults.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match *fault {
                    Fault::LinkOutage { node, at, dur } => out.push_str(&format!(
                        "{{\"kind\":\"link-outage\",\"node\":{},\"at\":{},\"for\":{}}}",
                        sel_json(node),
                        fmt_f64(at),
                        fmt_f64(dur)
                    )),
                    Fault::SlowdownBurst {
                        node,
                        at,
                        dur,
                        factor,
                    } => out.push_str(&format!(
                        "{{\"kind\":\"slowdown\",\"node\":{},\"at\":{},\"for\":{},\"factor\":{}}}",
                        sel_json(node),
                        fmt_f64(at),
                        fmt_f64(dur),
                        fmt_f64(factor)
                    )),
                    Fault::DelayedStart { rank, delay } => out.push_str(&format!(
                        "{{\"kind\":\"delayed-start\",\"rank\":{rank},\"delay\":{}}}",
                        fmt_f64(delay)
                    )),
                }
            }
            out.push(']');
        }
        if !self.noise.is_empty() {
            out.push_str(",\"noise\":[");
            for (i, seg) in self.noise.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match *seg {
                    NoiseSeg::Cpu {
                        node,
                        procs,
                        interarrival,
                        duration,
                        until,
                    } => out.push_str(&format!(
                        "{{\"kind\":\"cpu\",\"node\":{},\"procs\":{procs}{}{},\"until\":{}}}",
                        sel_json(node),
                        dist_json("interarrival", interarrival),
                        dist_json("duration", duration),
                        fmt_f64(until)
                    )),
                    NoiseSeg::Latency {
                        base,
                        jitter,
                        interarrival,
                        until,
                    } => out.push_str(&format!(
                        "{{\"kind\":\"latency\",\"base\":{}{}{},\"until\":{}}}",
                        fmt_f64(base),
                        dist_json("jitter", jitter),
                        dist_json("interarrival", interarrival),
                        fmt_f64(until)
                    )),
                }
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

impl PartialEq for ScenarioProgram {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bytes() == other.canonical_bytes()
    }
}

impl Eq for ScenarioProgram {}

impl std::hash::Hash for ScenarioProgram {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canonical_bytes().hash(state);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_bits().to_le_bytes());
}

fn put_sel(buf: &mut Vec<u8>, sel: NodeSel) {
    match sel {
        NodeSel::All => buf.push(0),
        NodeSel::Id(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
    }
}

/// Multiply every parameter of a time-valued distribution by `f`.
fn scale_dist(d: &mut NoiseDist, f: f64) {
    match d {
        NoiseDist::Exp { mean } => *mean *= f,
        NoiseDist::Uniform { min, max } => {
            *min *= f;
            *max *= f;
        }
        NoiseDist::Lognormal { p50, p90 } => {
            *p50 *= f;
            *p90 *= f;
        }
    }
}

fn put_dist(buf: &mut Vec<u8>, d: NoiseDist) {
    match d {
        NoiseDist::Exp { mean } => {
            buf.push(1);
            put_f64(buf, mean);
        }
        NoiseDist::Uniform { min, max } => {
            buf.push(2);
            put_f64(buf, min);
            put_f64(buf, max);
        }
        NoiseDist::Lognormal { p50, p90 } => {
            buf.push(3);
            put_f64(buf, p50);
            put_f64(buf, p90);
        }
    }
}

/// TOML lines for one prefixed distribution, e.g.
/// `interarrival = "exp"` + `interarrival_mean = 0.25`.
fn dist_toml(prefix: &str, d: NoiseDist) -> String {
    match d {
        NoiseDist::Exp { mean } => {
            format!("{prefix} = \"exp\"\n{prefix}_mean = {}\n", fmt_f64(mean))
        }
        NoiseDist::Uniform { min, max } => format!(
            "{prefix} = \"uniform\"\n{prefix}_min = {}\n{prefix}_max = {}\n",
            fmt_f64(min),
            fmt_f64(max)
        ),
        NoiseDist::Lognormal { p50, p90 } => format!(
            "{prefix} = \"lognormal\"\n{prefix}_p50 = {}\n{prefix}_p90 = {}\n",
            fmt_f64(p50),
            fmt_f64(p90)
        ),
    }
}

/// JSON fragment (leading comma included) for one prefixed distribution.
fn dist_json(prefix: &str, d: NoiseDist) -> String {
    match d {
        NoiseDist::Exp { mean } => {
            format!(",\"{prefix}\":\"exp\",\"{prefix}_mean\":{}", fmt_f64(mean))
        }
        NoiseDist::Uniform { min, max } => format!(
            ",\"{prefix}\":\"uniform\",\"{prefix}_min\":{},\"{prefix}_max\":{}",
            fmt_f64(min),
            fmt_f64(max)
        ),
        NoiseDist::Lognormal { p50, p90 } => format!(
            ",\"{prefix}\":\"lognormal\",\"{prefix}_p50\":{},\"{prefix}_p90\":{}",
            fmt_f64(p50),
            fmt_f64(p90)
        ),
    }
}

fn sel_toml(sel: NodeSel) -> String {
    match sel {
        NodeSel::All => "\"all\"".to_string(),
        NodeSel::Id(i) => i.to_string(),
    }
}

fn sel_json(sel: NodeSel) -> String {
    sel_toml(sel)
}

fn toml_str(s: &str) -> String {
    json_str(s)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 so the emitters round-trip exactly: Rust's shortest
/// representation re-parses to the same bits, but bare integers must
/// keep a decimal point to stay floats in the spec grammar.
fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}
