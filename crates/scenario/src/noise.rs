//! Stochastic noise models for scenario programs.
//!
//! A `[[noise]]` block describes OS-level interference as a renewal
//! process: gaps drawn from an *interarrival* distribution separate
//! bursts whose length comes from a *duration* distribution (CPU
//! noise), or resample points where the network latency is redrawn
//! (latency jitter). Sampling is driven entirely by a [`SplitMix64`]
//! generator seeded from a caller-provided `u64`, so a
//! `(program, seed)` pair expands to exactly one event list: the same
//! seed always yields the same [`Timeline`](pskel_sim::Timeline),
//! regardless of host, thread count, or how many other variants are
//! being expanded alongside it.
//!
//! Streams are split per `(block index, node)` via [`derive_seed`], so
//! adding a node to a selector or appending a block never perturbs the
//! draws of the existing streams. Block order is therefore *semantic*
//! (it picks the substream), and the canonical encoding preserves it.

use crate::program::NodeSel;
use pskel_sim::{SimDuration, TimelineAction, TimelineEvent};

/// z-score of the 90th percentile of the standard normal; turns a
/// `(p50, p90)` lognormal parameterization into `(mu, sigma)`.
const Z90: f64 = 1.281_551_565_544_600_4;

/// Smallest time step the expansion will advance by, guarding against
/// distributions that can draw a zero gap (e.g. `uniform` with
/// `min = 0`): progress is guaranteed, so expansion always terminates.
const MIN_STEP: f64 = 1e-9;

/// Cap on events one seeded expansion may produce; a `until` horizon
/// huge relative to the mean interarrival fails loudly instead of
/// allocating without bound.
pub const NOISE_EVENT_CAP: usize = 100_000;

/// The splitmix64 generator (Steele, Lea & Flood 2014): one u64 of
/// state, a Weyl increment and a 3-round finalizer. Small, fast, and —
/// the property everything here leans on — a pure function of its
/// seed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        finalize(self.state)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform in `(0, 1]`; safe as a `ln()` argument.
    fn next_open_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

fn finalize(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive an independent stream seed from a parent seed and a salt
/// (ensemble member index, block index, node id). One finalizer round
/// over a Weyl-spaced salt keeps nearby salts decorrelated.
pub fn derive_seed(seed: u64, salt: u64) -> u64 {
    finalize(seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(salt.wrapping_add(1))))
}

/// A sampling distribution over non-negative seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseDist {
    /// Exponential with the given mean (scale) — the classic memoryless
    /// interarrival model for OS daemon wakeups.
    Exp { mean: f64 },
    /// Uniform on `[min, max]`. `min == max` degenerates to a constant,
    /// which is how zero-variance differential tests pin the expansion
    /// to the deterministic schedule semantics.
    Uniform { min: f64, max: f64 },
    /// Lognormal parameterized by its median and 90th percentile —
    /// heavy-tailed durations without asking spec authors for `sigma`.
    /// `p90 == p50` degenerates to the constant `p50`.
    Lognormal { p50: f64, p90: f64 },
}

impl NoiseDist {
    /// Structural validation; mirrors the spec compiler's checks so
    /// programmatically built programs fail the same way.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            NoiseDist::Exp { mean } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(format!("exp mean {mean} must be > 0 (seconds)"));
                }
            }
            NoiseDist::Uniform { min, max } => {
                if !(min.is_finite() && min >= 0.0) {
                    return Err(format!("uniform min {min} must be >= 0 (seconds)"));
                }
                if !(max.is_finite() && max >= min) {
                    return Err(format!("uniform max {max} must be >= min {min}"));
                }
            }
            NoiseDist::Lognormal { p50, p90 } => {
                if !(p50.is_finite() && p50 > 0.0) {
                    return Err(format!("lognormal p50 {p50} must be > 0 (seconds)"));
                }
                if !(p90.is_finite() && p90 >= p50) {
                    return Err(format!("lognormal p90 {p90} must be >= p50 {p50}"));
                }
            }
        }
        Ok(())
    }

    /// True when every draw returns the same value.
    pub fn is_constant(&self) -> bool {
        match *self {
            NoiseDist::Exp { .. } => false,
            NoiseDist::Uniform { min, max } => min == max,
            NoiseDist::Lognormal { p50, p90 } => p50 == p90,
        }
    }

    /// The distribution's mean, for summaries and sanity displays.
    pub fn mean(&self) -> f64 {
        match *self {
            NoiseDist::Exp { mean } => mean,
            NoiseDist::Uniform { min, max } => 0.5 * (min + max),
            NoiseDist::Lognormal { p50, p90 } => {
                let sigma = (p90 / p50).ln() / Z90;
                p50 * (0.5 * sigma * sigma).exp()
            }
        }
    }

    /// Draw one sample. Consumes a fixed number of generator outputs
    /// per call (one for exp/uniform, two for lognormal), so streams
    /// stay aligned no matter which branch runs.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        match *self {
            NoiseDist::Exp { mean } => {
                let u = rng.next_open_f64();
                -mean * u.ln()
            }
            NoiseDist::Uniform { min, max } => min + (max - min) * rng.next_f64(),
            NoiseDist::Lognormal { p50, p90 } => {
                let u1 = rng.next_open_f64();
                let u2 = rng.next_f64();
                let sigma = (p90 / p50).ln() / Z90;
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                p50 * (sigma * z).exp()
            }
        }
    }

    /// Short human rendering, e.g. `exp(mean=0.25)`.
    pub fn describe(&self) -> String {
        match *self {
            NoiseDist::Exp { mean } => format!("exp(mean={mean})"),
            NoiseDist::Uniform { min, max } => format!("uniform({min}..{max})"),
            NoiseDist::Lognormal { p50, p90 } => format!("lognormal(p50={p50}, p90={p90})"),
        }
    }
}

/// One stochastic noise block of a scenario program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseSeg {
    /// OS-noise bursts: at each renewal point, `procs` competing
    /// processes arrive on the selected nodes and leave after a drawn
    /// duration. Lowered to paired `AddCompeting(+procs)` /
    /// `AddCompeting(-procs)` events, so overlapping bursts stack.
    Cpu {
        node: NodeSel,
        procs: i64,
        interarrival: NoiseDist,
        duration: NoiseDist,
        /// Generation horizon in seconds: no burst *starts* at or after
        /// this time (a burst may end past it). Makes the expansion a
        /// total function of `(block, seed)`.
        until: f64,
    },
    /// Latency jitter: at each renewal point the network one-way
    /// latency is redrawn as `base + jitter`; at `until` it is restored
    /// to `base`.
    Latency {
        base: f64,
        jitter: NoiseDist,
        interarrival: NoiseDist,
        until: f64,
    },
}

impl NoiseSeg {
    pub fn interarrival(&self) -> &NoiseDist {
        match self {
            NoiseSeg::Cpu { interarrival, .. } | NoiseSeg::Latency { interarrival, .. } => {
                interarrival
            }
        }
    }

    pub fn until(&self) -> f64 {
        match *self {
            NoiseSeg::Cpu { until, .. } | NoiseSeg::Latency { until, .. } => until,
        }
    }

    /// Structural validation; mirrors the spec compiler's checks.
    pub fn validate(&self) -> Result<(), String> {
        let until = self.until();
        if !(until.is_finite() && until > 0.0) {
            return Err(format!(
                "noise horizon `until` {until} must be > 0 (seconds)"
            ));
        }
        self.interarrival().validate()?;
        if let NoiseDist::Uniform { max, .. } = *self.interarrival() {
            if max <= 0.0 {
                return Err(format!(
                    "noise interarrival uniform max {max} must be > 0: a gap \
                     distribution stuck at zero cannot advance time"
                ));
            }
        }
        match *self {
            NoiseSeg::Cpu {
                procs, duration, ..
            } => {
                if procs < 1 {
                    return Err(format!("noise burst procs {procs} must be >= 1"));
                }
                duration.validate()?;
            }
            NoiseSeg::Latency { base, jitter, .. } => {
                if !(base.is_finite() && base >= 0.0) {
                    return Err(format!("noise base latency {base} must be >= 0 (seconds)"));
                }
                jitter.validate()?;
            }
        }
        Ok(())
    }

    /// One-line human rendering for `scenario show`.
    pub fn describe(&self) -> String {
        match *self {
            NoiseSeg::Cpu {
                node,
                procs,
                interarrival,
                duration,
                until,
            } => format!(
                "cpu noise on node {node}: +{procs} proc(s), gaps {} for {}, until t={until}",
                interarrival.describe(),
                duration.describe()
            ),
            NoiseSeg::Latency {
                base,
                jitter,
                interarrival,
                until,
            } => format!(
                "latency jitter: base {base}s + {} at gaps {}, until t={until}",
                jitter.describe(),
                interarrival.describe()
            ),
        }
    }
}

/// Expand noise blocks into timeline events for a `n_nodes`-node
/// cluster under `seed`. Events come out grouped by `(block, node)`
/// stream and time-ordered within each stream; the simulator's stable
/// sort by event time makes the overall schedule deterministic.
pub fn expand_noise(
    noise: &[NoiseSeg],
    n_nodes: usize,
    seed: u64,
) -> Result<Vec<TimelineEvent>, String> {
    let mut events: Vec<TimelineEvent> = Vec::new();
    for (block, seg) in noise.iter().enumerate() {
        seg.validate()?;
        let block_seed = derive_seed(seed, block as u64);
        match *seg {
            NoiseSeg::Cpu {
                node,
                procs,
                interarrival,
                duration,
                until,
            } => {
                let lanes: Vec<usize> = match node {
                    NodeSel::All => (0..n_nodes).collect(),
                    NodeSel::Id(i) => vec![i as usize],
                };
                for lane in lanes {
                    if lane >= n_nodes {
                        return Err(format!(
                            "noise block {block}: node id {lane} out of range for \
                             {n_nodes}-node cluster"
                        ));
                    }
                    let mut rng = SplitMix64::new(derive_seed(block_seed, lane as u64));
                    let mut t = 0.0f64;
                    loop {
                        t += interarrival.sample(&mut rng).max(MIN_STEP);
                        if t >= until {
                            break;
                        }
                        let dur = duration.sample(&mut rng).max(0.0);
                        push_event(&mut events, t, lane, TimelineAction::AddCompeting(procs))?;
                        push_event(
                            &mut events,
                            t + dur,
                            lane,
                            TimelineAction::AddCompeting(-procs),
                        )?;
                    }
                }
            }
            NoiseSeg::Latency {
                base,
                jitter,
                interarrival,
                until,
            } => {
                let mut rng = SplitMix64::new(derive_seed(block_seed, 0));
                let mut t = 0.0f64;
                let mut jittered = false;
                loop {
                    t += interarrival.sample(&mut rng).max(MIN_STEP);
                    if t >= until {
                        break;
                    }
                    let lat = (base + jitter.sample(&mut rng)).max(0.0);
                    push_event(
                        &mut events,
                        t,
                        0,
                        TimelineAction::SetLatency(SimDuration::from_secs_f64(lat)),
                    )?;
                    jittered = true;
                }
                if jittered {
                    // Restore the block's baseline so the noise window
                    // is self-contained past its horizon.
                    push_event(
                        &mut events,
                        until,
                        0,
                        TimelineAction::SetLatency(SimDuration::from_secs_f64(base)),
                    )?;
                }
            }
        }
    }
    Ok(events)
}

fn push_event(
    events: &mut Vec<TimelineEvent>,
    at: f64,
    node: usize,
    action: TimelineAction,
) -> Result<(), String> {
    if events.len() >= NOISE_EVENT_CAP {
        return Err(format!(
            "noise expansion exceeds {NOISE_EVENT_CAP} events; shrink `until` or \
             raise the interarrival scale"
        ));
    }
    events.push(TimelineEvent {
        at: SimDuration::from_secs_f64(at),
        node,
        action,
        fault: false,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_a_pure_function_of_its_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
            let o = rng.next_open_f64();
            assert!(o > 0.0 && o <= 1.0, "{o}");
        }
    }

    #[test]
    fn derived_seeds_differ_per_salt() {
        let s0 = derive_seed(0x5eed, 0);
        let s1 = derive_seed(0x5eed, 1);
        let s2 = derive_seed(0x5eed, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_eq!(s0, derive_seed(0x5eed, 0));
    }

    #[test]
    fn constant_distributions_ignore_the_stream() {
        let d = NoiseDist::Uniform { min: 0.5, max: 0.5 };
        assert!(d.is_constant());
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(999);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut a), 0.5);
            assert_eq!(d.sample(&mut b), 0.5);
        }
        let ln = NoiseDist::Lognormal { p50: 2.0, p90: 2.0 };
        assert!(ln.is_constant());
        let mut c = SplitMix64::new(3);
        for _ in 0..50 {
            assert_eq!(ln.sample(&mut c), 2.0);
        }
    }

    #[test]
    fn samples_are_nonnegative_and_roughly_centered() {
        let mut rng = SplitMix64::new(0xfeed);
        for d in [
            NoiseDist::Exp { mean: 0.3 },
            NoiseDist::Uniform { min: 0.1, max: 0.5 },
            NoiseDist::Lognormal { p50: 0.3, p90: 0.6 },
        ] {
            let n = 4000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                assert!(x >= 0.0 && x.is_finite(), "{x} from {d:?}");
                sum += x;
            }
            let emp = sum / n as f64;
            let want = d.mean();
            assert!(
                (emp - want).abs() < 0.25 * want + 0.05,
                "empirical mean {emp} far from {want} for {d:?}"
            );
        }
    }

    #[test]
    fn dist_validation_rejects_bad_scales() {
        assert!(NoiseDist::Exp { mean: -1.0 }.validate().is_err());
        assert!(NoiseDist::Exp { mean: 0.0 }.validate().is_err());
        assert!(NoiseDist::Uniform {
            min: -0.1,
            max: 1.0
        }
        .validate()
        .is_err());
        assert!(NoiseDist::Uniform { min: 2.0, max: 1.0 }
            .validate()
            .is_err());
        assert!(NoiseDist::Lognormal { p50: 1.0, p90: 0.5 }
            .validate()
            .is_err());
        assert!(NoiseDist::Lognormal { p50: 0.0, p90: 1.0 }
            .validate()
            .is_err());
        assert!(NoiseDist::Lognormal { p50: 1.0, p90: 1.5 }
            .validate()
            .is_ok());
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        let noise = [NoiseSeg::Cpu {
            node: NodeSel::All,
            procs: 1,
            interarrival: NoiseDist::Exp { mean: 0.2 },
            duration: NoiseDist::Lognormal {
                p50: 0.01,
                p90: 0.05,
            },
            until: 5.0,
        }];
        let a = expand_noise(&noise, 4, 0x5eed).unwrap();
        let b = expand_noise(&noise, 4, 0x5eed).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = expand_noise(&noise, 4, 0x5eee).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn expansion_streams_are_stable_per_node() {
        // Narrowing the selector from `all` to one node reproduces that
        // node's stream exactly — streams are split per (block, node).
        let wide = [NoiseSeg::Cpu {
            node: NodeSel::All,
            procs: 2,
            interarrival: NoiseDist::Exp { mean: 0.3 },
            duration: NoiseDist::Uniform {
                min: 0.01,
                max: 0.02,
            },
            until: 4.0,
        }];
        let narrow = [NoiseSeg::Cpu {
            node: NodeSel::Id(2),
            procs: 2,
            interarrival: NoiseDist::Exp { mean: 0.3 },
            duration: NoiseDist::Uniform {
                min: 0.01,
                max: 0.02,
            },
            until: 4.0,
        }];
        let all = expand_noise(&wide, 4, 9)
            .unwrap()
            .into_iter()
            .filter(|e| e.node == 2)
            .collect::<Vec<_>>();
        let one = expand_noise(&narrow, 4, 9).unwrap();
        assert_eq!(all, one);
    }

    #[test]
    fn bursts_never_start_past_the_horizon() {
        let noise = [NoiseSeg::Cpu {
            node: NodeSel::Id(0),
            procs: 1,
            interarrival: NoiseDist::Uniform { min: 0.4, max: 0.4 },
            duration: NoiseDist::Uniform { min: 1.0, max: 1.0 },
            until: 2.0,
        }];
        let events = expand_noise(&noise, 1, 1).unwrap();
        // Starts at 0.4, 0.8, 1.2, 1.6 — four bursts, eight events.
        assert_eq!(events.len(), 8);
        for pair in events.chunks(2) {
            assert!(pair[0].at.as_secs_f64() < 2.0);
            assert!(matches!(pair[0].action, TimelineAction::AddCompeting(1)));
            assert!(matches!(pair[1].action, TimelineAction::AddCompeting(-1)));
        }
    }

    #[test]
    fn latency_jitter_restores_the_baseline() {
        let noise = [NoiseSeg::Latency {
            base: 0.001,
            jitter: NoiseDist::Exp { mean: 0.002 },
            interarrival: NoiseDist::Uniform { min: 0.5, max: 0.5 },
            until: 2.0,
        }];
        let events = expand_noise(&noise, 2, 77).unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.at.as_secs_f64(), 2.0);
        assert!(matches!(last.action, TimelineAction::SetLatency(d) if d.as_secs_f64() == 0.001));
    }

    #[test]
    fn runaway_expansion_fails_loudly() {
        let noise = [NoiseSeg::Cpu {
            node: NodeSel::Id(0),
            procs: 1,
            interarrival: NoiseDist::Uniform {
                min: 0.0,
                max: 1e-12,
            },
            duration: NoiseDist::Uniform { min: 0.0, max: 0.0 },
            until: 10.0,
        }];
        // min step 1e-9 over a 10 s horizon wants ~1e10 events; the cap
        // turns that into an error instead of an allocation storm.
        assert!(expand_noise(&noise, 1, 5).unwrap_err().contains("events"));
    }

    #[test]
    fn zero_until_is_rejected() {
        let seg = NoiseSeg::Cpu {
            node: NodeSel::All,
            procs: 1,
            interarrival: NoiseDist::Exp { mean: 0.1 },
            duration: NoiseDist::Exp { mean: 0.1 },
            until: 0.0,
        };
        assert!(seg.validate().is_err());
    }
}
