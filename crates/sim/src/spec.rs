//! Static description of the simulated cluster: nodes, CPUs, NICs, and the
//! knobs the paper's resource-sharing scenarios turn (competing compute
//! processes, per-link bandwidth caps), plus an optional [`Timeline`] of
//! scheduled mid-run resource changes (time-varying contention and
//! fault injection).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Bytes per second of a Gigabit Ethernet NIC (1 Gb/s).
pub const GIGABIT_BPS: f64 = 1.0e9 / 8.0;

/// Bytes per second of a 10 Mb/s throttled link (the paper's `iproute2` cap).
pub const THROTTLED_10MBPS: f64 = 10.0e6 / 8.0;

/// A scheduled change to one resource, applied when virtual time reaches
/// `at`. Events at `t = 0` are not allowed: an initial condition belongs in
/// the static spec (fold it into the node fields), which keeps a constant
/// timeline-free scenario bit-identical to the plain spec it describes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Offset from simulation start (strictly positive).
    pub at: SimDuration,
    /// Node the action applies to (ignored by network-global actions,
    /// but must still name a valid node).
    pub node: usize,
    /// What changes.
    pub action: TimelineAction,
    /// True if this event models an injected fault (outage, brownout);
    /// counted separately in the simulator counters.
    pub fault: bool,
}

/// The resource mutation carried by a [`TimelineEvent`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TimelineAction {
    /// Add (or with a negative delta remove, saturating at zero) competing
    /// compute-intensive processes on the node.
    AddCompeting(i64),
    /// Replace the node's link cap: `Some(bps)` throttles (0.0 is a full
    /// outage — flows through the node stall), `None` removes the cap.
    SetLinkCap(Option<f64>),
    /// Multiply the node's *base* CPU speed by this factor (1.0 restores).
    /// Factors compose against the spec's speed, not the previous factor.
    SetSpeedFactor(f64),
    /// Replace the network-wide inter-node wire latency.
    SetLatency(SimDuration),
}

/// Hold a rank's first action until `delay` has elapsed (a delayed rank
/// start: the process was slow to launch).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StartDelay {
    pub rank: usize,
    pub delay: SimDuration,
}

/// Scheduled mid-run resource changes and rank start delays. An empty
/// timeline leaves the engine's behaviour — and its reports — exactly as
/// they were without one.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Resource change events; applied in `(at, insertion order)` order.
    pub events: Vec<TimelineEvent>,
    /// Per-rank start delays (at most one per rank).
    pub start_delays: Vec<StartDelay>,
}

impl Timeline {
    /// True if the timeline schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.start_delays.is_empty()
    }

    /// Absolute virtual time of an event offset.
    pub(crate) fn event_time(ev: &TimelineEvent) -> SimTime {
        SimTime(ev.at.as_nanos())
    }

    /// Validate against a cluster of `n_nodes`; panics with a descriptive
    /// message on a bad timeline (same convention as spec validation).
    pub fn validate(&self, n_nodes: usize) {
        for (i, ev) in self.events.iter().enumerate() {
            assert!(
                !ev.at.is_zero(),
                "timeline event {i}: events at t=0 must be folded into the static spec"
            );
            assert!(
                ev.node < n_nodes,
                "timeline event {i}: node {} out of range (cluster has {n_nodes})",
                ev.node
            );
            match &ev.action {
                TimelineAction::AddCompeting(_) => {}
                TimelineAction::SetLinkCap(Some(cap)) => {
                    assert!(
                        cap.is_finite() && *cap >= 0.0,
                        "timeline event {i}: link cap must be finite and >= 0, got {cap}"
                    );
                }
                TimelineAction::SetLinkCap(None) => {}
                TimelineAction::SetSpeedFactor(f) => {
                    assert!(
                        f.is_finite() && *f > 0.0,
                        "timeline event {i}: speed factor must be positive, got {f}"
                    );
                }
                TimelineAction::SetLatency(_) => {}
            }
        }
        let mut ranks: Vec<usize> = self.start_delays.iter().map(|d| d.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert!(
            ranks.len() == self.start_delays.len(),
            "timeline start delays list a rank more than once"
        );
        for d in &self.start_delays {
            assert!(
                !d.delay.is_zero(),
                "timeline start delay for rank {}: zero delays must be omitted",
                d.rank
            );
        }
    }
}

/// Description of one compute node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of CPUs (the paper's testbed nodes are dual-CPU).
    pub cpus: u32,
    /// Relative CPU speed multiplier (1.0 = the reference 1.7 GHz Xeon).
    pub speed: f64,
    /// Number of competing compute-intensive processes pinned to this node
    /// (scenario knob; each behaves as an infinite-work CPU task).
    pub competing_processes: u32,
    /// NIC egress/ingress capacity in bytes per second.
    pub link_bandwidth: f64,
    /// Optional hard cap on the node's link (the `iproute2` throttle),
    /// bytes per second. Applies to both directions, like shaping the cable.
    pub link_cap: Option<f64>,
}

impl NodeSpec {
    /// A reference testbed node: dual CPU, Gigabit Ethernet, unloaded.
    pub fn reference() -> NodeSpec {
        NodeSpec {
            cpus: 2,
            speed: 1.0,
            competing_processes: 0,
            link_bandwidth: GIGABIT_BPS,
            link_cap: None,
        }
    }

    /// Effective link capacity after any throttle, bytes per second.
    pub fn effective_bandwidth(&self) -> f64 {
        match self.link_cap {
            Some(cap) => cap.min(self.link_bandwidth),
            None => self.link_bandwidth,
        }
    }
}

/// Network-wide parameters. The testbed is a full crossbar switch, so the
/// only shared resources are the per-node NICs; the switch fabric is
/// contention-free.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// One-way wire latency between two distinct nodes.
    pub latency: SimDuration,
    /// Latency for messages a rank sends to a co-located rank (shared memory).
    pub intra_node_latency: SimDuration,
    /// Messages at most this many bytes use the eager protocol (sender
    /// buffers and returns); larger messages rendezvous.
    pub eager_threshold: u64,
    /// CPU cost of entering the MPI library, charged per call (software
    /// stack: argument checking, buffer management, memcpy for eager sends).
    pub sw_overhead: SimDuration,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            // ~55us end-to-end small-message latency is typical for
            // MPICH-over-GigE of the paper's era.
            latency: SimDuration::from_micros(55),
            intra_node_latency: SimDuration::from_micros(2),
            eager_threshold: 64 * 1024,
            sw_overhead: SimDuration::from_micros(5),
        }
    }
}

/// Full description of the simulated cluster.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub nodes: Vec<NodeSpec>,
    pub net: NetSpec,
    /// Scheduled mid-run resource changes; empty for a static cluster.
    pub timeline: Timeline,
}

impl ClusterSpec {
    /// A cluster of `n` reference nodes (dual-CPU Xeon, GigE, crossbar),
    /// mirroring the paper's testbed.
    pub fn homogeneous(n: usize) -> ClusterSpec {
        ClusterSpec {
            nodes: vec![NodeSpec::reference(); n],
            net: NetSpec::default(),
            timeline: Timeline::default(),
        }
    }

    /// The paper's experimental testbed slice: 4 dual-CPU nodes.
    pub fn paper_testbed() -> ClusterSpec {
        ClusterSpec::homogeneous(4)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mutable access to one node's spec (for scenario knobs).
    pub fn node_mut(&mut self, i: usize) -> &mut NodeSpec {
        &mut self.nodes[i]
    }

    /// Add `k` competing compute processes to node `i`.
    pub fn with_competing_processes(mut self, i: usize, k: u32) -> ClusterSpec {
        self.nodes[i].competing_processes += k;
        self
    }

    /// Throttle node `i`'s link to `bps` bytes per second.
    pub fn with_link_cap(mut self, i: usize, bps: f64) -> ClusterSpec {
        self.nodes[i].link_cap = Some(bps);
        self
    }

    /// Validate invariants; panics with a descriptive message on a bad spec.
    pub fn validate(&self) {
        assert!(
            !self.nodes.is_empty(),
            "cluster must have at least one node"
        );
        for (i, n) in self.nodes.iter().enumerate() {
            assert!(n.cpus >= 1, "node {i}: must have at least one CPU");
            assert!(
                n.speed.is_finite() && n.speed > 0.0,
                "node {i}: speed must be positive, got {}",
                n.speed
            );
            assert!(
                n.link_bandwidth.is_finite() && n.link_bandwidth > 0.0,
                "node {i}: link bandwidth must be positive"
            );
            if let Some(cap) = n.link_cap {
                assert!(
                    cap.is_finite() && cap > 0.0,
                    "node {i}: link cap must be positive, got {cap}"
                );
            }
        }
        self.timeline.validate(self.nodes.len());
    }
}

/// Mapping from rank to node index.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement(pub Vec<usize>);

impl Placement {
    /// Rank `r` on node `r % n_nodes` — one rank per node when
    /// `n_ranks == n_nodes` (the paper's configuration).
    pub fn round_robin(n_ranks: usize, n_nodes: usize) -> Placement {
        assert!(n_nodes > 0, "placement requires at least one node");
        Placement((0..n_ranks).map(|r| r % n_nodes).collect())
    }

    /// Ranks packed onto nodes: ranks 0..k on node 0, etc.
    pub fn blocked(n_ranks: usize, n_nodes: usize) -> Placement {
        assert!(n_nodes > 0, "placement requires at least one node");
        let per = n_ranks.div_ceil(n_nodes);
        Placement((0..n_ranks).map(|r| (r / per).min(n_nodes - 1)).collect())
    }

    /// Number of ranks placed.
    pub fn n_ranks(&self) -> usize {
        self.0.len()
    }

    /// Node hosting rank `r`.
    pub fn node_of(&self, r: usize) -> usize {
        self.0[r]
    }

    /// Panics unless every rank maps to a node inside the cluster.
    pub fn validate(&self, cluster: &ClusterSpec) {
        for (r, &n) in self.0.iter().enumerate() {
            assert!(
                n < cluster.len(),
                "rank {r} placed on node {n}, but cluster has only {} nodes",
                cluster.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_matches_testbed() {
        let n = NodeSpec::reference();
        assert_eq!(n.cpus, 2);
        assert_eq!(n.competing_processes, 0);
        assert!((n.link_bandwidth - 1.25e8).abs() < 1.0);
    }

    #[test]
    fn effective_bandwidth_honours_cap() {
        let mut n = NodeSpec::reference();
        assert_eq!(n.effective_bandwidth(), n.link_bandwidth);
        n.link_cap = Some(THROTTLED_10MBPS);
        assert!((n.effective_bandwidth() - 1.25e6).abs() < 1.0);
    }

    #[test]
    fn builder_knobs_apply() {
        let c = ClusterSpec::paper_testbed()
            .with_competing_processes(0, 2)
            .with_link_cap(1, THROTTLED_10MBPS);
        assert_eq!(c.nodes[0].competing_processes, 2);
        assert_eq!(c.nodes[1].link_cap, Some(THROTTLED_10MBPS));
        c.validate();
    }

    #[test]
    fn round_robin_is_one_rank_per_node_when_equal() {
        let p = Placement::round_robin(4, 4);
        assert_eq!(p.0, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_wraps() {
        let p = Placement::round_robin(6, 4);
        assert_eq!(p.0, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn blocked_packs() {
        let p = Placement::blocked(4, 2);
        assert_eq!(p.0, vec![0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cluster has only")]
    fn placement_validation_catches_overflow() {
        Placement(vec![0, 7]).validate(&ClusterSpec::homogeneous(2));
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn spec_validation_catches_zero_cpus() {
        let mut c = ClusterSpec::homogeneous(1);
        c.nodes[0].cpus = 0;
        c.validate();
    }

    #[test]
    fn paper_testbed_has_four_nodes() {
        assert_eq!(ClusterSpec::paper_testbed().len(), 4);
    }
}
