//! Per-node CPU model: egalitarian processor sharing.
//!
//! A node with `c` CPUs and `n` runnable tasks gives every task a CPU rate of
//! `min(1, c/n) * speed` — the behaviour of a fair kernel scheduler with
//! compute-bound processes at equal priority. Competing compute-intensive
//! processes (the paper's load generators) are modelled as permanently
//! runnable tasks with infinite work.
//!
//! On the paper's dual-CPU nodes this reproduces the observation that *two*
//! competing processes are needed to contend with one application rank:
//! 1 rank + 2 competitors = 3 runnable on 2 CPUs → the rank runs at 2/3 speed.

use crate::spec::NodeSpec;
use crate::time::SimDuration;

/// Work below this many CPU-seconds is considered finished (≪ 1 ns of time).
const WORK_EPS: f64 = 1e-13;

/// A compute task in progress on a node. `owner` is an engine-level op id.
#[derive(Clone, Debug)]
pub struct CpuTask {
    pub owner: u64,
    /// CPU-seconds of work still to do.
    pub remaining: f64,
}

/// Dynamic CPU state of one node.
#[derive(Clone, Debug)]
pub struct NodeCpu {
    cpus: u32,
    speed: f64,
    competing: u32,
    tasks: Vec<CpuTask>,
    /// Accumulated CPU-seconds delivered to application tasks (stats).
    pub delivered: f64,
}

impl NodeCpu {
    pub fn new(spec: &NodeSpec) -> NodeCpu {
        NodeCpu {
            cpus: spec.cpus,
            speed: spec.speed,
            competing: spec.competing_processes,
            tasks: Vec::new(),
            delivered: 0.0,
        }
    }

    /// Per-task CPU rate under the current load (CPU-seconds per second).
    pub fn rate(&self) -> f64 {
        let runnable = self.tasks.len() as u32 + self.competing;
        if runnable == 0 {
            return 0.0;
        }
        (self.cpus as f64 / runnable as f64).min(1.0) * self.speed
    }

    /// Number of application tasks currently computing.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Current number of competing compute-intensive processes.
    pub fn competing(&self) -> u32 {
        self.competing
    }

    /// Replace the number of competing processes (timeline events). Takes
    /// effect from the next settle: in-progress work already settled at the
    /// old rate is unaffected.
    pub fn set_competing(&mut self, competing: u32) {
        self.competing = competing;
    }

    /// Current CPU speed multiplier.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Replace the CPU speed multiplier (timeline slowdown bursts).
    pub fn set_speed(&mut self, speed: f64) {
        assert!(
            speed.is_finite() && speed > 0.0,
            "node speed must be positive, got {speed}"
        );
        self.speed = speed;
    }

    /// Begin a compute task of `work` CPU-seconds owned by op `owner`.
    pub fn start_task(&mut self, owner: u64, work: f64) {
        assert!(
            work.is_finite() && work >= 0.0,
            "compute work must be finite and non-negative, got {work}"
        );
        self.tasks.push(CpuTask {
            owner,
            remaining: work,
        });
    }

    /// Advance all tasks by `dt` of wall (virtual) time at the current rate.
    pub fn settle(&mut self, dt: SimDuration) {
        if dt.is_zero() || self.tasks.is_empty() {
            return;
        }
        let done = self.rate() * dt.as_secs_f64();
        for t in &mut self.tasks {
            let step = done.min(t.remaining);
            t.remaining -= step;
            self.delivered += step;
        }
    }

    /// Virtual time until the next task completes at the current rate, or
    /// `None` if no task is running.
    pub fn next_completion(&self) -> Option<SimDuration> {
        let rate = self.rate();
        let min_left = self
            .tasks
            .iter()
            .map(|t| t.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_left.is_finite() {
            return None;
        }
        if min_left <= WORK_EPS {
            return Some(SimDuration::ZERO);
        }
        debug_assert!(rate > 0.0, "tasks present but rate is zero");
        // Round up so the event never fires before the work is truly done.
        let secs = min_left / rate;
        let nanos = (secs * 1e9).ceil();
        Some(SimDuration((nanos as u64).max(1)))
    }

    /// Remove and return the owners of all completed tasks.
    pub fn take_completed(&mut self) -> Vec<u64> {
        let mut done = Vec::new();
        self.tasks.retain(|t| {
            if t.remaining <= WORK_EPS {
                done.push(t.owner);
                false
            } else {
                true
            }
        });
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    fn node(cpus: u32, competing: u32) -> NodeCpu {
        let mut s = NodeSpec::reference();
        s.cpus = cpus;
        s.competing_processes = competing;
        NodeCpu::new(&s)
    }

    #[test]
    fn lone_task_runs_at_full_speed() {
        let mut n = node(2, 0);
        n.start_task(1, 1.0);
        assert_eq!(n.rate(), 1.0);
        assert_eq!(n.next_completion(), Some(SimDuration::from_secs_f64(1.0)));
    }

    #[test]
    fn one_competitor_on_dual_cpu_does_not_slow_one_rank() {
        // 1 rank + 1 competitor = 2 runnable on 2 CPUs → full speed.
        let mut n = node(2, 1);
        n.start_task(1, 1.0);
        assert_eq!(n.rate(), 1.0);
    }

    #[test]
    fn two_competitors_on_dual_cpu_give_two_thirds() {
        // The paper's scenario: 3 runnable on 2 CPUs → 2/3 rate each.
        let mut n = node(2, 2);
        n.start_task(1, 2.0);
        assert!((n.rate() - 2.0 / 3.0).abs() < 1e-12);
        let dt = n.next_completion().unwrap();
        assert!((dt.as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn settle_consumes_work_and_completes() {
        let mut n = node(1, 0);
        n.start_task(7, 0.5);
        n.settle(SimDuration::from_secs_f64(0.25));
        assert!(n.take_completed().is_empty());
        n.settle(SimDuration::from_secs_f64(0.25));
        assert_eq!(n.take_completed(), vec![7]);
        assert_eq!(n.n_tasks(), 0);
        assert!((n.delivered - 0.5).abs() < 1e-9);
    }

    #[test]
    fn two_tasks_on_one_cpu_halve_rate() {
        let mut n = node(1, 0);
        n.start_task(1, 1.0);
        n.start_task(2, 2.0);
        assert_eq!(n.rate(), 0.5);
        // First completion after 2s (1.0 work at 0.5 rate).
        let dt = n.next_completion().unwrap();
        assert!((dt.as_secs_f64() - 2.0).abs() < 1e-6);
        n.settle(dt);
        assert_eq!(n.take_completed(), vec![1]);
        // Remaining task speeds back up to rate 1.0 with 1.0 work left.
        assert!((n.next_completion().unwrap().as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut n = node(2, 0);
        n.start_task(3, 0.0);
        assert_eq!(n.next_completion(), Some(SimDuration::ZERO));
        assert_eq!(n.take_completed(), vec![3]);
    }

    #[test]
    fn speed_scales_rate() {
        let mut s = NodeSpec::reference();
        s.cpus = 1;
        s.speed = 2.0;
        let mut n = NodeCpu::new(&s);
        n.start_task(1, 1.0);
        assert_eq!(n.rate(), 2.0);
        assert!((n.next_completion().unwrap().as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn idle_node_has_no_completion() {
        // Competing processes alone never generate completion events.
        let n = node(2, 2);
        assert_eq!(n.next_completion(), None);
        assert_eq!(n.n_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_rejected() {
        node(1, 0).start_task(1, -1.0);
    }
}
