//! Process-wide simulator activity counters.
//!
//! Every completed simulation records which execution path it took
//! (inline script fast path vs thread-per-rank), how many engine events
//! it processed and how long it took on the wall clock. `pskel serve`
//! exports these through `/metrics` and the `--selftest` summary; the
//! `pskel bench sim` harness complements them with controlled A/B
//! timings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static THREADED_RUNS: AtomicU64 = AtomicU64::new(0);
static SCRIPT_RUNS: AtomicU64 = AtomicU64::new(0);
static THREADED_EVENTS: AtomicU64 = AtomicU64::new(0);
static SCRIPT_EVENTS: AtomicU64 = AtomicU64::new(0);
static THREADED_NANOS: AtomicU64 = AtomicU64::new(0);
static SCRIPT_NANOS: AtomicU64 = AtomicU64::new(0);
static TIMELINE_EVENTS: AtomicU64 = AtomicU64::new(0);
static FAULTS_INJECTED: AtomicU64 = AtomicU64::new(0);
static PARALLEL_RUNS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_EVENTS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_NANOS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_SLICES: AtomicU64 = AtomicU64::new(0);
static PARALLEL_MERGE_EVENTS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_WORKER_BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_WORKER_WALL_NANOS: AtomicU64 = AtomicU64::new(0);
static SWEEP_RUNS: AtomicU64 = AtomicU64::new(0);
static SWEEP_POINTS: AtomicU64 = AtomicU64::new(0);
static SWEEP_FORKS: AtomicU64 = AtomicU64::new(0);
static SWEEP_DEDUP_HITS: AtomicU64 = AtomicU64::new(0);
static SWEEP_EXECUTED_EVENTS: AtomicU64 = AtomicU64::new(0);
static SWEEP_SERIAL_EVENTS: AtomicU64 = AtomicU64::new(0);
static SWEEP_NANOS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the global simulator counters. Monotonic over
/// the life of the process; consumers wanting rates over an interval
/// should difference two snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Completed thread-per-rank simulations.
    pub threaded_runs: u64,
    /// Completed script fast-path simulations.
    pub script_runs: u64,
    /// Engine events processed on the threaded path.
    pub threaded_events: u64,
    /// Engine events processed on the script path.
    pub script_events: u64,
    /// Wall nanoseconds spent inside threaded runs.
    pub threaded_nanos: u64,
    /// Wall nanoseconds spent inside script runs.
    pub script_nanos: u64,
    /// Scenario timeline events fired by the engine (schedule changes
    /// applied mid-run, faults included).
    pub timeline_events: u64,
    /// Subset of timeline events flagged as injected faults.
    pub faults_injected: u64,
    /// Completed time-sliced parallel-path simulations.
    pub parallel_runs: u64,
    /// Engine events processed on the parallel path.
    pub parallel_events: u64,
    /// Wall nanoseconds spent inside parallel runs.
    pub parallel_nanos: u64,
    /// Slices stepped by the parallel path (max-min rate solves; one per
    /// window of advances with an unchanged flow set / link capacities).
    pub parallel_slices: u64,
    /// Cross-node events merged at slice boundaries (drained flows plus
    /// timeline actions).
    pub parallel_merge_events: u64,
    /// Nanoseconds spawned workers spent generating rank requests.
    pub parallel_worker_busy_nanos: u64,
    /// Nanoseconds of spawned-worker capacity (wall time × workers) over
    /// the same runs; busy / wall is the pool utilization.
    pub parallel_worker_wall_nanos: u64,
    /// Completed forked sweep executions (one per point group).
    pub sweep_runs: u64,
    /// Sweep points answered by forked execution.
    pub sweep_points: u64,
    /// Divergence-tree forks taken (engine snapshots cloned).
    pub sweep_forks: u64,
    /// Points answered by cloning another point's report (identical
    /// compiled timelines — no extra simulation).
    pub sweep_dedup_hits: u64,
    /// Engine events actually executed across sweep runs (shared
    /// prefixes counted once).
    pub sweep_executed_events: u64,
    /// Engine events the same points would have cost run serially
    /// (per-point report totals). `1 - executed/serial` is the
    /// prefix-reuse fraction.
    pub sweep_serial_events: u64,
    /// Wall nanoseconds spent inside forked sweep runs.
    pub sweep_nanos: u64,
}

impl SimCounters {
    pub fn total_runs(&self) -> u64 {
        self.threaded_runs + self.script_runs + self.parallel_runs
    }

    pub fn total_events(&self) -> u64 {
        self.threaded_events + self.script_events + self.parallel_events
    }

    /// Simulated events per wall second on the script fast path.
    pub fn script_events_per_sec(&self) -> f64 {
        rate(self.script_events, self.script_nanos)
    }

    /// Simulated events per wall second on the threaded path.
    pub fn threaded_events_per_sec(&self) -> f64 {
        rate(self.threaded_events, self.threaded_nanos)
    }

    /// Simulated events per wall second on the parallel path.
    pub fn parallel_events_per_sec(&self) -> f64 {
        rate(self.parallel_events, self.parallel_nanos)
    }

    /// Fraction of spawned-worker capacity spent doing useful request
    /// generation on the parallel path, in [0, 1]. Zero when no run ever
    /// fanned out (single-core hosts generate requests inline).
    pub fn parallel_worker_utilization(&self) -> f64 {
        if self.parallel_worker_wall_nanos == 0 {
            0.0
        } else {
            self.parallel_worker_busy_nanos as f64 / self.parallel_worker_wall_nanos as f64
        }
    }

    /// Fraction of serial-equivalent engine events sweep runs avoided by
    /// sharing prefixes and deduping identical points, in [0, 1]. Zero
    /// when no forked sweep has run.
    pub fn sweep_reuse_fraction(&self) -> f64 {
        if self.sweep_serial_events == 0 {
            0.0
        } else {
            1.0 - self.sweep_executed_events as f64 / self.sweep_serial_events as f64
        }
    }

    /// Simulated events per wall second across all paths.
    pub fn events_per_sec(&self) -> f64 {
        rate(
            self.total_events(),
            self.threaded_nanos + self.script_nanos + self.parallel_nanos,
        )
    }
}

fn rate(events: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        events as f64 * 1e9 / nanos as f64
    }
}

/// Read the current counter values.
pub fn snapshot() -> SimCounters {
    SimCounters {
        threaded_runs: THREADED_RUNS.load(Ordering::Relaxed),
        script_runs: SCRIPT_RUNS.load(Ordering::Relaxed),
        threaded_events: THREADED_EVENTS.load(Ordering::Relaxed),
        script_events: SCRIPT_EVENTS.load(Ordering::Relaxed),
        threaded_nanos: THREADED_NANOS.load(Ordering::Relaxed),
        script_nanos: SCRIPT_NANOS.load(Ordering::Relaxed),
        timeline_events: TIMELINE_EVENTS.load(Ordering::Relaxed),
        faults_injected: FAULTS_INJECTED.load(Ordering::Relaxed),
        parallel_runs: PARALLEL_RUNS.load(Ordering::Relaxed),
        parallel_events: PARALLEL_EVENTS.load(Ordering::Relaxed),
        parallel_nanos: PARALLEL_NANOS.load(Ordering::Relaxed),
        parallel_slices: PARALLEL_SLICES.load(Ordering::Relaxed),
        parallel_merge_events: PARALLEL_MERGE_EVENTS.load(Ordering::Relaxed),
        parallel_worker_busy_nanos: PARALLEL_WORKER_BUSY_NANOS.load(Ordering::Relaxed),
        parallel_worker_wall_nanos: PARALLEL_WORKER_WALL_NANOS.load(Ordering::Relaxed),
        sweep_runs: SWEEP_RUNS.load(Ordering::Relaxed),
        sweep_points: SWEEP_POINTS.load(Ordering::Relaxed),
        sweep_forks: SWEEP_FORKS.load(Ordering::Relaxed),
        sweep_dedup_hits: SWEEP_DEDUP_HITS.load(Ordering::Relaxed),
        sweep_executed_events: SWEEP_EXECUTED_EVENTS.load(Ordering::Relaxed),
        sweep_serial_events: SWEEP_SERIAL_EVENTS.load(Ordering::Relaxed),
        sweep_nanos: SWEEP_NANOS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_timeline_event(fault: bool) {
    TIMELINE_EVENTS.fetch_add(1, Ordering::Relaxed);
    if fault {
        FAULTS_INJECTED.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn record_threaded(events: u64, elapsed: Duration) {
    THREADED_RUNS.fetch_add(1, Ordering::Relaxed);
    THREADED_EVENTS.fetch_add(events, Ordering::Relaxed);
    THREADED_NANOS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_script(events: u64, elapsed: Duration) {
    SCRIPT_RUNS.fetch_add(1, Ordering::Relaxed);
    SCRIPT_EVENTS.fetch_add(events, Ordering::Relaxed);
    SCRIPT_NANOS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn record_sweep(
    points: u64,
    forks: u64,
    dedup_hits: u64,
    executed_events: u64,
    serial_events: u64,
    elapsed: Duration,
) {
    SWEEP_RUNS.fetch_add(1, Ordering::Relaxed);
    SWEEP_POINTS.fetch_add(points, Ordering::Relaxed);
    SWEEP_FORKS.fetch_add(forks, Ordering::Relaxed);
    SWEEP_DEDUP_HITS.fetch_add(dedup_hits, Ordering::Relaxed);
    SWEEP_EXECUTED_EVENTS.fetch_add(executed_events, Ordering::Relaxed);
    SWEEP_SERIAL_EVENTS.fetch_add(serial_events, Ordering::Relaxed);
    SWEEP_NANOS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_parallel(
    events: u64,
    elapsed: Duration,
    slices: u64,
    merge_events: u64,
    worker_busy_nanos: u64,
    worker_wall_nanos: u64,
) {
    PARALLEL_RUNS.fetch_add(1, Ordering::Relaxed);
    PARALLEL_EVENTS.fetch_add(events, Ordering::Relaxed);
    PARALLEL_NANOS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    PARALLEL_SLICES.fetch_add(slices, Ordering::Relaxed);
    PARALLEL_MERGE_EVENTS.fetch_add(merge_events, Ordering::Relaxed);
    PARALLEL_WORKER_BUSY_NANOS.fetch_add(worker_busy_nanos, Ordering::Relaxed);
    PARALLEL_WORKER_WALL_NANOS.fetch_add(worker_wall_nanos, Ordering::Relaxed);
}
