//! Time-sliced parallel stepping for script-driven simulations.
//!
//! The serial script fast path ([`Simulation::run_scripts`]) interprets
//! every rank's script on one thread: collect one request from each
//! running rank, apply the batch in rank order, advance the clock when
//! everyone is blocked. This module keeps that superstep structure — it
//! is what makes the engine conservative and bit-deterministic — but
//! restructures each superstep around *slices* and *node-local groups*:
//!
//! - **Groups.** Ranks are partitioned by hosting node (a node-local
//!   group); groups are sharded across a scoped worker pool. Within a
//!   superstep every running rank's next event (compute under processor
//!   sharing, sleeps, intra-node copies, message issues) is *generated*
//!   concurrently by its group's worker — each [`ScriptCursor`] owns its
//!   state, so generation is embarrassingly parallel — and then *merged*
//!   into the engine serially in ascending rank order, exactly the order
//!   the serial path applies them.
//! - **Slices.** Cross-node state (max-min fair network rates) only
//!   changes when a flow starts or drains or a timeline action fires.
//!   A slice is the maximal run of clock advances between two such merge
//!   points; the rate solution is computed once at the slice's opening
//!   boundary and reused verbatim until the next one (the solver never
//!   reads the flows' remaining byte counts, so the cached vector is
//!   bit-identical to a per-advance resolve). Scratch buffers are
//!   likewise reused, so steady-state advances allocate nothing.
//!
//! Because the engine observes the identical request sequence and the
//! identical per-entity float operation sequence as the serial path,
//! every [`SimReport`] is bit-identical to [`Simulation::run_scripts`] —
//! pinned by the differential proptests in `tests/script_equiv.rs`.
//!
//! Worker fan-out engages only when the host has more than one CPU and a
//! superstep's batch is large enough to amortize the handoff; otherwise
//! generation runs inline on the coordinator (still slice-cached). On a
//! single-core host the parallel path therefore degrades gracefully into
//! a faster serial driver rather than oversubscribing the CPU.

use crate::engine::{AdvanceCache, Blocked, Reply, ReplySink, Request, SimError, SimReport};
use crate::script::{RankScript, ScriptCursor};
use crate::Simulation;
use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum generated requests per pool member before a superstep fans
/// out; below this the channel handoff costs more than it saves.
const FANOUT_MIN_PER_WORKER: usize = 24;

/// Resolve the simulator thread count from an explicit request (CLI
/// flag), the `PSKEL_SIM_THREADS` environment override, or the host's
/// available parallelism, in that precedence order. A resolved count of
/// 1 means the exact legacy serial path; 0 is rejected.
pub fn resolve_sim_threads(explicit: Option<usize>) -> Result<usize, String> {
    if let Some(n) = explicit {
        if n == 0 {
            return Err("--sim-threads must be at least 1 (1 = serial engine); got 0".to_string());
        }
        return Ok(n);
    }
    if let Ok(raw) = std::env::var("PSKEL_SIM_THREADS") {
        let trimmed = raw.trim();
        return match trimmed.parse::<usize>() {
            Ok(0) => {
                Err("PSKEL_SIM_THREADS must be at least 1 (1 = serial engine); got 0".to_string())
            }
            Ok(n) => Ok(n),
            Err(_) => Err(format!(
                "PSKEL_SIM_THREADS must be a positive integer; got '{trimmed}'"
            )),
        };
    }
    Ok(std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1))
}

/// Raw-pointer wrapper so disjoint `&mut` shards of coordinator-owned
/// buffers can be handed to scoped workers. Safety is by protocol: each
/// rank index is touched by exactly one pool member per phase, and the
/// coordinator receives every worker's completion message before reading
/// the written slots.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

/// One generation work item: ranks to step, with the replies their last
/// requests produced. The vec travels to the worker and back so batch
/// allocations are reused across supersteps.
type GenBatch = Vec<(usize, Option<Reply>)>;

unsafe fn at<'x, T>(base: SendPtr<T>, idx: usize) -> &'x mut T {
    &mut *base.0.add(idx)
}

impl Simulation {
    /// Dispatch scripts to the engine that matches `threads` (resolved
    /// via [`resolve_sim_threads`] or explicitly): 1 runs the exact
    /// legacy serial fast path, anything larger the time-sliced parallel
    /// driver. Reports are bit-identical either way.
    pub fn try_run_scripts_auto(
        self,
        scripts: &[RankScript],
        threads: usize,
    ) -> Result<SimReport, SimError> {
        assert!(threads >= 1, "resolve the thread count before dispatch");
        if threads <= 1 {
            self.try_run_scripts(scripts)
        } else {
            self.try_run_scripts_parallel(scripts, threads)
        }
    }

    /// Panicking form of [`Simulation::try_run_scripts_parallel`],
    /// mirroring [`Simulation::run_scripts`].
    pub fn run_scripts_parallel(self, scripts: &[RankScript], threads: usize) -> SimReport {
        self.try_run_scripts_parallel(scripts, threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run scripts on the time-sliced parallel driver with up to
    /// `threads` pool members (capped at the number of node-local rank
    /// groups). See the module docs for the slice/group structure; the
    /// report is bit-identical to [`Simulation::run_scripts`].
    pub fn try_run_scripts_parallel(
        self,
        scripts: &[RankScript],
        threads: usize,
    ) -> Result<SimReport, SimError> {
        self.run_parallel_inner(scripts, threads, false)
    }

    /// Differential-testing entry: fan out whenever a spawned worker
    /// exists, ignoring the host-parallelism and batch-size gates, so
    /// single-core CI still exercises the pool handoff machinery.
    #[doc(hidden)]
    pub fn try_run_scripts_parallel_forced(
        self,
        scripts: &[RankScript],
        threads: usize,
    ) -> Result<SimReport, SimError> {
        self.run_parallel_inner(scripts, threads, true)
    }

    fn run_parallel_inner(
        self,
        scripts: &[RankScript],
        threads: usize,
        force_fanout: bool,
    ) -> Result<SimReport, SimError> {
        let n = self.placement.n_ranks();
        assert_eq!(scripts.len(), n, "need exactly one script per rank");
        assert!(n > 0, "simulation needs at least one rank");
        let t0 = Instant::now();

        // Node-local groups: ranks sharing a node, sharded round-robin
        // over the pool. `shard_of_rank` is the only grouping state the
        // hot loop consults.
        let mut nodes_used: Vec<usize> = (0..n).map(|r| self.placement.node_of(r)).collect();
        nodes_used.sort_unstable();
        nodes_used.dedup();
        let n_groups = nodes_used.len();
        let pool = threads.min(n_groups).max(1);
        let shard_of_rank: Vec<usize> = (0..n)
            .map(|r| {
                let node = self.placement.node_of(r);
                let gi = nodes_used
                    .binary_search(&node)
                    .expect("rank on unused node");
                gi % pool
            })
            .collect();
        let spawned = pool - 1;
        let host_cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let allow_fanout = spawned > 0 && (force_fanout || host_cores > 1);
        let fanout_floor = if force_fanout {
            1
        } else {
            FANOUT_MIN_PER_WORKER * pool
        };

        let mut engine = self.build_engine(n, ReplySink::Inline((0..n).map(|_| None).collect()));
        let mut cursors: Vec<ScriptCursor<'_>> = scripts
            .iter()
            .enumerate()
            .map(|(rank, s)| ScriptCursor::new(s, rank, n))
            .collect();
        let mut inbox: Vec<Option<Request>> = (0..n).map(|_| None).collect();
        let mut cache = AdvanceCache::default();

        // All cursor/inbox access below this point — coordinator and
        // workers alike — goes through these pointers, so no phase ever
        // reborrows the owning vectors out from under an outstanding
        // shard (the vectors stay alive until after the pool joins).
        let cursors_base = SendPtr(cursors.as_mut_ptr());
        let inbox_base = SendPtr(inbox.as_mut_ptr());
        let busy_nanos = AtomicU64::new(0);

        let result = std::thread::scope(|scope| -> Result<(), SimError> {
            // One task channel per spawned worker (shards 1..pool); a
            // shared done channel returns batch vecs for reuse.
            let mut task_txs = Vec::with_capacity(spawned);
            let (done_tx, done_rx) = unbounded::<(usize, GenBatch)>();
            for _ in 0..spawned {
                let (tx, rx) = unbounded::<(usize, GenBatch)>();
                task_txs.push(tx);
                let done_tx = done_tx.clone();
                let busy = &busy_nanos;
                scope.spawn(move || {
                    while let Ok((shard, mut batch)) = rx.recv() {
                        let t = Instant::now();
                        for (rank, reply) in batch.drain(..) {
                            let cursor = unsafe { at(cursors_base, rank) };
                            let slot = unsafe { at(inbox_base, rank) };
                            debug_assert!(slot.is_none(), "rank {rank} sent two requests");
                            *slot = Some(cursor.next_request(reply));
                        }
                        busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        if done_tx.send((shard, batch)).is_err() {
                            break;
                        }
                    }
                });
            }

            let mut batches: Vec<GenBatch> = (0..pool).map(|_| Vec::new()).collect();
            loop {
                if engine.running > 0 {
                    // Collect phase: pull each running rank's pending
                    // reply and route it to the rank's group shard, in
                    // ascending rank order.
                    let mut batch_total = 0usize;
                    for rank in 0..n {
                        if !matches!(engine.blocked[rank], Blocked::Running) {
                            continue;
                        }
                        let reply = engine.sink.take_inline(rank);
                        batches[shard_of_rank[rank]].push((rank, reply));
                        engine.running -= 1;
                        batch_total += 1;
                    }
                    debug_assert_eq!(engine.running, 0, "a running rank produced no request");

                    // Generation phase: fan shards out to the pool when
                    // the batch amortizes the handoff, else run inline.
                    if allow_fanout && batch_total >= fanout_floor {
                        let mut outstanding = 0usize;
                        for shard in 1..pool {
                            if batches[shard].is_empty() {
                                continue;
                            }
                            let batch = std::mem::take(&mut batches[shard]);
                            task_txs[shard - 1]
                                .send((shard, batch))
                                .expect("worker exited with tasks pending");
                            outstanding += 1;
                        }
                        for (rank, reply) in batches[0].drain(..) {
                            let cursor = unsafe { at(cursors_base, rank) };
                            let slot = unsafe { at(inbox_base, rank) };
                            debug_assert!(slot.is_none(), "rank {rank} sent two requests");
                            *slot = Some(cursor.next_request(reply));
                        }
                        // Barrier: every shard's slots are written before
                        // the merge below reads any of them.
                        for _ in 0..outstanding {
                            let (shard, batch) = done_rx
                                .recv()
                                .expect("worker exited before completing its shard");
                            batches[shard] = batch;
                        }
                    } else {
                        for shard in batches.iter_mut() {
                            for (rank, reply) in shard.drain(..) {
                                let cursor = unsafe { at(cursors_base, rank) };
                                let slot = unsafe { at(inbox_base, rank) };
                                debug_assert!(slot.is_none(), "rank {rank} sent two requests");
                                *slot = Some(cursor.next_request(reply));
                            }
                        }
                    }
                }

                // Merge phase: apply the batch in ascending rank order —
                // the exact sequence the serial path feeds the engine.
                for rank in 0..n {
                    let slot = unsafe { at(inbox_base, rank) };
                    if let Some(req) = slot.take() {
                        engine.handle_request(rank, req);
                    }
                }
                if engine.running > 0 {
                    continue;
                }
                if engine.live == 0 {
                    break;
                }
                engine.advance_with(Some(&mut cache))?;
            }
            Ok(())
        });
        result?;

        let elapsed = t0.elapsed();
        let report = engine.into_report()?;
        crate::counters::record_parallel(
            report.events,
            elapsed,
            cache.slices,
            cache.merge_events,
            busy_nanos.load(Ordering::Relaxed),
            elapsed.as_nanos() as u64 * spawned as u64,
        );
        Ok(report)
    }
}
