//! # pskel-sim — deterministic cluster simulation substrate
//!
//! A conservative discrete-event simulator of a small message-passing
//! cluster, built as the execution substrate for the performance-skeleton
//! framework (Sodhi & Subhlok, IPPS 2005 — see the workspace `DESIGN.md`).
//!
//! The simulated machine mirrors the paper's testbed: nodes with a small
//! number of CPUs under egalitarian processor sharing, NICs on a full
//! crossbar switch with latency + bandwidth (max-min fair among concurrent
//! flows), competing compute processes, and per-link `iproute2`-style
//! bandwidth caps.
//!
//! Programs come in two forms. Plain Rust closures, one per rank, run on
//! real threads; every interaction with virtual time goes through
//! [`SimCtx`], and the engine only advances the clock when all ranks are
//! blocked, so runs are bit-deterministic. Deterministic replays
//! (traces, skeletons, signature loop nests) can instead be lowered to
//! [`script::RankScript`]s, which the coordinator interprets inline on a
//! single thread ([`Simulation::run_scripts`]) — no rank threads, no
//! channels — producing reports bit-identical to the threaded path at a
//! fraction of the cost.
//!
//! ```
//! use pskel_sim::{ClusterSpec, Placement, Simulation};
//!
//! let cluster = ClusterSpec::homogeneous(2);
//! let placement = Placement::round_robin(2, 2);
//! let report = Simulation::new(cluster, placement).run(|ctx| {
//!     if ctx.rank() == 0 {
//!         ctx.compute(0.5);
//!         ctx.send(1, 0, 1024, None);
//!     } else {
//!         ctx.recv(Some(0), Some(0));
//!     }
//! });
//! assert!(report.total_time.as_secs_f64() > 0.5);
//! ```

pub mod counters;
pub mod cpu;
pub mod engine;
pub mod msg;
pub mod net;
pub mod parallel;
pub mod script;
pub mod spec;
pub mod sweep;
pub mod time;

pub use counters::SimCounters;
pub use engine::{RankStats, RecvInfo, SimCtx, SimError, SimReport, SimReq, Simulation};
pub use parallel::resolve_sim_threads;
pub use script::{RankScript, ScriptNode, ScriptOp, ScriptTag};
pub use spec::{
    ClusterSpec, NetSpec, NodeSpec, Placement, StartDelay, Timeline, TimelineAction, TimelineEvent,
    GIGABIT_BPS, THROTTLED_10MBPS,
};
pub use sweep::{try_run_scripts_sweep, SweepJob, SweepOutcome, SweepStats};
pub use time::{SimDuration, SimTime};
