//! Flow-level network model with max-min fair bandwidth allocation.
//!
//! The testbed is a full crossbar, so the contended resources are the
//! per-node NICs: each node has an egress capacity and an ingress capacity
//! (both equal to the node's effective link bandwidth — throttling the link
//! caps both directions, like shaping the cable with `iproute2`).
//!
//! Rates for the set of active flows are computed by progressive filling
//! (water-filling): repeatedly find the bottleneck resource — the one whose
//! remaining capacity divided by its number of unfrozen flows is smallest —
//! and freeze those flows at that fair share. This is the classic max-min
//! fair allocation and a good flow-level approximation of TCP sharing on a
//! switched LAN.

use crate::spec::ClusterSpec;

/// A transfer currently in progress on the network.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Opaque id owned by the engine (message id).
    pub id: u64,
    /// Sending node.
    pub src_node: usize,
    /// Receiving node. Equal to `src_node` is not allowed here: intra-node
    /// transfers bypass the network model entirely.
    pub dst_node: usize,
    /// Bytes still to transfer.
    pub remaining: f64,
}

/// Computes the max-min fair rate (bytes/sec) of every flow.
///
/// The `flows` slice must not contain intra-node flows. Returns rates in the
/// same order as `flows`.
pub fn max_min_rates(cluster: &ClusterSpec, flows: &[Flow]) -> Vec<f64> {
    let n_nodes = cluster.len();
    for f in flows {
        assert!(
            f.src_node != f.dst_node,
            "intra-node flow {} must not enter the network model",
            f.id
        );
        assert!(
            f.src_node < n_nodes && f.dst_node < n_nodes,
            "flow {} references a node outside the cluster",
            f.id
        );
    }
    if flows.is_empty() {
        return Vec::new();
    }

    // Resource index: 2*i = egress of node i, 2*i + 1 = ingress of node i.
    let n_res = 2 * n_nodes;
    let mut capacity: Vec<f64> = Vec::with_capacity(n_res);
    for node in &cluster.nodes {
        let bw = node.effective_bandwidth();
        capacity.push(bw); // egress
        capacity.push(bw); // ingress
    }

    // Which flows use each resource.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_res];
    for (fi, f) in flows.iter().enumerate() {
        members[2 * f.src_node].push(fi);
        members[2 * f.dst_node + 1].push(fi);
    }

    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut remaining_cap = capacity;
    let mut unfrozen_count: Vec<usize> = members.iter().map(|m| m.len()).collect();
    let mut left = flows.len();

    while left > 0 {
        // Find the bottleneck resource: min fair share among resources that
        // still carry unfrozen flows. Ties resolved by lowest index for
        // determinism.
        let mut best: Option<(f64, usize)> = None;
        for r in 0..n_res {
            if unfrozen_count[r] == 0 {
                continue;
            }
            let share = remaining_cap[r] / unfrozen_count[r] as f64;
            match best {
                Some((s, _)) if share >= s => {}
                _ => best = Some((share, r)),
            }
        }
        let (share, bottleneck) = best.expect("unfrozen flows remain but no resource carries them");

        // Freeze every unfrozen flow crossing the bottleneck at the fair
        // share, and charge its rate to the other resources it crosses.
        let flows_here: Vec<usize> = members[bottleneck]
            .iter()
            .copied()
            .filter(|&fi| !frozen[fi])
            .collect();
        debug_assert!(!flows_here.is_empty());
        for fi in flows_here {
            frozen[fi] = true;
            rate[fi] = share;
            left -= 1;
            let f = &flows[fi];
            for r in [2 * f.src_node, 2 * f.dst_node + 1] {
                remaining_cap[r] = (remaining_cap[r] - share).max(0.0);
                unfrozen_count[r] -= 1;
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, THROTTLED_10MBPS};

    fn flow(id: u64, src: usize, dst: usize) -> Flow {
        Flow {
            id,
            src_node: src,
            dst_node: dst,
            remaining: 1e6,
        }
    }

    #[test]
    fn empty_flow_set() {
        let c = ClusterSpec::homogeneous(2);
        assert!(max_min_rates(&c, &[]).is_empty());
    }

    #[test]
    fn single_flow_gets_full_link() {
        let c = ClusterSpec::homogeneous(2);
        let r = max_min_rates(&c, &[flow(0, 0, 1)]);
        assert!((r[0] - c.nodes[0].link_bandwidth).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_common_egress() {
        // Both flows leave node 0: its egress is the bottleneck.
        let c = ClusterSpec::homogeneous(3);
        let r = max_min_rates(&c, &[flow(0, 0, 1), flow(1, 0, 2)]);
        let half = c.nodes[0].link_bandwidth / 2.0;
        assert!((r[0] - half).abs() < 1.0);
        assert!((r[1] - half).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_common_ingress() {
        let c = ClusterSpec::homogeneous(3);
        let r = max_min_rates(&c, &[flow(0, 1, 0), flow(1, 2, 0)]);
        let half = c.nodes[0].link_bandwidth / 2.0;
        assert!((r[0] - half).abs() < 1.0);
        assert!((r[1] - half).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let c = ClusterSpec::homogeneous(4);
        let r = max_min_rates(&c, &[flow(0, 0, 1), flow(1, 2, 3)]);
        assert!((r[0] - c.nodes[0].link_bandwidth).abs() < 1.0);
        assert!((r[1] - c.nodes[0].link_bandwidth).abs() < 1.0);
    }

    #[test]
    fn throttled_link_caps_its_flows_only() {
        let c = ClusterSpec::homogeneous(4).with_link_cap(1, THROTTLED_10MBPS);
        let r = max_min_rates(&c, &[flow(0, 0, 1), flow(1, 2, 3)]);
        assert!(
            (r[0] - THROTTLED_10MBPS).abs() < 1.0,
            "flow into throttled node capped"
        );
        assert!(
            (r[1] - c.nodes[0].link_bandwidth).abs() < 1.0,
            "other flow unaffected"
        );
    }

    #[test]
    fn water_filling_redistributes_slack() {
        // Flows: A: 0->1 (throttled dst), B: 0->2. A is capped at 10 Mbps,
        // so B should receive the rest of node 0's egress, not just half.
        let c = ClusterSpec::homogeneous(3).with_link_cap(1, THROTTLED_10MBPS);
        let r = max_min_rates(&c, &[flow(0, 0, 1), flow(1, 0, 2)]);
        assert!((r[0] - THROTTLED_10MBPS).abs() < 1.0);
        let expect_b = c.nodes[0].link_bandwidth - THROTTLED_10MBPS;
        assert!(
            (r[1] - expect_b).abs() < 1.0,
            "B got {} expected {}",
            r[1],
            expect_b
        );
    }

    #[test]
    fn crossbar_all_to_one_shares_ingress_fairly() {
        let c = ClusterSpec::homogeneous(4);
        let flows: Vec<Flow> = (1..4).map(|s| flow(s as u64, s, 0)).collect();
        let r = max_min_rates(&c, &flows);
        let third = c.nodes[0].link_bandwidth / 3.0;
        for x in &r {
            assert!((x - third).abs() < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn intra_node_flow_rejected() {
        let c = ClusterSpec::homogeneous(2);
        max_min_rates(&c, &[flow(0, 1, 1)]);
    }

    #[test]
    fn rates_never_exceed_any_capacity() {
        // Dense random-ish pattern, checked against per-resource sums.
        let c = ClusterSpec::homogeneous(4).with_link_cap(2, THROTTLED_10MBPS);
        let mut flows = Vec::new();
        let mut id = 0;
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    flows.push(flow(id, s, d));
                    id += 1;
                }
            }
        }
        let r = max_min_rates(&c, &flows);
        for node in 0..4 {
            let cap = c.nodes[node].effective_bandwidth();
            let egress: f64 = flows
                .iter()
                .zip(&r)
                .filter(|(f, _)| f.src_node == node)
                .map(|(_, x)| x)
                .sum();
            let ingress: f64 = flows
                .iter()
                .zip(&r)
                .filter(|(f, _)| f.dst_node == node)
                .map(|(_, x)| x)
                .sum();
            assert!(
                egress <= cap * 1.000001,
                "node {node} egress oversubscribed"
            );
            assert!(
                ingress <= cap * 1.000001,
                "node {node} ingress oversubscribed"
            );
        }
        // Every flow makes progress.
        for x in &r {
            assert!(*x > 0.0);
        }
    }
}
