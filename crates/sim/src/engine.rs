//! The discrete-event engine: a conservative, deterministic coordinator for
//! thread-per-rank simulated programs.
//!
//! Every simulated rank runs its program on a real OS thread and interacts
//! with virtual time exclusively through [`SimCtx`] requests. The coordinator
//! only advances the virtual clock when *all* live ranks are blocked in a
//! request, and processes batched requests in rank order, so simulations are
//! bit-deterministic regardless of host scheduling.
//!
//! Continuous processes (CPU work under processor sharing, network flows
//! under max-min fairness) are advanced by closed-form "next completion"
//! scans rather than per-task event churn; discrete delays (wire latency,
//! rendezvous handshakes, sleeps) go through a timer heap.

use crate::cpu::NodeCpu;
use crate::msg::{Completion, MatchQueue, Msg, MsgState, RecvReq};
use crate::net::{max_min_rates, Flow};
use crate::script::{RankScript, ScriptCursor};
use crate::spec::{ClusterSpec, Placement, Timeline, TimelineAction, TimelineEvent};
use crate::time::{SimDuration, SimTime};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Memory bandwidth used for intra-node (shared-memory) message copies.
const MEM_COPY_BPS: f64 = 10.0e9;

/// Bytes below which a flow is considered drained.
const FLOW_EPS: f64 = 0.25;

/// Handle to a pending nonblocking operation. Must be waited on; consuming
/// semantics prevent double waits.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct SimReq(pub(crate) u64);

/// Completion details of a receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvInfo {
    pub src: usize,
    pub tag: u64,
    pub bytes: u64,
    pub payload: Option<Vec<u8>>,
}

#[derive(Clone, Debug)]
pub(crate) enum Request {
    Compute {
        secs: f64,
    },
    Sleep {
        secs: f64,
    },
    Send {
        dst: usize,
        tag: u64,
        bytes: u64,
        payload: Option<Vec<u8>>,
        nonblocking: bool,
    },
    Recv {
        src: Option<usize>,
        tag: Option<u64>,
        nonblocking: bool,
    },
    Wait {
        req: u64,
    },
    WaitAll {
        reqs: Vec<u64>,
    },
    Test {
        req: u64,
    },
    Exit {
        panic: Option<String>,
    },
}

#[derive(Clone, Debug)]
pub(crate) enum ReplyKind {
    Done,
    Recv(RecvInfo),
    Handle(u64),
    WaitDone(Option<RecvInfo>),
    WaitAllDone(Vec<Option<RecvInfo>>),
    TestResult(Option<Option<RecvInfo>>),
}

#[derive(Clone, Debug)]
pub(crate) struct Reply {
    now: SimTime,
    pub(crate) kind: ReplyKind,
}

/// What a blocked rank is waiting for.
#[derive(Clone, Debug)]
pub(crate) enum Blocked {
    Running,
    Compute,
    Sleep,
    // The ids in the two blocking variants exist for the deadlock
    // diagnostic's Debug dump; nothing reads them programmatically.
    SendB {
        #[allow(dead_code)]
        msg: u64,
    },
    RecvB {
        #[allow(dead_code)]
        recv: u64,
    },
    Wait {
        req: u64,
    },
    WaitAll {
        reqs: Vec<u64>,
        remaining: usize,
    },
    /// The rank's first request is held back by a timeline start delay.
    StartHold,
    Exited,
}

#[derive(Clone, Debug)]
enum Timer {
    /// Wire latency elapsed for a message; start its flow (or deliver it).
    NetDelay {
        msg: u64,
    },
    /// Rendezvous handshake + wire time elapsed; start the flow.
    RndvWire {
        msg: u64,
    },
    /// Intra-node transfer finished.
    LocalDelivery {
        msg: u64,
    },
    SleepDone {
        rank: usize,
    },
    /// A delayed rank's start hold expired; dispatch its held request.
    StartRelease {
        rank: usize,
    },
}

/// State of one nonblocking request.
#[derive(Clone, Debug, Default)]
struct NbState {
    done: bool,
    outcome: Option<RecvInfo>,
    /// Rank blocked in Wait/WaitAll on this request, if any.
    waiter: Option<usize>,
}

/// Why a simulation could not complete. Returned by the fallible
/// `try_run*` entry points; the panicking entry points format this with
/// `Display` and panic with the resulting string, preserving the
/// historical diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// All live ranks are blocked and no event can ever wake them.
    Deadlock {
        /// Virtual time at which progress stopped.
        at: SimTime,
        /// One pre-formatted line per non-exited rank describing what it
        /// is blocked on (plus any rank panics observed earlier).
        blocked: Vec<String>,
    },
    /// A rank program panicked; the simulation completed by unwinding
    /// but its report is meaningless.
    RankPanic { rank: usize, msg: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => write!(
                f,
                "simulation deadlock at {}: all live ranks blocked with no pending events\n{}",
                at,
                blocked.join("\n")
            ),
            SimError::RankPanic { rank, msg } => {
                write!(f, "rank {rank} panicked during simulation: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-rank accounting captured during the run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    pub compute_secs: f64,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recvd: u64,
    pub bytes_recvd: u64,
}

/// Result of a completed simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Wall-clock (virtual) time at which the last rank finished.
    pub total_time: SimDuration,
    /// Per-rank finish times.
    pub finish_times: Vec<SimTime>,
    /// Per-rank traffic/compute accounting.
    pub rank_stats: Vec<RankStats>,
    /// Engine steps processed (requests + clock advances), for benchmarks.
    pub events: u64,
}

/// Per-rank handle through which simulated programs interact with the
/// virtual cluster. All methods may only be called from the rank's thread.
pub struct SimCtx {
    rank: usize,
    nranks: usize,
    node: usize,
    now: SimTime,
    sw_overhead_secs: f64,
    tx: Sender<(usize, Request)>,
    rx: Receiver<Reply>,
}

impl SimCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the simulation.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The node hosting this rank.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Current virtual time. Free: virtual time cannot advance while this
    /// rank is running, so the value piggybacked on the last reply is exact.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Per-MPI-call software overhead of this cluster's message stack, in
    /// CPU-seconds. Charged by the `pskel-mpi` layer, not by the engine.
    pub fn sw_overhead_secs(&self) -> f64 {
        self.sw_overhead_secs
    }

    fn roundtrip(&mut self, req: Request) -> ReplyKind {
        self.tx
            .send((self.rank, req))
            .expect("simulation engine terminated while rank was active");
        let reply = self
            .rx
            .recv()
            .expect("simulation engine terminated while rank was blocked");
        self.now = reply.now;
        reply.kind
    }

    /// Perform `secs` CPU-seconds of computation (subject to CPU sharing on
    /// this node, so elapsed virtual time may be longer).
    pub fn compute(&mut self, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        match self.roundtrip(Request::Compute { secs }) {
            ReplyKind::Done => {}
            other => panic!("unexpected reply to compute: {other:?}"),
        }
    }

    /// Block for `secs` of virtual wall time without using the CPU.
    pub fn sleep(&mut self, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        match self.roundtrip(Request::Sleep { secs }) {
            ReplyKind::Done => {}
            other => panic!("unexpected reply to sleep: {other:?}"),
        }
    }

    /// Blocking send (MPI_Send semantics: returns when the buffer may be
    /// reused — immediately for eager messages, at transfer completion for
    /// rendezvous messages).
    pub fn send(&mut self, dst: usize, tag: u64, bytes: u64, payload: Option<Vec<u8>>) {
        assert!(
            dst < self.nranks,
            "send to rank {dst} but nranks={}",
            self.nranks
        );
        match self.roundtrip(Request::Send {
            dst,
            tag,
            bytes,
            payload,
            nonblocking: false,
        }) {
            ReplyKind::Done => {}
            other => panic!("unexpected reply to send: {other:?}"),
        }
    }

    /// Nonblocking send; complete with [`SimCtx::wait`].
    pub fn isend(&mut self, dst: usize, tag: u64, bytes: u64, payload: Option<Vec<u8>>) -> SimReq {
        assert!(
            dst < self.nranks,
            "isend to rank {dst} but nranks={}",
            self.nranks
        );
        match self.roundtrip(Request::Send {
            dst,
            tag,
            bytes,
            payload,
            nonblocking: true,
        }) {
            ReplyKind::Handle(h) => SimReq(h),
            other => panic!("unexpected reply to isend: {other:?}"),
        }
    }

    /// Blocking receive. `src`/`tag` of `None` mean any-source / any-tag.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u64>) -> RecvInfo {
        match self.roundtrip(Request::Recv {
            src,
            tag,
            nonblocking: false,
        }) {
            ReplyKind::Recv(info) => info,
            other => panic!("unexpected reply to recv: {other:?}"),
        }
    }

    /// Nonblocking receive; complete with [`SimCtx::wait`].
    pub fn irecv(&mut self, src: Option<usize>, tag: Option<u64>) -> SimReq {
        match self.roundtrip(Request::Recv {
            src,
            tag,
            nonblocking: true,
        }) {
            ReplyKind::Handle(h) => SimReq(h),
            other => panic!("unexpected reply to irecv: {other:?}"),
        }
    }

    /// Block until a nonblocking operation completes. Returns the receive
    /// info for irecv requests, `None` for isend requests.
    pub fn wait(&mut self, req: SimReq) -> Option<RecvInfo> {
        match self.roundtrip(Request::Wait { req: req.0 }) {
            ReplyKind::WaitDone(outcome) => outcome,
            other => panic!("unexpected reply to wait: {other:?}"),
        }
    }

    /// Block until all listed nonblocking operations complete. Outcomes are
    /// returned in argument order.
    pub fn waitall(&mut self, reqs: Vec<SimReq>) -> Vec<Option<RecvInfo>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let ids = reqs.into_iter().map(|r| r.0).collect();
        match self.roundtrip(Request::WaitAll { reqs: ids }) {
            ReplyKind::WaitAllDone(v) => v,
            other => panic!("unexpected reply to waitall: {other:?}"),
        }
    }

    /// Nonblocking completion probe: `None` if still pending; otherwise the
    /// operation's outcome (the request is consumed).
    pub fn test(&mut self, req: SimReq) -> Result<Option<RecvInfo>, SimReq> {
        let id = req.0;
        match self.roundtrip(Request::Test { req: id }) {
            ReplyKind::TestResult(Some(outcome)) => Ok(outcome),
            ReplyKind::TestResult(None) => Err(SimReq(id)),
            other => panic!("unexpected reply to test: {other:?}"),
        }
    }
}

/// Where completed replies go: per-rank channels feeding blocked rank
/// threads, or in-place slots the inline script driver reads back —
/// identical reply values either way, which is what keeps the two
/// execution paths bit-identical.
pub(crate) enum ReplySink {
    Threads(Vec<Sender<Reply>>),
    Inline(Vec<Option<Reply>>),
}

impl Clone for ReplySink {
    /// Only the inline form is cloneable: cloning an engine mid-run (the
    /// sweep fork path) duplicates the reply slots verbatim. Threaded
    /// sinks hold channel ends owned by live rank threads; a fork there
    /// would alias them, so the sweep engine never builds one.
    fn clone(&self) -> ReplySink {
        match self {
            ReplySink::Inline(slots) => ReplySink::Inline(slots.clone()),
            ReplySink::Threads(_) => {
                unreachable!("threaded reply sinks cannot be cloned (sweep forks are inline-only)")
            }
        }
    }
}

impl ReplySink {
    fn deliver(&mut self, rank: usize, reply: Reply) {
        match self {
            ReplySink::Threads(txs) => txs[rank]
                .send(reply)
                .expect("rank thread disappeared while a reply was due"),
            ReplySink::Inline(slots) => {
                debug_assert!(
                    slots[rank].is_none(),
                    "rank {rank} received two replies without issuing a request"
                );
                slots[rank] = Some(reply);
            }
        }
    }

    pub(crate) fn take_inline(&mut self, rank: usize) -> Option<Reply> {
        match self {
            ReplySink::Inline(slots) => slots[rank].take(),
            ReplySink::Threads(_) => unreachable!("inline reply requested on a threaded sink"),
        }
    }
}

/// Outcome of one [`Engine::advance_impl`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Advance {
    /// A step committed (clock advanced or a ripe completion woke a rank).
    Stepped,
    /// The next step would reach the pause horizon; nothing was committed.
    Paused,
}

/// Memoized per-slice state the parallel driver threads through successive
/// clock advances. A *slice* is a maximal run of advances over which the
/// flow set and link capacities (`Engine::net_epoch`) are unchanged; the
/// max-min rate solution is computed once at the slice's opening merge
/// point and reused verbatim until the next boundary. Also carries scratch
/// buffers so steady-state advances allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct AdvanceCache {
    /// `net_epoch` the cached `rates` were solved at, if any.
    rates_epoch: Option<u64>,
    rates: Vec<f64>,
    done_scratch: Vec<u64>,
    /// Rate solves performed == slices stepped.
    pub(crate) slices: u64,
    /// Cross-node events merged at slice boundaries (drained flows +
    /// timeline actions applied).
    pub(crate) merge_events: u64,
}

#[derive(Clone)]
pub(crate) struct Engine {
    spec: ClusterSpec,
    pub(crate) placement: Placement,
    now: SimTime,
    nodes: Vec<NodeCpu>,
    flows: Vec<Flow>,
    timers: BinaryHeap<Reverse<(u64, u64, u64)>>,
    timer_payload: HashMap<u64, Timer>,
    timer_seq: u64,
    msgs: HashMap<u64, Msg>,
    recvs: HashMap<u64, RecvReq>,
    queues: Vec<MatchQueue>,
    nb: HashMap<u64, NbState>,
    pub(crate) blocked: Vec<Blocked>,
    pub(crate) sink: ReplySink,
    pub(crate) running: usize,
    pub(crate) live: usize,
    next_id: u64,
    send_seq: u64,
    stats: Vec<RankStats>,
    finish_times: Vec<SimTime>,
    panics: Vec<(usize, String)>,
    events: u64,
    /// Version of the flow-set/link-capacity state the max-min rate
    /// solution depends on. Bumped whenever a flow starts or drains or a
    /// timeline event fires, so a cached rate vector is valid exactly
    /// while this is unchanged (the rates read only flow endpoints and
    /// effective bandwidths, never `remaining`).
    net_epoch: u64,
    /// Timeline events sorted by time (stable, so same-time events apply in
    /// spec order); `tl_next` indexes the first not-yet-applied event.
    tl_events: Vec<TimelineEvent>,
    tl_next: usize,
    /// Per-node speed from the static spec; `SetSpeedFactor` multiplies
    /// this base, so factors never compound across events.
    base_speed: Vec<f64>,
    /// Pending start delay per rank (consumed by the rank's first request).
    hold: Vec<Option<SimDuration>>,
    /// First request of a delayed rank, parked until its release timer.
    held_req: Vec<Option<Request>>,
}

impl Engine {
    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn reply(&mut self, rank: usize, kind: ReplyKind) {
        self.blocked[rank] = Blocked::Running;
        self.running += 1;
        let reply = Reply {
            now: self.now,
            kind,
        };
        self.sink.deliver(rank, reply);
    }

    fn schedule(&mut self, at: SimTime, timer: Timer) {
        let id = self.fresh_id();
        self.timer_seq += 1;
        self.timers
            .push(Reverse((at.as_nanos(), self.timer_seq, id)));
        self.timer_payload.insert(id, timer);
    }

    fn node_of(&self, rank: usize) -> usize {
        self.placement.node_of(rank)
    }

    // ---- request handling -------------------------------------------------

    pub(crate) fn handle_request(&mut self, rank: usize, req: Request) {
        self.events += 1;
        // A delayed rank's first request is parked until its release timer
        // fires; both execution paths funnel through here, so the hold is
        // bit-identical between them.
        if let Some(delay) = self.hold[rank].take() {
            let at = self.now + delay;
            self.schedule(at, Timer::StartRelease { rank });
            self.held_req[rank] = Some(req);
            self.blocked[rank] = Blocked::StartHold;
            return;
        }
        match req {
            Request::Compute { secs } => {
                let node = self.node_of(rank);
                self.stats[rank].compute_secs += secs;
                self.nodes[node].start_task(rank as u64, secs);
                self.blocked[rank] = Blocked::Compute;
            }
            Request::Sleep { secs } => {
                let at = self.now + SimDuration::from_secs_f64(secs);
                self.schedule(at, Timer::SleepDone { rank });
                self.blocked[rank] = Blocked::Sleep;
            }
            Request::Send {
                dst,
                tag,
                bytes,
                payload,
                nonblocking,
            } => {
                self.start_send(rank, dst, tag, bytes, payload, nonblocking);
            }
            Request::Recv {
                src,
                tag,
                nonblocking,
            } => {
                self.start_recv(rank, src, tag, nonblocking);
            }
            Request::Wait { req } => {
                let state = self
                    .nb
                    .get_mut(&req)
                    .unwrap_or_else(|| panic!("rank {rank}: wait on unknown request {req}"));
                if state.done {
                    let outcome = self.nb.remove(&req).unwrap().outcome;
                    self.reply(rank, ReplyKind::WaitDone(outcome));
                } else {
                    assert!(
                        state.waiter.is_none(),
                        "request {req} waited on twice (second waiter: rank {rank})"
                    );
                    state.waiter = Some(rank);
                    self.blocked[rank] = Blocked::Wait { req };
                }
            }
            Request::WaitAll { reqs } => {
                let mut remaining = 0;
                for &id in &reqs {
                    let state = self
                        .nb
                        .get_mut(&id)
                        .unwrap_or_else(|| panic!("rank {rank}: waitall on unknown request {id}"));
                    if !state.done {
                        assert!(
                            state.waiter.is_none(),
                            "request {id} waited on twice (second waiter: rank {rank})"
                        );
                        state.waiter = Some(rank);
                        remaining += 1;
                    }
                }
                if remaining == 0 {
                    let outcomes = reqs
                        .iter()
                        .map(|id| self.nb.remove(id).unwrap().outcome)
                        .collect();
                    self.reply(rank, ReplyKind::WaitAllDone(outcomes));
                } else {
                    self.blocked[rank] = Blocked::WaitAll { reqs, remaining };
                }
            }
            Request::Test { req } => {
                let done = self
                    .nb
                    .get(&req)
                    .map(|s| s.done)
                    .unwrap_or_else(|| panic!("rank {rank}: test on unknown request {req}"));
                if done {
                    let outcome = self.nb.remove(&req).unwrap().outcome;
                    self.reply(rank, ReplyKind::TestResult(Some(outcome)));
                } else {
                    self.reply(rank, ReplyKind::TestResult(None));
                }
            }
            Request::Exit { panic } => {
                self.blocked[rank] = Blocked::Exited;
                self.finish_times[rank] = self.now;
                self.live -= 1;
                if let Some(msg) = panic {
                    self.panics.push((rank, msg));
                }
            }
        }
    }

    fn start_send(
        &mut self,
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        bytes: u64,
        payload: Option<Vec<u8>>,
        nonblocking: bool,
    ) {
        let eager = bytes <= self.spec.net.eager_threshold;
        let id = self.fresh_id();
        self.send_seq += 1;
        self.stats[src_rank].msgs_sent += 1;
        self.stats[src_rank].bytes_sent += bytes;

        // Decide the sender-side completion.
        let send_completion = if eager {
            // Eager sends complete immediately (buffered): the blocking call
            // returns now, and nonblocking handles are created pre-completed.
            Completion::None
        } else if nonblocking {
            let h = self.fresh_id();
            self.nb.insert(h, NbState::default());
            Completion::Nb(h)
        } else {
            Completion::Rank(src_rank)
        };

        let mut msg = Msg {
            id,
            seq: self.send_seq,
            src_rank,
            dst_rank,
            tag,
            bytes,
            payload,
            eager,
            state: if eager {
                MsgState::EagerLatency
            } else {
                MsgState::RndvWaiting
            },
            bound_recv: None,
            send_completion,
        };

        let intra = self.node_of(src_rank) == self.node_of(dst_rank);
        if eager {
            // Latency stage begins immediately; data moves regardless of the
            // receiver.
            let at = if intra {
                let copy = SimDuration::from_secs_f64(bytes as f64 / MEM_COPY_BPS);
                self.now + self.spec.net.intra_node_latency + copy
            } else {
                self.now + self.spec.net.latency
            };
            let timer = if intra {
                Timer::LocalDelivery { msg: id }
            } else {
                Timer::NetDelay { msg: id }
            };
            self.schedule(at, timer);
        }

        // Try to match an already-posted receive.
        let matched = {
            let q = &self.queues[dst_rank];
            q.find_recv_for(&msg, |rid| &self.recvs[&rid])
        };
        if let Some(rid) = matched {
            self.queues[dst_rank].remove_recv(rid);
            msg.bound_recv = Some(rid);
            self.recvs.get_mut(&rid).unwrap().matched = Some(id);
            if !eager {
                self.begin_rendezvous(&mut msg, intra);
            }
        } else {
            self.queues[dst_rank].unmatched_sends.push_back(id);
        }
        self.msgs.insert(id, msg);

        // Reply to the sender.
        match (eager, nonblocking) {
            (true, false) => self.reply(src_rank, ReplyKind::Done),
            (true, true) => {
                let h = self.fresh_id();
                self.nb.insert(
                    h,
                    NbState {
                        done: true,
                        outcome: None,
                        waiter: None,
                    },
                );
                self.reply(src_rank, ReplyKind::Handle(h));
            }
            (false, false) => {
                self.blocked[src_rank] = Blocked::SendB { msg: id };
            }
            (false, true) => {
                let h = match self.msgs[&id].send_completion {
                    Completion::Nb(h) => h,
                    _ => unreachable!(),
                };
                self.reply(src_rank, ReplyKind::Handle(h));
            }
        }
    }

    fn begin_rendezvous(&mut self, msg: &mut Msg, intra: bool) {
        debug_assert_eq!(msg.state, MsgState::RndvWaiting);
        msg.state = MsgState::RndvHandshake;
        if intra {
            let copy = SimDuration::from_secs_f64(msg.bytes as f64 / MEM_COPY_BPS);
            let at = self.now + self.spec.net.intra_node_latency + copy;
            self.schedule(at, Timer::LocalDelivery { msg: msg.id });
        } else {
            // RTS + CTS + data wire latency, then the bandwidth flow.
            let lat = self.spec.net.latency;
            let at = self.now + lat + lat + lat;
            self.schedule(at, Timer::RndvWire { msg: msg.id });
        }
    }

    fn start_recv(&mut self, rank: usize, src: Option<usize>, tag: Option<u64>, nonblocking: bool) {
        let rid = self.fresh_id();
        let completion = if nonblocking {
            let h = self.fresh_id();
            self.nb.insert(h, NbState::default());
            Completion::Nb(h)
        } else {
            Completion::Rank(rank)
        };
        let recv = RecvReq {
            id: rid,
            rank,
            src,
            tag,
            completion,
            matched: None,
        };

        // Match against pending sends in initiation order.
        let matched = {
            let q = &self.queues[rank];
            q.find_send_for(&recv, |mid| &self.msgs[&mid])
        };
        self.recvs.insert(rid, recv);

        if nonblocking {
            let h = match self.recvs[&rid].completion {
                Completion::Nb(h) => h,
                _ => unreachable!(),
            };
            self.reply(rank, ReplyKind::Handle(h));
        } else {
            self.blocked[rank] = Blocked::RecvB { recv: rid };
        }

        if let Some(mid) = matched {
            self.queues[rank].remove_send(mid);
            self.recvs.get_mut(&rid).unwrap().matched = Some(mid);
            let mut msg = self.msgs.remove(&mid).unwrap();
            msg.bound_recv = Some(rid);
            match msg.state {
                MsgState::Arrived => {
                    self.msgs.insert(mid, msg);
                    self.deliver(mid);
                }
                MsgState::RndvWaiting => {
                    let intra = self.node_of(msg.src_rank) == self.node_of(msg.dst_rank);
                    self.begin_rendezvous(&mut msg, intra);
                    self.msgs.insert(mid, msg);
                }
                // Eager message still in transit: it will deliver on arrival.
                _ => {
                    self.msgs.insert(mid, msg);
                }
            }
        } else {
            self.queues[rank].unmatched_recvs.push_back(rid);
        }
    }

    /// Complete a matched, arrived message: hand payload to the receive and
    /// finish the send side if it is still pending.
    fn deliver(&mut self, mid: u64) {
        let mut msg = self.msgs.remove(&mid).unwrap();
        msg.state = MsgState::Done;
        let rid = msg.bound_recv.expect("deliver called on unmatched message");
        let recv = self.recvs.remove(&rid).unwrap();
        let info = RecvInfo {
            src: msg.src_rank,
            tag: msg.tag,
            bytes: msg.bytes,
            payload: msg.payload.take(),
        };
        self.stats[recv.rank].msgs_recvd += 1;
        self.stats[recv.rank].bytes_recvd += msg.bytes;

        match recv.completion {
            Completion::Rank(r) => {
                debug_assert!(matches!(self.blocked[r], Blocked::RecvB { .. }));
                self.reply(r, ReplyKind::Recv(info));
            }
            Completion::Nb(h) => self.complete_nb(h, Some(info)),
            Completion::None => unreachable!("receives always have a completion"),
        }

        match msg.send_completion {
            Completion::Rank(r) => {
                debug_assert!(matches!(self.blocked[r], Blocked::SendB { .. }));
                self.reply(r, ReplyKind::Done);
            }
            Completion::Nb(h) => self.complete_nb(h, None),
            Completion::None => {}
        }
    }

    fn complete_nb(&mut self, h: u64, outcome: Option<RecvInfo>) {
        let state = self
            .nb
            .get_mut(&h)
            .expect("completing unknown nonblocking request");
        debug_assert!(!state.done, "nonblocking request completed twice");
        state.done = true;
        state.outcome = outcome;
        let Some(rank) = state.waiter else { return };
        match &mut self.blocked[rank] {
            Blocked::Wait { req } => {
                debug_assert_eq!(*req, h);
                let outcome = self.nb.remove(&h).unwrap().outcome;
                self.reply(rank, ReplyKind::WaitDone(outcome));
            }
            Blocked::WaitAll { reqs, remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    let ids = std::mem::take(reqs);
                    let outcomes = ids
                        .iter()
                        .map(|id| self.nb.remove(id).unwrap().outcome)
                        .collect();
                    self.reply(rank, ReplyKind::WaitAllDone(outcomes));
                }
            }
            other => panic!("request {h} has waiter rank {rank} in unexpected state {other:?}"),
        }
    }

    // ---- time advancement -------------------------------------------------

    fn fire_timer(&mut self, timer: Timer) {
        match timer {
            Timer::SleepDone { rank } => {
                debug_assert!(matches!(self.blocked[rank], Blocked::Sleep));
                self.reply(rank, ReplyKind::Done);
            }
            Timer::NetDelay { msg } => {
                // Eager latency elapsed: start the bandwidth flow (or arrive
                // directly for empty messages).
                let (bytes, src, dst) = {
                    let m = self.msgs.get_mut(&msg).expect("timer for vanished message");
                    debug_assert_eq!(m.state, MsgState::EagerLatency);
                    if m.bytes == 0 {
                        m.state = MsgState::Arrived;
                        (0, 0, 0)
                    } else {
                        m.state = MsgState::EagerTransfer;
                        (m.bytes, m.src_rank, m.dst_rank)
                    }
                };
                if bytes == 0 {
                    self.on_arrival(msg);
                } else {
                    let f = Flow {
                        id: msg,
                        src_node: self.node_of(src),
                        dst_node: self.node_of(dst),
                        remaining: bytes as f64,
                    };
                    self.flows.push(f);
                    self.net_epoch += 1;
                }
            }
            Timer::RndvWire { msg } => {
                let (bytes, src, dst) = {
                    let m = self.msgs.get_mut(&msg).expect("timer for vanished message");
                    debug_assert_eq!(m.state, MsgState::RndvHandshake);
                    m.state = MsgState::RndvTransfer;
                    (m.bytes, m.src_rank, m.dst_rank)
                };
                let f = Flow {
                    id: msg,
                    src_node: self.node_of(src),
                    dst_node: self.node_of(dst),
                    remaining: bytes as f64,
                };
                self.flows.push(f);
                self.net_epoch += 1;
            }
            Timer::LocalDelivery { msg } => {
                let state = {
                    let m = self.msgs.get_mut(&msg).expect("timer for vanished message");
                    let s = m.state;
                    m.state = MsgState::Arrived;
                    s
                };
                match state {
                    MsgState::EagerLatency => self.on_arrival(msg),
                    MsgState::RndvHandshake => self.deliver(msg),
                    other => panic!("local delivery in state {other:?}"),
                }
            }
            Timer::StartRelease { rank } => {
                debug_assert!(matches!(self.blocked[rank], Blocked::StartHold));
                let req = self.held_req[rank]
                    .take()
                    .expect("start release for a rank with no held request");
                self.handle_request(rank, req);
            }
        }
    }

    /// Apply one due timeline event to the live engine state.
    fn apply_timeline_event(&mut self, ev: &TimelineEvent) {
        match &ev.action {
            TimelineAction::AddCompeting(delta) => {
                let cur = self.nodes[ev.node].competing() as i64;
                self.nodes[ev.node].set_competing((cur + delta).max(0) as u32);
            }
            TimelineAction::SetLinkCap(cap) => {
                self.spec.nodes[ev.node].link_cap = *cap;
            }
            TimelineAction::SetSpeedFactor(f) => {
                self.nodes[ev.node].set_speed(self.base_speed[ev.node] * f);
            }
            TimelineAction::SetLatency(lat) => {
                self.spec.net.latency = *lat;
            }
        }
        // Conservative: only SetLinkCap changes max-min rates, but a stale
        // cache merely costs one recompute, so invalidate on any event.
        self.net_epoch += 1;
        crate::counters::record_timeline_event(ev.fault);
    }

    /// An eager message has fully arrived at its destination.
    fn on_arrival(&mut self, mid: u64) {
        let bound = self.msgs[&mid].bound_recv;
        if bound.is_some() {
            self.deliver(mid);
        }
        // Otherwise it stays buffered (state Arrived, still in the
        // unmatched_sends queue) until a receive matches it.
    }

    /// Complete a flow whose bytes have drained.
    fn flow_done(&mut self, mid: u64) {
        let state = {
            let m = self.msgs.get_mut(&mid).expect("flow for vanished message");
            let s = m.state;
            m.state = MsgState::Arrived;
            s
        };
        match state {
            MsgState::EagerTransfer => self.on_arrival(mid),
            MsgState::RndvTransfer => self.deliver(mid),
            other => panic!("flow completion in state {other:?}"),
        }
    }

    /// Advance virtual time by one step, waking at least one rank or
    /// making internal progress. Fails on deadlock.
    ///
    /// This is the exact legacy serial step: every call re-solves the
    /// max-min fair rates and allocates fresh scratch buffers. The
    /// parallel driver calls [`Engine::advance_with`] with an
    /// [`AdvanceCache`] instead, which produces bit-identical state (the
    /// cached rate vector is only reused while `net_epoch` is unchanged,
    /// over which interval a fresh solve would return identical values).
    fn advance_once(&mut self) -> Result<(), SimError> {
        self.advance_with(None)
    }

    /// One clock step, optionally slice-cached. Keep the `None` arm's
    /// operation sequence exactly as the historical `advance_once`: the
    /// `--sim-threads 1` path is pinned as the legacy serial engine.
    pub(crate) fn advance_with(
        &mut self,
        cache: Option<&mut AdvanceCache>,
    ) -> Result<(), SimError> {
        self.advance_impl(cache, None).map(|_| ())
    }

    /// One clock step with an optional pause horizon. When `pause_at` is
    /// set and the chosen step would land at or past it, the engine
    /// returns [`Advance::Paused`] *without committing anything* — no
    /// event counted, no state settled, no clock movement — leaving the
    /// state exactly as a fresh engine that executed the same committed
    /// step sequence. Because every committed step then satisfies
    /// `now + dt < pause_at`, the step sequence up to the pause is
    /// identical to what any engine with extra timeline events at or
    /// after `pause_at` would have taken, which is the invariant the
    /// sweep fork driver builds on. A step that cannot make progress at
    /// all (`dt == MAX`) also pauses rather than deadlocking: whether
    /// the stall is terminal is for the forked continuations — which may
    /// install wake-up events — to decide.
    pub(crate) fn advance_impl(
        &mut self,
        mut cache: Option<&mut AdvanceCache>,
        pause_at: Option<SimTime>,
    ) -> Result<Advance, SimError> {
        // Completions already ripe at `now` (e.g. zero-work computes).
        // The event is counted only once the step is known to commit, so
        // a paused probe leaves the counter untouched and resumed runs
        // reproduce the serial count exactly.
        let mut woke = false;
        for node in 0..self.nodes.len() {
            if self.nodes[node].next_completion() == Some(SimDuration::ZERO) {
                for owner in self.nodes[node].take_completed() {
                    let rank = owner as usize;
                    debug_assert!(matches!(self.blocked[rank], Blocked::Compute));
                    self.reply(rank, ReplyKind::Done);
                    woke = true;
                }
            }
        }
        if woke {
            self.events += 1;
            return Ok(Advance::Stepped);
        }

        // Candidate next times.
        let mut dt = SimDuration::MAX;
        for node in &self.nodes {
            if let Some(d) = node.next_completion() {
                dt = dt.min(d);
            }
        }
        // Max-min fair rates for the current flow set. The solution reads
        // only flow endpoints and per-link caps — never the remaining byte
        // counts — so within one `net_epoch` (a slice) it is constant and
        // the cached copy from the slice's opening merge point is
        // bit-identical to a fresh solve.
        let fresh_rates;
        let rates: &[f64] = match cache.as_deref_mut() {
            None => {
                fresh_rates = max_min_rates(&self.spec, &self.flows);
                &fresh_rates
            }
            Some(c) => {
                if c.rates_epoch != Some(self.net_epoch) {
                    c.rates = max_min_rates(&self.spec, &self.flows);
                    c.rates_epoch = Some(self.net_epoch);
                    c.slices += 1;
                }
                &c.rates
            }
        };
        debug_assert_eq!(rates.len(), self.flows.len());
        for (f, &r) in self.flows.iter().zip(rates) {
            if f.remaining <= FLOW_EPS {
                dt = SimDuration::ZERO;
            } else if r > 0.0 {
                let nanos = (f.remaining / r * 1e9).ceil() as u64;
                dt = dt.min(SimDuration(nanos.max(1)));
            }
        }
        if let Some(Reverse((t, _, _))) = self.timers.peek() {
            dt = dt.min(SimTime(*t).saturating_since(self.now));
        }
        // Never step across a scheduled resource change: rates computed
        // above are only valid until the next timeline event.
        if let Some(ev) = self.tl_events.get(self.tl_next) {
            dt = dt.min(Timeline::event_time(ev).saturating_since(self.now));
        }

        if let Some(stop) = pause_at {
            if dt == SimDuration::MAX || self.now + dt >= stop {
                return Ok(Advance::Paused);
            }
        }
        if dt == SimDuration::MAX {
            return Err(self.deadlock_error());
        }
        self.events += 1;

        // Settle continuous state and advance the clock.
        for node in &mut self.nodes {
            node.settle(dt);
        }
        let step = dt.as_secs_f64();
        for (f, &r) in self.flows.iter_mut().zip(rates) {
            f.remaining = (f.remaining - r * step).max(0.0);
        }
        self.now += dt;

        // Apply timeline events that are due before collecting completions:
        // the continuous state above was settled with the pre-event rates,
        // which is exact because the step never crosses an event boundary.
        let mut tl_applied = 0u64;
        while let Some(ev) = self.tl_events.get(self.tl_next) {
            if Timeline::event_time(ev) > self.now {
                break;
            }
            let ev = ev.clone();
            self.tl_next += 1;
            self.apply_timeline_event(&ev);
            tl_applied += 1;
        }

        // Collect completions at the new time.
        for node in 0..self.nodes.len() {
            for owner in self.nodes[node].take_completed() {
                let rank = owner as usize;
                debug_assert!(matches!(self.blocked[rank], Blocked::Compute));
                self.reply(rank, ReplyKind::Done);
            }
        }
        let mut done_flows = match cache.as_deref_mut() {
            Some(c) => std::mem::take(&mut c.done_scratch),
            None => Vec::new(),
        };
        done_flows.clear();
        self.flows.retain(|f| {
            if f.remaining <= FLOW_EPS {
                done_flows.push(f.id);
                false
            } else {
                true
            }
        });
        if !done_flows.is_empty() {
            self.net_epoch += 1;
        }
        for &mid in &done_flows {
            self.flow_done(mid);
        }
        if let Some(c) = cache {
            c.merge_events += done_flows.len() as u64 + tl_applied;
            done_flows.clear();
            c.done_scratch = done_flows;
        }
        while let Some(&Reverse((t, _, _))) = self.timers.peek() {
            if t > self.now.as_nanos() {
                break;
            }
            let Reverse((_, _, id)) = self.timers.pop().unwrap();
            let timer = self
                .timer_payload
                .remove(&id)
                .expect("timer payload missing");
            self.fire_timer(timer);
        }
        Ok(Advance::Stepped)
    }

    // ---- sweep-fork support ----------------------------------------------

    /// Engine steps processed so far (requests + committed advances);
    /// the sweep driver differences this around each drive segment for
    /// its prefix-reuse accounting.
    pub(crate) fn events_so_far(&self) -> u64 {
        self.events
    }

    /// Append already-sorted timeline events after the ones installed at
    /// build time. The sweep driver calls this at a pause taken strictly
    /// before the first appended event's time, so the combined list is
    /// exactly the sorted per-point list and `tl_next` (which counts
    /// applied events) stays valid.
    pub(crate) fn append_timeline_events(&mut self, events: &[TimelineEvent]) {
        debug_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        if let (Some(last), Some(first)) = (self.tl_events.last(), events.first()) {
            debug_assert!(last.at <= first.at);
        }
        if let Some(first) = events.first() {
            debug_assert!(Timeline::event_time(first) > self.now);
        }
        self.tl_events.extend_from_slice(events);
    }

    fn deadlock_error(&self) -> SimError {
        let mut lines = Vec::new();
        for (r, b) in self.blocked.iter().enumerate() {
            if !matches!(b, Blocked::Exited) {
                // Name the node and node-local group so hangs surfaced from
                // the parallel driver can be traced to the worker shard
                // that stepped the rank (groups are node-local: group id ==
                // hosting node id).
                let node = self.placement.node_of(r);
                lines.push(format!("  rank {r} (node {node}, group {node}): {b:?}"));
            }
        }
        if !self.panics.is_empty() {
            for (r, msg) in &self.panics {
                lines.push(format!("  rank {r} PANICKED: {msg}"));
            }
        }
        SimError::Deadlock {
            at: self.now,
            blocked: lines,
        }
    }

    /// Consume the finished engine into a report, surfacing the first
    /// rank panic as an error.
    pub(crate) fn into_report(mut self) -> Result<SimReport, SimError> {
        if !self.panics.is_empty() {
            let (rank, msg) = self.panics.remove(0);
            return Err(SimError::RankPanic { rank, msg });
        }
        let total = self
            .finish_times
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        Ok(SimReport {
            total_time: total.saturating_since(SimTime::ZERO),
            finish_times: self.finish_times,
            rank_stats: self.stats,
            events: self.events,
        })
    }
}

/// Drive script cursors against an inline engine until every rank has
/// exited (`Ok(true)`) or the clock reaches `pause_at` (`Ok(false)`).
///
/// Same phase structure as the threaded loop — collect one request from
/// every running rank, process the batch in rank order, advance the clock
/// once all ranks are blocked — so the engine observes the identical
/// request sequence. A pause leaves the engine at a clean phase boundary
/// (no rank running, all inline reply slots empty, nothing committed from
/// the refused step), so the `(engine, cursors)` pair can be cloned and
/// resumed with further `drive_scripts` calls that reproduce serial
/// execution exactly — the property the sweep fork driver is built on.
pub(crate) fn drive_scripts(
    engine: &mut Engine,
    cursors: &mut [ScriptCursor<'_>],
    pause_at: Option<SimTime>,
) -> Result<bool, SimError> {
    let n = cursors.len();
    let mut inbox: Vec<Option<Request>> = (0..n).map(|_| None).collect();
    loop {
        if engine.running > 0 {
            for (rank, cursor) in cursors.iter_mut().enumerate() {
                if !matches!(engine.blocked[rank], Blocked::Running) {
                    continue;
                }
                let reply = engine.sink.take_inline(rank);
                debug_assert!(inbox[rank].is_none(), "rank {rank} sent two requests");
                inbox[rank] = Some(cursor.next_request(reply));
                engine.running -= 1;
            }
            debug_assert_eq!(engine.running, 0, "a running rank produced no request");
        }
        for (rank, slot) in inbox.iter_mut().enumerate() {
            if let Some(req) = slot.take() {
                engine.handle_request(rank, req);
            }
        }
        if engine.running > 0 {
            continue;
        }
        if engine.live == 0 {
            return Ok(true);
        }
        match engine.advance_impl(None, pause_at)? {
            Advance::Stepped => {}
            Advance::Paused => return Ok(false),
        }
    }
}

/// A boxed per-rank program, as consumed by [`Simulation::run_fns`].
pub type RankProgram = Box<dyn FnOnce(&mut SimCtx) + Send>;

/// A configured simulation, ready to run rank programs.
pub struct Simulation {
    pub(crate) spec: ClusterSpec,
    pub(crate) placement: Placement,
}

impl Simulation {
    /// Create a simulation of `spec` with ranks placed per `placement`.
    pub fn new(spec: ClusterSpec, placement: Placement) -> Simulation {
        spec.validate();
        placement.validate(&spec);
        Simulation { spec, placement }
    }

    /// Number of ranks this simulation will run.
    pub fn n_ranks(&self) -> usize {
        self.placement.n_ranks()
    }

    pub(crate) fn build_engine(self, n: usize, sink: ReplySink) -> Engine {
        let mut tl_events = self.spec.timeline.events.clone();
        tl_events.sort_by_key(|ev| ev.at); // stable: same-time events keep spec order
        let mut hold: Vec<Option<SimDuration>> = vec![None; n];
        for d in &self.spec.timeline.start_delays {
            assert!(
                d.rank < n,
                "timeline start delay names rank {} but the simulation has {n} ranks",
                d.rank
            );
            hold[d.rank] = Some(d.delay);
        }
        Engine {
            nodes: self.spec.nodes.iter().map(NodeCpu::new).collect(),
            base_speed: self.spec.nodes.iter().map(|s| s.speed).collect(),
            tl_events,
            tl_next: 0,
            hold,
            held_req: (0..n).map(|_| None).collect(),
            spec: self.spec,
            placement: self.placement,
            now: SimTime::ZERO,
            flows: Vec::new(),
            timers: BinaryHeap::new(),
            timer_payload: HashMap::new(),
            timer_seq: 0,
            msgs: HashMap::new(),
            recvs: HashMap::new(),
            queues: vec![MatchQueue::default(); n],
            nb: HashMap::new(),
            blocked: (0..n).map(|_| Blocked::Running).collect(),
            sink,
            running: n,
            live: n,
            next_id: 0,
            send_seq: 0,
            stats: vec![RankStats::default(); n],
            finish_times: vec![SimTime::ZERO; n],
            panics: Vec::new(),
            events: 0,
            net_epoch: 0,
        }
    }

    /// Run one boxed program per rank. This is the primitive entry point;
    /// see [`Simulation::run`] for the SPMD convenience form. Panics with
    /// the [`SimError`] diagnostic on deadlock or rank panic; services
    /// that must survive bad inputs should call
    /// [`Simulation::try_run_fns`].
    pub fn run_fns(self, programs: Vec<RankProgram>) -> SimReport {
        self.try_run_fns(programs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Simulation::run_fns`]: returns a typed
    /// [`SimError`] on deadlock or rank panic instead of panicking, after
    /// shutting the rank threads down cleanly.
    pub fn try_run_fns(self, programs: Vec<RankProgram>) -> Result<SimReport, SimError> {
        let n = self.placement.n_ranks();
        assert_eq!(programs.len(), n, "need exactly one program per rank");
        assert!(n > 0, "simulation needs at least one rank");
        let t0 = std::time::Instant::now();

        let (req_tx, req_rx) = unbounded::<(usize, Request)>();
        let mut reply_tx = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);

        for (rank, program) in programs.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Reply>();
            reply_tx.push(tx);
            let mut ctx = SimCtx {
                rank,
                nranks: n,
                node: self.placement.node_of(rank),
                now: SimTime::ZERO,
                sw_overhead_secs: self.spec.net.sw_overhead.as_secs_f64(),
                tx: req_tx.clone(),
                rx,
            };
            let handle = thread::Builder::new()
                .name(format!("simrank-{rank}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| program(&mut ctx)));
                    let panic = result.err().map(|e| {
                        e.downcast_ref::<String>()
                            .cloned()
                            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "opaque panic payload".to_string())
                    });
                    // The engine may already be gone if it bailed first.
                    let _ = ctx.tx.send((ctx.rank, Request::Exit { panic }));
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        drop(req_tx);

        let mut engine = self.build_engine(n, ReplySink::Threads(reply_tx));

        let mut inbox: Vec<Option<Request>> = (0..n).map(|_| None).collect();
        let step_err = loop {
            while engine.running > 0 {
                let (rank, req) = req_rx
                    .recv()
                    .expect("all rank threads disconnected while marked running");
                debug_assert!(inbox[rank].is_none(), "rank {rank} sent two requests");
                inbox[rank] = Some(req);
                engine.running -= 1;
            }
            for (rank, slot) in inbox.iter_mut().enumerate() {
                if let Some(req) = slot.take() {
                    engine.handle_request(rank, req);
                }
            }
            if engine.running > 0 {
                continue;
            }
            if engine.live == 0 {
                break None;
            }
            if let Err(e) = engine.advance_once() {
                break Some(e);
            }
        };

        if let Some(e) = step_err {
            // Dropping the engine drops the reply senders; every rank
            // thread still blocked in a roundtrip unwinds out of its
            // recv, gets caught by its catch_unwind and exits cleanly.
            drop(engine);
            for h in handles {
                let _ = h.join();
            }
            return Err(e);
        }

        for h in handles {
            h.join().expect("rank thread poisoned after exit");
        }

        let report = engine.into_report()?;
        crate::counters::record_threaded(report.events, t0.elapsed());
        Ok(report)
    }

    /// Run one [`RankScript`] per rank on the inline fast path: the
    /// coordinator interprets every script itself on the calling thread —
    /// no rank threads, no channels, no context switches. Produces a
    /// report bit-identical to replaying the same scripts through
    /// [`Simulation::run_scripts_threaded`]. Panics with the
    /// [`SimError`] diagnostic on deadlock; see
    /// [`Simulation::try_run_scripts`].
    pub fn run_scripts(self, scripts: &[RankScript]) -> SimReport {
        self.try_run_scripts(scripts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Simulation::run_scripts`].
    pub fn try_run_scripts(self, scripts: &[RankScript]) -> Result<SimReport, SimError> {
        let n = self.placement.n_ranks();
        assert_eq!(scripts.len(), n, "need exactly one script per rank");
        assert!(n > 0, "simulation needs at least one rank");
        let t0 = std::time::Instant::now();

        let mut engine = self.build_engine(n, ReplySink::Inline((0..n).map(|_| None).collect()));
        let mut cursors: Vec<ScriptCursor<'_>> = scripts
            .iter()
            .enumerate()
            .map(|(rank, s)| ScriptCursor::new(s, rank, n))
            .collect();
        drive_scripts(&mut engine, &mut cursors, None)?;

        let report = engine.into_report()?;
        crate::counters::record_script(report.events, t0.elapsed());
        Ok(report)
    }

    /// Replay scripts on the thread-per-rank path (one [`SimCtx`]-driven
    /// thread per script). The reference semantics the fast path is held
    /// to; useful for A/B benchmarking and differential testing.
    pub fn run_scripts_threaded(self, scripts: &[RankScript]) -> SimReport {
        self.try_run_scripts_threaded(scripts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Simulation::run_scripts_threaded`].
    pub fn try_run_scripts_threaded(self, scripts: &[RankScript]) -> Result<SimReport, SimError> {
        let programs: Vec<RankProgram> = scripts
            .iter()
            .cloned()
            .map(|s| {
                Box::new(move |ctx: &mut SimCtx| crate::script::run_script_on_ctx(&s, ctx))
                    as RankProgram
            })
            .collect();
        self.try_run_fns(programs)
    }

    /// Run the same program on every rank (SPMD).
    pub fn run<F>(self, f: F) -> SimReport
    where
        F: Fn(&mut SimCtx) + Send + Sync + 'static,
    {
        let n = self.placement.n_ranks();
        let f = std::sync::Arc::new(f);
        let programs: Vec<RankProgram> = (0..n)
            .map(|_| {
                let f = f.clone();
                Box::new(move |ctx: &mut SimCtx| f(ctx)) as RankProgram
            })
            .collect();
        self.run_fns(programs)
    }
}
